"""Frequency and cycle-time arithmetic for ticking components."""

from __future__ import annotations

#: One gigahertz, the default component frequency.
GHZ = 1e9
MHZ = 1e6


def period(freq: float) -> float:
    """Cycle period in seconds for *freq* in Hz."""
    return 1.0 / freq


def next_tick(now: float, freq: float) -> float:
    """The earliest cycle boundary strictly after *now*.

    Components tick on a grid of ``k / freq`` instants.  The small bias
    keeps floating-point noise from skipping or repeating a cycle: a
    component asking at exactly a cycle boundary gets the *next* boundary.
    """
    cycle = int(now * freq + 1e-6) + 1
    return cycle / freq


def this_tick(now: float, freq: float) -> float:
    """The cycle boundary at or immediately after *now*."""
    cycle = int(now * freq + 1e-6)
    t = cycle / freq
    if t + 1e-15 < now:
        t = (cycle + 1) / freq
    return t


def cycles_to_seconds(cycles: int, freq: float) -> float:
    """Convert a cycle count to seconds at *freq*."""
    return cycles / freq
