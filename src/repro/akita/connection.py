"""Connections move messages between ports with latency and backpressure.

:class:`DirectConnection` models a fixed-latency point-to-point (or small
fan-in) link.  A slot in the destination buffer is *reserved* at send
time, so an in-flight message always has a place to land; combined with
FIFO event ordering this gives per-(src,dst) in-order delivery.

When a component retrieves a message from one of its ports, every
component plugged into the same connection is woken
(:meth:`notify_available`) so sleeping senders retry.  Spurious wakeups
cost one no-progress tick; lost wakeups would hang the simulation, so we
err on the side of waking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, runtime_checkable

from .engine import Engine
from .errors import PortError
from .event import Event
from .hooks import Hookable, HookCtx, HookPos
from .message import Msg
from .port import Port


@runtime_checkable
class Connection(Protocol):
    """Anything that can transport messages between plugged-in ports."""

    def plug_in(self, port: Port) -> None: ...

    def can_send(self, src: Port, msg: Msg) -> bool: ...

    def send(self, src: Port, msg: Msg) -> None: ...

    def notify_available(self, port: Port) -> None: ...


@dataclass
class Transfer:
    """The mutable delivery plan handed to ``CONN_TRANSFER`` hooks.

    A hook (e.g. a fault injector) may set :attr:`drop` to make the
    message vanish in transit, or move :attr:`deliver_at` later to model
    link-level delay.  When no hooks are attached the plan is never even
    constructed, so the un-faulted send path pays nothing.
    """

    msg: Msg
    deliver_at: float
    drop: bool = False


class DeliveryEvent(Event):
    """Lands one in-flight message at its arrival time.

    The handler is the connection itself.  A dedicated event class
    (rather than a per-send closure wrapped in a CallbackEvent) keeps
    the event queue picklable for checkpoint/restore and saves a
    closure allocation per message on the hot path.
    """

    __slots__ = ("msg",)

    def __init__(self, time: float, connection: "DirectConnection",
                 msg: Msg):
        super().__init__(time, connection, secondary=True)
        self.msg = msg


class DirectConnection(Hookable):
    """Fixed-latency link between a set of ports.

    Parameters
    ----------
    name:
        Hierarchical name, for diagnostics.
    engine:
        Engine used to schedule delivery events.
    latency:
        Transfer latency in (virtual) seconds.  Zero-latency links
        deliver via a secondary event in the same timestamp.
    """

    def __init__(self, name: str, engine: Engine, latency: float = 1e-9):
        super().__init__()
        self.name = name
        self._engine = engine
        self._latency = float(latency)
        self._ports: List[Port] = []
        self._inflight: Dict[Port, int] = {}
        self.msg_count = 0  # total messages transported (observable)
        self.dropped_count = 0  # messages lost to injected faults

    @property
    def latency(self) -> float:
        return self._latency

    @property
    def ports(self) -> List[Port]:
        return list(self._ports)

    def plug_in(self, port: Port) -> None:
        """Attach *port* to this connection."""
        port.set_connection(self)
        self._ports.append(port)
        self._inflight[port] = 0

    def can_send(self, src: Port, msg: Msg) -> bool:
        dst = msg.dst
        if dst is None or dst not in self._inflight:
            raise PortError(
                f"message {msg!r} has no destination on connection "
                f"{self.name}")
        return dst.buf.free_slots - self._inflight[dst] > 0

    def send(self, src: Port, msg: Msg) -> None:
        """Reserve a destination slot and schedule delivery."""
        dst = msg.dst
        assert dst is not None
        self._inflight[dst] += 1
        msg.send_time = self._engine.now
        self.msg_count += 1
        deliver_at = self._engine.now + self._latency

        if self._hooks:
            transfer = Transfer(msg, deliver_at)
            self.invoke_hooks(HookCtx(self, self._engine.now,
                                      HookPos.CONN_TRANSFER, transfer))
            if transfer.drop:
                # The message vanishes in transit: release the reserved
                # slot and wake senders that were blocked on it.  The
                # sender still counted it as sent — exactly the view a
                # component has of a lossy link.
                self._inflight[dst] -= 1
                self.dropped_count += 1
                self.invoke_hooks(HookCtx(self, self._engine.now,
                                          HookPos.CONN_DROP, transfer))
                self.notify_available(dst)
                return
            deliver_at = max(transfer.deliver_at, self._engine.now)

        self._engine.schedule(DeliveryEvent(deliver_at, self, msg))

    def handle(self, event: DeliveryEvent) -> None:
        """Deliver the event's message (engine-facing Handler API)."""
        msg = event.msg
        self._inflight[msg.dst] -= 1
        msg.dst.deliver(msg)

    def notify_available(self, port: Port) -> None:
        """A buffer slot freed at *port*; wake potential senders."""
        for p in self._ports:
            if p is port or p.component is None:
                continue
            p.component.notify_available(p)
