"""Connections move messages between ports with latency and backpressure.

:class:`DirectConnection` models a fixed-latency point-to-point (or small
fan-in) link.  A slot in the destination buffer is *reserved* at send
time, so an in-flight message always has a place to land; combined with
FIFO event ordering this gives per-(src,dst) in-order delivery.

When a component retrieves a message from one of its ports, every
component plugged into the same connection is woken
(:meth:`notify_available`) so sleeping senders retry.  Spurious wakeups
cost one no-progress tick; lost wakeups would hang the simulation, so we
err on the side of waking.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, runtime_checkable

from .engine import Engine
from .errors import PortError
from .event import CallbackEvent
from .message import Msg
from .port import Port


@runtime_checkable
class Connection(Protocol):
    """Anything that can transport messages between plugged-in ports."""

    def plug_in(self, port: Port) -> None: ...

    def can_send(self, src: Port, msg: Msg) -> bool: ...

    def send(self, src: Port, msg: Msg) -> None: ...

    def notify_available(self, port: Port) -> None: ...


class DirectConnection:
    """Fixed-latency link between a set of ports.

    Parameters
    ----------
    name:
        Hierarchical name, for diagnostics.
    engine:
        Engine used to schedule delivery events.
    latency:
        Transfer latency in (virtual) seconds.  Zero-latency links
        deliver via a secondary event in the same timestamp.
    """

    def __init__(self, name: str, engine: Engine, latency: float = 1e-9):
        self.name = name
        self._engine = engine
        self._latency = float(latency)
        self._ports: List[Port] = []
        self._inflight: Dict[Port, int] = {}
        self.msg_count = 0  # total messages transported (observable)

    @property
    def latency(self) -> float:
        return self._latency

    @property
    def ports(self) -> List[Port]:
        return list(self._ports)

    def plug_in(self, port: Port) -> None:
        """Attach *port* to this connection."""
        port.set_connection(self)
        self._ports.append(port)
        self._inflight[port] = 0

    def can_send(self, src: Port, msg: Msg) -> bool:
        dst = msg.dst
        if dst is None or dst not in self._inflight:
            raise PortError(
                f"message {msg!r} has no destination on connection "
                f"{self.name}")
        return dst.buf.free_slots - self._inflight[dst] > 0

    def send(self, src: Port, msg: Msg) -> None:
        """Reserve a destination slot and schedule delivery."""
        dst = msg.dst
        assert dst is not None
        self._inflight[dst] += 1
        msg.send_time = self._engine.now
        self.msg_count += 1
        deliver_at = self._engine.now + self._latency

        def _deliver(_event: CallbackEvent, msg: Msg = msg) -> None:
            self._inflight[msg.dst] -= 1
            msg.dst.deliver(msg)

        self._engine.schedule(
            CallbackEvent(deliver_at, _deliver, secondary=True))

    def notify_available(self, port: Port) -> None:
        """A buffer slot freed at *port*; wake potential senders."""
        for p in self._ports:
            if p is port or p.component is None:
                continue
            p.component.notify_available(p)
