"""The simulation container: engine + component registry + run loop.

A :class:`Simulation` ties together everything a monitoring tool needs a
handle on: the engine (time, pause/continue), the set of registered
components (for the component tree and buffer discovery), and the
completion condition (so that a dry event queue can be classified as
*finished* versus *hung*).

The run loop implements the paper's "kick start" semantics: if the
engine runs dry while the workload is incomplete — the signature of a
deadlock — the loop can wait for an external kick (AkitaRTM's *Tick*
button schedules fresh tick events and calls :meth:`Simulation.kickstart`)
instead of tearing the process down, letting the user debug in place.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional

from .component import Component
from .connection import DirectConnection
from .engine import Engine, RunState


class Simulation:
    """A complete simulated system."""

    def __init__(self, name: str = "sim", engine: Optional[Engine] = None):
        self.name = name
        self.engine = engine if engine is not None else Engine()
        self._components: Dict[str, Component] = {}
        self._connections: List[DirectConnection] = []
        self._done_check: Optional[Callable[[], bool]] = None
        self._dry_wake = threading.Event()
        self._aborted = False
        self._completed = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_component(self, component: Component) -> Component:
        """Add *component* to the registry (idempotent by name)."""
        if component.name in self._components:
            raise ValueError(f"duplicate component name {component.name}")
        self._components[component.name] = component
        return component

    def register_connection(self, conn: DirectConnection) -> DirectConnection:
        self._connections.append(conn)
        return conn

    def deregister_component(self, name: str) -> Optional[Component]:
        """Remove a component from the registry (shard pruning: a shard
        builds the full platform for identical naming, then drops the
        components other shards own from its monitored scope).  The
        component object itself survives — dormant proxy replicas keep
        their ports as stable message-address anchors."""
        return self._components.pop(name, None)

    def component(self, name: str) -> Component:
        return self._components[name]

    def has_component(self, name: str) -> bool:
        return name in self._components

    @property
    def components(self) -> List[Component]:
        return list(self._components.values())

    @property
    def component_names(self) -> List[str]:
        return list(self._components.keys())

    @property
    def connections(self) -> List[DirectConnection]:
        return list(self._connections)

    # ------------------------------------------------------------------
    # Completion / state
    # ------------------------------------------------------------------
    def set_completion_check(self, check: Callable[[], bool]) -> None:
        """Install the predicate deciding whether the workload finished.

        Without one, an empty event queue counts as completion (pure DES
        semantics).  The GPU driver installs "all enqueued commands
        completed" here, which is what makes hangs detectable.
        """
        self._done_check = check

    @property
    def done(self) -> bool:
        if self._done_check is not None:
            return self._done_check()
        return self.engine.pending_event_count == 0

    @property
    def completed(self) -> bool:
        """True once a run() observed the completion condition."""
        return self._completed

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def now(self) -> float:
        return self.engine.now

    @property
    def run_state(self) -> str:
        """Monitor-facing state string.

        ``hung`` is reported when the engine is dry but the workload did
        not complete — the situation of the paper's case study 2.
        """
        if self._aborted:
            return "aborted"
        if self._completed:
            return "completed"
        state = self.engine.run_state
        if state == RunState.DRY and not self.done:
            return "hung"
        return state.value

    # ------------------------------------------------------------------
    # Pickling (checkpoint/restore)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop the wakeup event; the completion check travels with the
        snapshot (platforms install a picklable one — see
        :class:`repro.gpu.platform._AllDone`)."""
        state = self.__dict__.copy()
        state.pop("_dry_wake", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._dry_wake = threading.Event()
        # A snapshot of an aborted run restores as resumable: abort is a
        # process-level decision (watchdog, operator), not sim state.
        self._aborted = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def kickstart(self) -> None:
        """Wake a run loop that parked on a dry queue (RTM *Kick Start*)."""
        self._dry_wake.set()

    def mark_completed(self) -> None:
        """Record that the workload finished, for drivers of the engine
        other than :meth:`run` (the shard runtime steps the engine in
        windows and learns about global completion from its
        coordinator)."""
        self._completed = True

    def abort(self) -> None:
        """Terminate the simulation from any thread."""
        self._aborted = True
        self.engine.terminate()
        self._dry_wake.set()

    def run(self, hang_wait: float = 0.0) -> bool:
        """Run the simulation to completion.

        Parameters
        ----------
        hang_wait:
            Wall-clock seconds to wait for a kickstart each time the
            engine runs dry without completing.  ``0`` returns
            immediately (batch mode); a positive value keeps the hung
            simulation alive for interactive debugging.

        Returns
        -------
        bool
            True if the workload completed, False on hang/abort.
        """
        while True:
            self._dry_wake.clear()
            self.engine.run()
            if self._aborted:
                return False
            if self.done:
                self._completed = True
                return True
            if self.engine.pending_event_count > 0:
                # Kicked while we were still draining; keep going.
                continue
            if hang_wait == 0.0:
                return False
            if not self._dry_wake.wait(timeout=hang_wait):
                return False
            if self._aborted:
                return False
