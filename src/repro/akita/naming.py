"""Hierarchical component naming.

Akita names components with dotted, indexed paths such as
``GPU[1].SA[3].L1VCache[0]``.  AkitaRTM's component tree view is built by
tokenizing these names, so the tooling here is shared by the simulator
(which constructs names) and the monitor (which parses them).
"""

from __future__ import annotations

import re
from typing import List, Tuple

_SEGMENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\[\d+\])*$")


def indexed(base: str, *indices: int) -> str:
    """``indexed("SA", 3)`` → ``"SA[3]"``; multiple indices nest."""
    return base + "".join(f"[{i}]" for i in indices)


def join(*parts: str) -> str:
    """Join name segments with dots, skipping empty parts."""
    return ".".join(p for p in parts if p)


def is_valid_segment(segment: str) -> bool:
    """True if *segment* is a legal single name segment."""
    return bool(_SEGMENT_RE.match(segment))


def validate(name: str) -> None:
    """Raise ``ValueError`` unless every dotted segment of *name* is legal."""
    if not name:
        raise ValueError("empty component name")
    for segment in name.split("."):
        if not is_valid_segment(segment):
            raise ValueError(
                f"illegal name segment {segment!r} in {name!r}")


def tokenize(name: str) -> List[str]:
    """Split a dotted name into segments.

    >>> tokenize("GPU[1].SA[3].L1VCache[0]")
    ['GPU[1]', 'SA[3]', 'L1VCache[0]']
    """
    return name.split(".")


def split_indexed(segment: str) -> Tuple[str, List[int]]:
    """Split ``"SA[3]"`` into ``("SA", [3])``.

    >>> split_indexed("L1VROB[0]")
    ('L1VROB', [0])
    """
    base = segment.split("[", 1)[0]
    indices = [int(m) for m in re.findall(r"\[(\d+)\]", segment)]
    return base, indices


def parent(name: str) -> str:
    """Dotted parent of *name*, or ``""`` for a root name."""
    head, _, __ = name.rpartition(".")
    return head
