"""Messages exchanged between component ports.

Components in the Akita paradigm communicate *only* by sending messages
through ports; there is no shared state.  That isolation is what lets
AkitaRTM monitor each component independently (paper §II).
"""

from __future__ import annotations

import itertools
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .port import Port

_msg_ids = itertools.count()


def msg_id_watermark() -> int:
    """An id strictly greater than every message id handed out so far
    (consumes one id; see :func:`repro.akita.event.event_id_watermark`).

    Message ids key request/response matching (e.g. the CU's
    outstanding-request table), so a restored process must never reuse
    an id frozen in a snapshot."""
    return next(_msg_ids)


def ensure_msg_ids_at_least(n: int) -> None:
    """Fast-forward the message id counter so the next id is >= *n*."""
    global _msg_ids
    current = next(_msg_ids)
    _msg_ids = itertools.count(max(current + 1, int(n)))


class Msg:
    """Base class of all messages.

    Attributes
    ----------
    src, dst:
        Sending / receiving ports.  ``src`` is stamped by the port on
        send; ``dst`` must be set by the sender.
    size_bytes:
        Wire size, used by bandwidth-limited connections (the inter-
        chiplet network).
    """

    __slots__ = ("id", "src", "dst", "size_bytes", "send_time")

    def __init__(self, dst: Optional["Port"] = None, size_bytes: int = 4):
        self.id = next(_msg_ids)
        self.src: Optional["Port"] = None
        self.dst = dst
        self.size_bytes = size_bytes
        self.send_time: float = -1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dst = self.dst.name if self.dst is not None else "?"
        return f"<{type(self).__name__} #{self.id} -> {dst}>"


class GeneralRsp(Msg):
    """Generic acknowledgement carrying the id of the original request."""

    __slots__ = ("original_id",)

    def __init__(self, dst: "Port", original_id: int, size_bytes: int = 4):
        super().__init__(dst, size_bytes)
        self.original_id = original_id


class ControlMsg(Msg):
    """Out-of-band control message (start/drain/flush commands)."""

    __slots__ = ("command",)

    def __init__(self, dst: "Port", command: str):
        super().__init__(dst, size_bytes=4)
        self.command = command
