"""Ports: the endpoints through which components exchange messages.

A port owns one bounded *incoming* buffer.  Sending is mediated by the
connection the port is plugged into; the connection reserves a slot in
the destination buffer at send time so messages in flight can never
overflow the destination (hardware-accurate backpressure).

The incoming buffer is named ``<port name>.Buf`` so it shows up in the
bottleneck analyzer exactly as in the paper's Figure 3
(``GPU[1].SA[15].L1VROB[0].TopPort.Buf``).
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from .buffer import Buffer
from .errors import PortError
from .hooks import HookPos
from .message import Msg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .component import Component
    from .connection import Connection


class Port:
    """A named, buffered endpoint attached to a component."""

    def __init__(self, component: Optional["Component"], name: str,
                 buf_capacity: int = 4):
        self.component = component
        self.name = name
        self.buf = Buffer(f"{name}.Buf", buf_capacity)
        self._connection: Optional["Connection"] = None
        #: Messages sent / received through this port (monitorable;
        #: deltas give the per-port throughput view the paper lists as
        #: a future extension in §VIII).
        self.num_sent = 0
        self.num_delivered = 0

    # -- wiring ------------------------------------------------------------
    @property
    def connection(self) -> Optional["Connection"]:
        return self._connection

    def set_connection(self, conn: "Connection") -> None:
        if self._connection is not None:
            raise PortError(f"port {self.name} is already connected")
        self._connection = conn

    def replace_connection(self, conn: "Connection") -> None:
        """Rebind this port to *conn*, even if already connected.

        Post-build rewiring only (the shard runtime swaps boundary
        edges for proxy connections after the full platform is built);
        never call this on a port with messages in flight.
        """
        self._connection = conn

    # -- sending -----------------------------------------------------------
    def can_send(self, msg: Msg) -> bool:
        """True if *msg* can be sent right now without overflowing the
        destination."""
        if self._connection is None:
            raise PortError(f"port {self.name} is not connected")
        return self._connection.can_send(self, msg)

    def send(self, msg: Msg) -> bool:
        """Send *msg* through the connection.

        Returns ``True`` on success, ``False`` when backpressure prevents
        the send (mirroring Akita's non-blocking ``Send``).  Components
        treat a ``False`` as "retry on a later tick".
        """
        if self._connection is None:
            raise PortError(f"port {self.name} is not connected")
        if not self._connection.can_send(self, msg):
            return False
        msg.src = self
        # Hook before the connection takes over: a zero-latency
        # connection may deliver (or drop) inline, and the trace must
        # show the send first.
        comp = self.component
        if comp is not None and HookPos.PORT_SEND in comp._hook_positions:
            comp.fire_hooks(self, comp._engine.now,
                            HookPos.PORT_SEND, msg)
        self._connection.send(self, msg)
        self.num_sent += 1
        return True

    # -- receiving ----------------------------------------------------------
    def deliver(self, msg: Msg) -> None:
        """Called by the connection when a message arrives."""
        self.buf.push(msg)
        self.num_delivered += 1
        comp = self.component
        if comp is not None:
            if HookPos.PORT_DELIVER in comp._hook_positions:
                comp.fire_hooks(self, comp._engine.now,
                                HookPos.PORT_DELIVER, msg)
            comp.notify_recv(self)

    def peek_incoming(self) -> Optional[Msg]:
        """Look at the oldest received message without consuming it."""
        return self.buf.peek()

    def retrieve_incoming(self) -> Optional[Msg]:
        """Consume and return the oldest received message, or ``None``.

        Consuming frees a buffer slot; the connection is notified so that
        senders blocked on backpressure wake up and retry.
        """
        if self.buf.size == 0:
            return None
        msg = self.buf.pop()
        comp = self.component
        if comp is not None and \
                HookPos.PORT_RETRIEVE in comp._hook_positions:
            comp.fire_hooks(self, comp._engine.now,
                            HookPos.PORT_RETRIEVE, msg)
        if self._connection is not None:
            self._connection.notify_available(self)
        return msg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name}>"
