"""Exception types shared across the Akita-style simulation framework.

The framework mirrors the error discipline of the original Go Akita
framework: programming errors (scheduling into the past, sending through a
disconnected port) raise immediately rather than being silently absorbed,
because a simulator that keeps running after such a mistake produces results
that cannot be trusted.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by the simulation framework."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled at a time earlier than *now*.

    Discrete-event simulation is only causal when the event queue is
    processed in non-decreasing time order; scheduling into the past would
    silently corrupt that order.
    """


class PortError(SimulationError):
    """Raised for illegal port operations (double-connect, send on an
    unconnected port, retrieving from an empty port when the caller claimed
    a message was present)."""


class BufferError_(SimulationError):
    """Raised when pushing to a full buffer or popping from an empty one.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`BufferError`.
    """


class EngineError(SimulationError):
    """Raised for illegal engine state transitions (e.g. calling
    ``continue_`` on an engine that was never paused)."""


class ConfigurationError(SimulationError):
    """Raised when a platform/component builder is given inconsistent
    parameters (zero capacity buffers, no chiplets, etc.)."""
