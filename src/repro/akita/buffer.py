"""Bounded message buffers.

Buffers are the central observable of AkitaRTM's bottleneck analysis: a
buffer that is persistently full marks the component that drains it as a
likely performance bottleneck (paper §IV-C, Figure 4), and non-empty
buffers after the engine runs dry mark the components involved in a hang
(case study 2).

Every buffer has a hierarchical ``name`` (e.g.
``GPU[1].SA[3].L1VROB[0].TopPort.Buf``) so the analyzer can report where
it lives without holding references to the owning component.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, Optional

from .errors import BufferError_, ConfigurationError


class Buffer:
    """A bounded FIFO queue of messages (or any payload).

    The monitor discovers instances of this class by reflection; any
    object reachable from a registered component that is a :class:`Buffer`
    shows up in the bottleneck analyzer.
    """

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise ConfigurationError(
                f"buffer {name!r} needs a positive capacity, got {capacity}")
        self.name = name
        self._capacity = int(capacity)
        self._items: Deque[Any] = deque()
        self._pinned = False

    # -- capacity queries ------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def size(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    @property
    def fullness(self) -> float:
        """Occupancy in [0, 1]; the analyzer's *percent* sort key.

        A pinned buffer reports 1.0 — it is at capacity by decree, and
        the bottleneck analyzer should finger it exactly as if real
        traffic had filled it.
        """
        if self._pinned:
            return 1.0
        return len(self._items) / self._capacity

    def can_push(self) -> bool:
        return not self._pinned and len(self._items) < self._capacity

    @property
    def free_slots(self) -> int:
        if self._pinned:
            return 0
        return self._capacity - len(self._items)

    # -- fault injection ---------------------------------------------------
    @property
    def pinned(self) -> bool:
        """True while a fault injector holds this buffer at capacity."""
        return self._pinned

    def pin(self, pinned: bool = True) -> None:
        """Force the buffer to report itself full (``pinned=True``) so
        every sender sees permanent backpressure, or release it.

        Pinning acts at the flow-control level only (:meth:`can_push`,
        :attr:`free_slots`): new admissions are refused, but messages
        whose slot was reserved before the pin still land, and queued
        items may still be popped.  This is how the fault injector
        freezes a component's intake without corrupting in-flight
        traffic."""
        self._pinned = bool(pinned)

    # -- mutation ---------------------------------------------------------
    def push(self, item: Any) -> None:
        """Append *item*.

        Raises
        ------
        BufferError_
            If the buffer is full.  Callers must check :meth:`can_push`;
            overflowing a hardware buffer is a modelling bug, not a
            recoverable condition.
        """
        if len(self._items) >= self._capacity:
            raise BufferError_(f"push to full buffer {self.name}")
        self._items.append(item)

    def pop(self) -> Any:
        """Remove and return the oldest item."""
        if not self._items:
            raise BufferError_(f"pop from empty buffer {self.name}")
        return self._items.popleft()

    def peek(self) -> Optional[Any]:
        """Return the oldest item without removing it, or ``None``."""
        if not self._items:
            return None
        return self._items[0]

    def remove(self, item: Any) -> None:
        """Remove a specific item (used by reorder buffers)."""
        self._items.remove(item)

    def clear(self) -> None:
        self._items.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Buffer {self.name} {self.size}/{self.capacity}>"
