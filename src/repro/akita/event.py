"""Events and event handlers.

An event is the atom of a discrete-event simulation: a (time, handler)
pair, processed in non-decreasing time order by the engine.  Handlers are
usually components; the most common event is a :class:`TickEvent`, which
asks a ticking component to advance by one cycle.

Two details mirror the Go Akita framework:

* **Secondary events.**  Within a single timestamp, *primary* events run
  before *secondary* ones.  Connections use secondary events so that all
  components observe a consistent pre-tick state before messages move.
* **Event IDs.**  Every event gets a monotonically increasing ID that
  breaks ties deterministically, so two runs of the same simulation
  process events in exactly the same order.
"""

from __future__ import annotations

import itertools
from typing import Callable, Protocol, runtime_checkable

#: Virtual time, in simulated seconds.  A 1 GHz component ticks every 1e-9.
VTimeInSec = float

_event_ids = itertools.count()


def event_id_watermark() -> int:
    """An id strictly greater than every event id handed out so far.

    Consumes one id, which is harmless — ids only need uniqueness and
    monotonicity.  Checkpoints store the watermark so a restoring
    process can fast-forward its counter and never mint an id that
    collides with (or sorts before) one frozen in the snapshot, keeping
    the queue's deterministic tie-breaking intact.
    """
    return next(_event_ids)


def ensure_event_ids_at_least(n: int) -> None:
    """Fast-forward the event id counter so the next id is >= *n*."""
    global _event_ids
    current = next(_event_ids)
    _event_ids = itertools.count(max(current + 1, int(n)))


@runtime_checkable
class Handler(Protocol):
    """Anything that can process events."""

    def handle(self, event: "Event") -> None:
        """Process *event*.  Called exactly once by the engine."""
        ...


class Event:
    """Base class of all events.

    Parameters
    ----------
    time:
        Virtual time at which the event fires.
    handler:
        Object whose :meth:`Handler.handle` is invoked when it fires.
    secondary:
        If true, the event runs after all primary events of the same
        timestamp.
    """

    __slots__ = ("time", "handler", "secondary", "id")

    def __init__(self, time: VTimeInSec, handler: Handler,
                 secondary: bool = False):
        self.time = float(time)
        self.handler = handler
        self.secondary = bool(secondary)
        self.id = next(_event_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self).__name__
        return f"<{kind} t={self.time:.9f} id={self.id}>"


class TickEvent(Event):
    """Asks a ticking component to advance one cycle.

    Tick events are *secondary* so that message deliveries scheduled for
    the same timestamp land in the destination buffers before the
    component inspects them.
    """

    __slots__ = ()

    def __init__(self, time: VTimeInSec, handler: Handler):
        super().__init__(time, handler, secondary=True)


class CallbackEvent(Event):
    """Runs an arbitrary callable at a given time.

    Useful for driver timeouts, RTM "kick start" pokes and tests.  The
    callback receives the event so it can reschedule itself.
    """

    __slots__ = ("callback",)

    class _CallbackHandler:
        __slots__ = ()

        def handle(self, event: "Event") -> None:
            assert isinstance(event, CallbackEvent)
            event.callback(event)

    _handler_singleton = _CallbackHandler()

    def __init__(self, time: VTimeInSec,
                 callback: Callable[["CallbackEvent"], None],
                 secondary: bool = False):
        super().__init__(time, self._handler_singleton, secondary)
        self.callback = callback
