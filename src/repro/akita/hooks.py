"""A minimal hook system for observing simulation internals.

Hooks are how AkitaRTM (and any other instrumentation) observes the engine
and components without modifying them.  A :class:`Hookable` object invokes
every attached hook with a :class:`HookCtx` describing what just happened.

The engine fires hooks around each event; components may fire hooks around
message handling.  Hooks must be cheap: they run on the simulation thread.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, List


class HookPos(enum.Enum):
    """Well-known positions at which hooks fire."""

    BEFORE_EVENT = "before_event"
    AFTER_EVENT = "after_event"
    ENGINE_START = "engine_start"
    ENGINE_PAUSE = "engine_pause"
    ENGINE_CONTINUE = "engine_continue"
    ENGINE_DRY = "engine_dry"  # queue ran empty
    ENGINE_END = "engine_end"
    CONN_TRANSFER = "conn_transfer"  # a connection accepted a message
    CONN_DROP = "conn_drop"  # an in-transit message was dropped (faults)
    PORT_SEND = "port_send"  # a port successfully sent a message
    PORT_DELIVER = "port_deliver"  # a message landed in a port buffer
    PORT_RETRIEVE = "port_retrieve"  # a component consumed a message
    TASK_BEGIN = "task_begin"  # a component started a unit of work
    TASK_END = "task_end"  # a component finished a unit of work


@dataclass
class TaskInfo:
    """Payload of ``TASK_BEGIN`` / ``TASK_END`` hooks.

    Components annotate their units of work (a mapped workgroup, a cache
    miss in flight, an RDMA transfer) with a stable *task_id* so begin
    and end can be paired by observers, plus ``kind``/``what`` metadata
    for display.  Constructed only when hooks are attached.
    """

    task_id: Any
    kind: str = ""
    what: str = ""


@dataclass
class HookCtx:
    """Context handed to each hook invocation.

    Attributes
    ----------
    domain:
        The hookable object that fired the hook (engine, component...).
    now:
        Current virtual time.
    pos:
        Where in the processing flow the hook fired.
    item:
        The subject of the hook (usually the event being processed).
    skip:
        A ``BEFORE_EVENT`` hook may set this to suppress the event: the
        engine discards it without calling its handler.  This is the
        primitive fault injection uses to stall a component's tick
        handler without modifying the component.  Ignored at every
        other position.
    """

    domain: Any
    now: float
    pos: HookPos
    item: Any = None
    skip: bool = False


Hook = Callable[[HookCtx], None]


class Hookable:
    """Mixin that lets observers attach hooks to an object."""

    def __init__(self) -> None:
        self._hooks: List[Hook] = []

    def accept_hook(self, hook: Hook) -> None:
        """Attach *hook*; it will be invoked on every hookable action."""
        self._hooks.append(hook)

    def remove_hook(self, hook: Hook) -> None:
        """Detach *hook*.  Missing hooks are ignored."""
        try:
            self._hooks.remove(hook)
        except ValueError:
            pass

    def invoke_hooks(self, ctx: HookCtx) -> None:
        """Invoke all attached hooks with *ctx*."""
        for hook in self._hooks:
            hook(ctx)

    @property
    def num_hooks(self) -> int:
        return len(self._hooks)
