"""A minimal hook system for observing simulation internals.

Hooks are how AkitaRTM (and any other instrumentation) observes the engine
and components without modifying them.  A :class:`Hookable` object invokes
every attached hook with a :class:`HookCtx` describing what just happened.

The engine fires hooks around each event; components may fire hooks around
message handling.  Hooks must be cheap: they run on the simulation thread.

Hooks must also read the ctx synchronously and never retain it: hot
paths (the engine's event loop) reuse one ctx object across
invocations, mutating its fields in place, so a stored reference would
silently change under the observer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, List


class HookPos(enum.Enum):
    """Well-known positions at which hooks fire."""

    BEFORE_EVENT = "before_event"
    AFTER_EVENT = "after_event"
    ENGINE_START = "engine_start"
    ENGINE_PAUSE = "engine_pause"
    ENGINE_CONTINUE = "engine_continue"
    ENGINE_DRY = "engine_dry"  # queue ran empty
    ENGINE_END = "engine_end"
    CONN_TRANSFER = "conn_transfer"  # a connection accepted a message
    CONN_DROP = "conn_drop"  # an in-transit message was dropped (faults)
    PORT_SEND = "port_send"  # a port successfully sent a message
    PORT_DELIVER = "port_deliver"  # a message landed in a port buffer
    PORT_RETRIEVE = "port_retrieve"  # a component consumed a message
    TASK_BEGIN = "task_begin"  # a component started a unit of work
    TASK_END = "task_end"  # a component finished a unit of work


@dataclass(slots=True)
class TaskInfo:
    """Payload of ``TASK_BEGIN`` / ``TASK_END`` hooks.

    Components annotate their units of work (a mapped workgroup, a cache
    miss in flight, an RDMA transfer) with a stable *task_id* so begin
    and end can be paired by observers, plus ``kind``/``what`` metadata
    for display.  Constructed only when hooks are attached.
    """

    task_id: Any
    kind: str = ""
    what: str = ""


@dataclass(slots=True)
class HookCtx:
    """Context handed to each hook invocation.

    Attributes
    ----------
    domain:
        The hookable object that fired the hook (engine, component...).
    now:
        Current virtual time.
    pos:
        Where in the processing flow the hook fired.
    item:
        The subject of the hook (usually the event being processed).
    skip:
        A ``BEFORE_EVENT`` hook may set this to suppress the event: the
        engine discards it without calling its handler.  This is the
        primitive fault injection uses to stall a component's tick
        handler without modifying the component.  Ignored at every
        other position.
    """

    domain: Any
    now: float
    pos: HookPos
    item: Any = None
    skip: bool = False


Hook = Callable[[HookCtx], None]


class Hookable:
    """Mixin that lets observers attach hooks to an object."""

    def __init__(self) -> None:
        self._hooks: List[Hook] = []
        self._hook_ctx: Any = None
        # Union of positions the attached hooks want.  Firing sites may
        # test ``pos in obj._hook_positions`` before building the hook
        # payload, so a narrowly subscribed observer (e.g. metrics
        # watching only deliveries) costs nothing at the positions it
        # ignores.  An empty set doubles as the "no hooks" fast check.
        self._hook_positions: frozenset = frozenset()
        self._hook_subs: List[tuple] = []

    def accept_hook(self, hook: Hook,
                    positions: Any = None) -> None:
        """Attach *hook*; it will be invoked on every hookable action.

        *positions* optionally narrows the subscription: an iterable of
        :class:`HookPos` this hook cares about.  Hooks are still invoked
        at any position another hook subscribed to (they must filter on
        ``ctx.pos`` regardless); the narrowing only lets firing sites
        skip positions nobody wants.
        """
        self._hooks.append(hook)
        self._hook_subs.append(
            (hook, None if positions is None else frozenset(positions)))
        self._rebuild_positions()

    def remove_hook(self, hook: Hook) -> None:
        """Detach *hook*.  Missing hooks are ignored."""
        try:
            self._hooks.remove(hook)
        except ValueError:
            return
        for i, (h, _) in enumerate(self._hook_subs):
            if h == hook:
                del self._hook_subs[i]
                break
        self._rebuild_positions()

    def _rebuild_positions(self) -> None:
        wanted: set = set()
        for _, positions in self._hook_subs:
            if positions is None:
                wanted = set(HookPos)
                break
            wanted |= positions
        self._hook_positions = frozenset(wanted)

    def invoke_hooks(self, ctx: HookCtx) -> None:
        """Invoke all attached hooks with *ctx*."""
        for hook in self._hooks:
            hook(ctx)

    def fire_hooks(self, domain: Any, now: float, pos: HookPos,
                   item: Any = None) -> HookCtx:
        """Invoke all hooks, reusing one ctx object per hookable.

        The hot-path variant of :meth:`invoke_hooks`: allocating a
        fresh :class:`HookCtx` per port crossing is measurable at
        millions of messages, so the ctx is mutated in place instead.
        Safe because hooks run synchronously on the simulation thread
        and must not retain the ctx (module docstring).  Returns the
        ctx so callers can inspect ``skip``.
        """
        ctx = self._hook_ctx
        if ctx is None:
            ctx = self._hook_ctx = HookCtx(domain, now, pos, item)
        else:
            ctx.domain = domain
            ctx.now = now
            ctx.pos = pos
            ctx.item = item
            ctx.skip = False
        for hook in self._hooks:
            hook(ctx)
        return ctx

    @property
    def num_hooks(self) -> int:
        return len(self._hooks)

    # -- pickling (checkpoint/restore) ---------------------------------
    # Hooks are monitoring-scoped: they close over tracers, metric
    # registries and injectors that live outside the simulated system.
    # A checkpoint captures the *simulated* state only; whoever restores
    # the snapshot attaches a fresh monitor.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for attr in ("_hooks", "_hook_ctx", "_hook_positions",
                     "_hook_subs"):
            state.pop(attr, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._hooks = []
        self._hook_ctx = None
        self._hook_positions = frozenset()
        self._hook_subs = []
