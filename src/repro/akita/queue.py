"""The event queue: a priority queue ordered by (time, secondary, seq).

Ordering rules
--------------
1. Earlier virtual time first.
2. At equal time, primary events before secondary events.
3. At equal time and class, insertion order into *this queue* wins.
   The tie-break is a per-queue sequence counter, not the process-global
   event id: ids are minted by a global counter shared with every other
   engine (and monitor thread) in the process, so two otherwise
   identical runs could interleave ids differently and schedule
   same-tick events in different orders.  The per-queue counter depends
   only on what was pushed here, in what order — which is itself
   deterministic — so runs are bit-for-bit reproducible, and a sharded
   simulation can be checked for equivalence against a monolithic one.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from .event import Event


class EventQueue:
    """A deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        """Insert *event*."""
        self._seq += 1
        key = (event.time, 1 if event.secondary else 0, self._seq, event)
        heapq.heappush(self._heap, key)

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Optional[Event]:
        """Return the earliest event without removing it, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][3]

    def next_time(self) -> Optional[float]:
        """Virtual time of the earliest event, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def clear(self) -> None:
        """Drop all pending events (used when aborting a simulation)."""
        self._heap.clear()
