"""The event queue: a priority queue ordered by (time, secondary, id).

Ordering rules
--------------
1. Earlier virtual time first.
2. At equal time, primary events before secondary events.
3. At equal time and class, lower event ID first (insertion order), which
   makes runs bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from .event import Event


class EventQueue:
    """A deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        """Insert *event*."""
        key = (event.time, 1 if event.secondary else 0, event.id, event)
        heapq.heappush(self._heap, key)

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Optional[Event]:
        """Return the earliest event without removing it, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][3]

    def next_time(self) -> Optional[float]:
        """Virtual time of the earliest event, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def clear(self) -> None:
        """Drop all pending events (used when aborting a simulation)."""
        self._heap.clear()
