"""Components: named pieces of simulated hardware.

A :class:`Component` owns ports and reacts to events.  A
:class:`TickingComponent` additionally follows Akita's tick discipline:

* Each cycle the engine delivers a :class:`~repro.akita.event.TickEvent`
  and the component's :meth:`~TickingComponent.tick` tries to make
  progress.
* If the tick made progress, another tick is scheduled for the next
  cycle; otherwise the component *sleeps* — it consumes zero events until
  something wakes it (a message arrival, freed buffer space, or
  AkitaRTM's *Tick* button via :meth:`TickingComponent.tick_later`).

The sleep/wake discipline is what makes hangs observable: a deadlocked
simulation puts every component to sleep, the event queue runs dry, and
the monitor sees virtual time freeze while buffers stay non-empty.
"""

from __future__ import annotations

from typing import Dict, List

from typing import Any

from . import naming
from .engine import Engine
from .event import Event, TickEvent
from .hooks import HookPos, Hookable, TaskInfo
from .port import Port
from .ticker import GHZ, next_tick


class Component(Hookable):
    """Base class for all simulated hardware blocks."""

    def __init__(self, name: str, engine: Engine):
        super().__init__()
        naming.validate(name)
        self.name = name
        self._engine = engine
        self._ports: Dict[str, Port] = {}

    # -- ports ---------------------------------------------------------
    def add_port(self, local_name: str, buf_capacity: int = 4) -> Port:
        """Create a port named ``<component>.<local_name>``."""
        if local_name in self._ports:
            raise ValueError(
                f"component {self.name} already has port {local_name}")
        port = Port(self, naming.join(self.name, local_name), buf_capacity)
        self._ports[local_name] = port
        return port

    def port(self, local_name: str) -> Port:
        return self._ports[local_name]

    @property
    def ports(self) -> List[Port]:
        return list(self._ports.values())

    @property
    def engine(self) -> Engine:
        return self._engine

    # -- event handling --------------------------------------------------
    def handle(self, event: Event) -> None:
        raise NotImplementedError

    # -- task annotations (observed by repro.trace) ------------------------
    def task_begin(self, task_id: Any, kind: str = "",
                   what: str = "") -> None:
        """Announce the start of a unit of work (workgroup, cache miss,
        RDMA transfer...).  No-op without hooks; hot call sites should
        still guard with ``if self._hooks`` to skip the call entirely.
        """
        if HookPos.TASK_BEGIN in self._hook_positions:
            self.fire_hooks(self, self._engine.now, HookPos.TASK_BEGIN,
                            TaskInfo(task_id, kind, what))

    def task_end(self, task_id: Any, kind: str = "",
                 what: str = "") -> None:
        """Announce the end of the unit of work opened with the same
        *task_id* via :meth:`task_begin`."""
        if HookPos.TASK_END in self._hook_positions:
            self.fire_hooks(self, self._engine.now, HookPos.TASK_END,
                            TaskInfo(task_id, kind, what))

    # -- notifications (called by ports/connections) -----------------------
    def notify_recv(self, port: Port) -> None:
        """A message arrived at *port*."""

    def notify_available(self, port: Port) -> None:
        """Buffer space freed somewhere this component may want to send."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class TickingComponent(Component):
    """A component driven by per-cycle tick events with sleep/wake."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ):
        super().__init__(name, engine)
        self.freq = freq
        self._next_scheduled: float | None = None
        self._last_tick_time = -1.0
        self.tick_count = 0  # total ticks executed (observable by RTM)

    # -- the per-cycle work, supplied by subclasses -------------------------
    def tick(self) -> bool:
        """Advance one cycle.  Return True iff progress was made."""
        raise NotImplementedError

    # -- tick machinery ----------------------------------------------------
    def handle(self, event: Event) -> None:
        if isinstance(event, TickEvent):
            if (self._next_scheduled is not None
                    and event.time >= self._next_scheduled):
                self._next_scheduled = None
            if event.time == self._last_tick_time:
                # Duplicate tick in the same cycle (can happen when the
                # monitor pokes a component that was already scheduled).
                return
            self._last_tick_time = event.time
            self.tick_count += 1
            if self.tick():
                self.tick_later()

    def tick_later(self) -> None:
        """Schedule a tick for the next cycle unless an earlier-or-equal
        tick is already pending.

        Safe to call from monitoring threads; this is the primitive
        behind AkitaRTM's *Tick* button.
        """
        self.tick_at(next_tick(self._engine.now, self.freq))

    def tick_at(self, t: float) -> None:
        """Schedule a tick at cycle-aligned time *t* (used by components
        that wait out a fixed latency, e.g. DRAM).

        If an earlier tick is already pending this is a no-op; if only a
        *later* tick is pending, the earlier one is scheduled anyway and
        the later one becomes a harmless stale wakeup.
        """
        t = max(t, next_tick(self._engine.now, self.freq))
        if self._next_scheduled is not None and self._next_scheduled <= t:
            return
        self._next_scheduled = t
        self._engine.schedule(TickEvent(t, self))

    @property
    def asleep(self) -> bool:
        """True when no tick is scheduled (the component is sleeping)."""
        return self._next_scheduled is None

    def notify_recv(self, port: Port) -> None:
        self.tick_later()

    def notify_available(self, port: Port) -> None:
        self.tick_later()
