"""The serial discrete-event engine.

The engine owns the event queue and the virtual clock.  It is the single
object AkitaRTM needs to control a simulation: the monitor pauses and
resumes it, queries its time, and counts its events to estimate simulation
speed.

Threading model
---------------
Exactly one thread (the *simulation thread*) calls :meth:`Engine.run`.
Any other thread (e.g. AkitaRTM's HTTP server thread) may call
:meth:`pause`, :meth:`continue_`, :meth:`schedule` and the read-only
accessors.  Pausing blocks the simulation thread *between* events, so a
paused simulation is at a consistent event boundary and can be inspected
safely.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Optional

from .errors import EngineError, SchedulingError
from .event import Event, VTimeInSec
from .hooks import Hookable, HookCtx, HookPos
from .queue import EventQueue
from ..profile.threads import register_current_thread as \
    _register_sim_thread


class RunState(enum.Enum):
    """Lifecycle of an engine as observed by monitoring tools."""

    IDLE = "idle"          # run() not yet called
    RUNNING = "running"    # processing events
    PAUSED = "paused"      # blocked between two events on user request
    DRY = "dry"            # queue ran empty; simulation may be done or hung
    ENDED = "ended"        # terminate() called; run() will not resume


class Engine(Hookable):
    """A serial event-driven engine with external pause/resume control."""

    def __init__(self) -> None:
        super().__init__()
        self._queue = EventQueue()
        self._now: VTimeInSec = 0.0
        self._lock = threading.RLock()
        self._resume = threading.Event()
        self._resume.set()
        self._pause_requested = False
        self._terminated = False
        self._state = RunState.IDLE
        self._event_count = 0
        self._last_event_time: VTimeInSec = 0.0
        self._throttle_delay = 0.0  # wall seconds inserted per event

    # ------------------------------------------------------------------
    # Read-only accessors (safe from any thread)
    # ------------------------------------------------------------------
    @property
    def now(self) -> VTimeInSec:
        """Current virtual time in seconds."""
        return self._now

    def current_time(self) -> VTimeInSec:
        """Alias of :attr:`now`, mirroring Akita's ``CurrentTime()``."""
        return self._now

    @property
    def run_state(self) -> RunState:
        return self._state

    @property
    def event_count(self) -> int:
        """Total number of events processed so far."""
        return self._event_count

    @property
    def pending_event_count(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def next_event_time(self) -> Optional[VTimeInSec]:
        """Timestamp of the earliest pending event, or ``None`` when the
        queue is empty.  The quantity shards report at every window
        barrier: the coordinator's grant horizon is the minimum of
        these across shards plus the sync window."""
        with self._lock:
            return self._queue.next_time()

    @property
    def last_event_time(self) -> VTimeInSec:
        """Time of the most recently processed event.  Unlike
        :attr:`now` this never moves on a windowed clock clamp, so it
        is the honest "how far did the simulation get" answer — a
        shard's final solo grant parks :attr:`now` a full grant past
        the last real event."""
        return self._last_event_time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: Event) -> None:
        """Insert *event* into the queue.

        Raises
        ------
        SchedulingError
            If the event is in the past.
        """
        if event.time < self._now:
            raise SchedulingError(
                f"cannot schedule event at {event.time} when now={self._now}")
        with self._lock:
            self._queue.push(event)

    # ------------------------------------------------------------------
    # Control (callable from monitoring threads)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Request the engine to block before processing its next event.

        Idempotent.  Returns immediately; the simulation thread parks at
        the next event boundary.
        """
        self._pause_requested = True
        self._resume.clear()
        self.invoke_hooks(HookCtx(self, self._now, HookPos.ENGINE_PAUSE))

    def continue_(self) -> None:
        """Release a paused engine.  Idempotent."""
        self._pause_requested = False
        self._resume.set()
        self.invoke_hooks(HookCtx(self, self._now, HookPos.ENGINE_CONTINUE))

    @property
    def paused(self) -> bool:
        return self._pause_requested

    def set_throttle(self, events_per_second: float = 0.0) -> None:
        """Slow the simulation down to at most *events_per_second*
        (0 = full speed).

        This is the paper's "slowing down time in the simulator to try
        to catch specific instances of component ticks" (§V-C): with
        the event rate capped to human speed, the dashboard's
        self-refreshing views become a live animation of the hardware.
        Safe to call from monitoring threads.
        """
        if events_per_second <= 0:
            self._throttle_delay = 0.0
        else:
            self._throttle_delay = 1.0 / events_per_second

    @property
    def throttled(self) -> bool:
        return self._throttle_delay > 0.0

    def terminate(self) -> None:
        """Abort the simulation: run() returns as soon as possible and
        never processes another event."""
        self._terminated = True
        self._resume.set()

    # ------------------------------------------------------------------
    # Execution (simulation thread only)
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Process events until the queue is empty or :meth:`terminate`.

        May be called repeatedly: a hung simulation leaves the queue empty
        without reaching its completion condition, and scheduling a fresh
        event (e.g. AkitaRTM's *Tick* button) followed by another
        :meth:`run` resumes processing — this is the "kick start" path
        described in the paper's second case study.
        """
        if self._terminated:
            raise EngineError("cannot run a terminated engine")
        # Claim the *simulation* role for the calling thread: the sim
        # thread is, by definition, whoever runs the engine, and the
        # profilers need to know (a monitor pins its sampler to this
        # registration so server/watchdog threads can never masquerade
        # as simulation time).
        _register_sim_thread("simulation")
        self._state = RunState.RUNNING
        self.invoke_hooks(HookCtx(self, self._now, HookPos.ENGINE_START))
        # One reusable ctx serves the before/after pair of every event:
        # constructing two dataclasses per event is measurable at
        # millions of events.  Hooks must not retain the ctx (see
        # hooks.py); a hook attached between the two firings of one
        # event still sees a correctly filled ctx.
        ctx = HookCtx(self, self._now, HookPos.BEFORE_EVENT)
        while True:
            if self._terminated:
                break
            if self._pause_requested:
                self._state = RunState.PAUSED
                self._resume.wait()
                self._state = RunState.RUNNING
                continue
            with self._lock:
                if len(self._queue) == 0:
                    break
                event = self._queue.pop()
            self._now = event.time
            self._last_event_time = event.time
            hooks = self._hooks
            if hooks:
                ctx.now = self._now
                ctx.pos = HookPos.BEFORE_EVENT
                ctx.item = event
                ctx.skip = False
                for hook in hooks:
                    hook(ctx)
                if ctx.skip:
                    continue
            event.handler.handle(event)
            self._event_count += 1
            hooks = self._hooks
            if hooks:
                ctx.now = self._now
                ctx.pos = HookPos.AFTER_EVENT
                ctx.item = event
                ctx.skip = False
                for hook in hooks:
                    hook(ctx)
            if self._throttle_delay:
                time.sleep(self._throttle_delay)
        if self._terminated:
            self._state = RunState.ENDED
            self.invoke_hooks(HookCtx(self, self._now, HookPos.ENGINE_END))
        else:
            self._state = RunState.DRY
            self.invoke_hooks(HookCtx(self, self._now, HookPos.ENGINE_DRY))

    def run_window(self, horizon: VTimeInSec) -> int:
        """Process every event strictly before *horizon*, then stop.

        The conservative-sync primitive of the sharded execution mode: a
        shard granted the horizon ``T_min + W`` (minimum next event time
        across shards plus the minimum cross-shard latency) may safely
        run every event with ``time < horizon``, because no boundary
        message from another shard can arrive earlier.  Events *at* the
        horizon belong to the next window — cross-shard deliveries
        injected at exactly ``T_min + W`` must order against them.

        On return the clock has advanced to at least *horizon* (even if
        the queue ran dry earlier), so post-window injections and wakes
        can never be scheduled in the past.  The engine stays
        ``RUNNING`` between windows — monitors should see one live
        simulation, not a dry/running flap at every barrier.  Honors
        pause requests and :meth:`terminate` like :meth:`run`.

        Returns the number of events processed in this window.
        """
        if self._terminated:
            return 0
        if self._state is RunState.IDLE:
            _register_sim_thread("simulation")
            self.invoke_hooks(HookCtx(self, self._now, HookPos.ENGINE_START))
        self._state = RunState.RUNNING
        processed = 0
        ctx = HookCtx(self, self._now, HookPos.BEFORE_EVENT)
        while True:
            if self._terminated:
                break
            if self._pause_requested:
                self._state = RunState.PAUSED
                self._resume.wait()
                self._state = RunState.RUNNING
                continue
            with self._lock:
                nxt = self._queue.next_time()
                if nxt is None or nxt >= horizon:
                    break
                event = self._queue.pop()
            self._now = event.time
            self._last_event_time = event.time
            hooks = self._hooks
            if hooks:
                ctx.now = self._now
                ctx.pos = HookPos.BEFORE_EVENT
                ctx.item = event
                ctx.skip = False
                for hook in hooks:
                    hook(ctx)
                if ctx.skip:
                    continue
            event.handler.handle(event)
            self._event_count += 1
            processed += 1
            hooks = self._hooks
            if hooks:
                ctx.now = self._now
                ctx.pos = HookPos.AFTER_EVENT
                ctx.item = event
                ctx.skip = False
                for hook in hooks:
                    hook(ctx)
            if self._throttle_delay:
                time.sleep(self._throttle_delay)
        if self._terminated:
            self._state = RunState.ENDED
            self.invoke_hooks(HookCtx(self, self._now, HookPos.ENGINE_END))
        else:
            self._now = max(self._now, horizon)
        return processed

    def finish_windows(self) -> None:
        """Mark the end of windowed execution (queue empty, run done)."""
        if self._state is RunState.RUNNING:
            self._state = RunState.DRY
            self.invoke_hooks(HookCtx(self, self._now, HookPos.ENGINE_DRY))

    # ------------------------------------------------------------------
    # Pickling (checkpoint/restore)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Checkpoint view of the engine: clock, queue and counters.

        Threading primitives belong to the *process*, not the simulated
        state, and a snapshot is only taken at an event boundary (paused
        or dry), so dropping them loses nothing.
        """
        state = super().__getstate__()
        for attr in ("_lock", "_resume"):
            state.pop(attr, None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._lock = threading.RLock()
        self._resume = threading.Event()
        self._resume.set()
        # The restored engine is runnable regardless of how the
        # checkpointed one was parked (paused, mid-run, terminated).
        self._pause_requested = False
        self._terminated = False
        self._state = RunState.IDLE

    def run_until(self, t: VTimeInSec) -> None:
        """Process events with time ≤ *t* (useful in tests).

        Does not honor pause requests; intended for single-threaded use.
        """
        self._state = RunState.RUNNING
        ctx = HookCtx(self, self._now, HookPos.BEFORE_EVENT)
        while True:
            with self._lock:
                nxt = self._queue.next_time()
                if nxt is None or nxt > t or self._terminated:
                    break
                event = self._queue.pop()
            self._now = event.time
            self._last_event_time = event.time
            hooks = self._hooks
            if hooks:
                ctx.now = self._now
                ctx.pos = HookPos.BEFORE_EVENT
                ctx.item = event
                ctx.skip = False
                for hook in hooks:
                    hook(ctx)
                if ctx.skip:
                    continue
            event.handler.handle(event)
            self._event_count += 1
            hooks = self._hooks
            if hooks:
                ctx.now = self._now
                ctx.pos = HookPos.AFTER_EVENT
                ctx.item = event
                ctx.skip = False
                for hook in hooks:
                    hook(ctx)
        self._now = max(self._now, t)
        self._state = RunState.DRY
