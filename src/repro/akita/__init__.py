"""``repro.akita`` — a Python reimplementation of the Akita DES framework.

This is the substrate MGPUSim (here ``repro.gpu``) is built on and the
layer AkitaRTM (``repro.core``) hooks into.  Key concepts:

* :class:`Engine` — the serial event engine with pause/resume control.
* :class:`Component` / :class:`TickingComponent` — hardware blocks that
  communicate exclusively through :class:`Port` objects.
* :class:`Buffer` — bounded FIFOs; their fullness drives the paper's
  bottleneck analysis.
* :class:`DirectConnection` — latency + backpressure message transport.
* :class:`Simulation` — engine + component registry + the hang-aware run
  loop ("kick start" semantics).
"""

from .buffer import Buffer
from .component import Component, TickingComponent
from .connection import Connection, DirectConnection, Transfer
from .engine import Engine, RunState
from .errors import (
    BufferError_,
    ConfigurationError,
    EngineError,
    PortError,
    SchedulingError,
    SimulationError,
)
from .event import CallbackEvent, Event, Handler, TickEvent, VTimeInSec
from .hooks import Hook, HookCtx, HookPos, Hookable, TaskInfo
from .message import ControlMsg, GeneralRsp, Msg
from .port import Port
from .queue import EventQueue
from .simulation import Simulation
from .ticker import GHZ, MHZ, cycles_to_seconds, next_tick, period, this_tick
from . import naming

__all__ = [
    "Buffer",
    "CallbackEvent",
    "Component",
    "Connection",
    "ControlMsg",
    "DirectConnection",
    "Engine",
    "Event",
    "EventQueue",
    "GHZ",
    "GeneralRsp",
    "Handler",
    "Hook",
    "HookCtx",
    "HookPos",
    "Hookable",
    "MHZ",
    "Msg",
    "Port",
    "RunState",
    "SchedulingError",
    "SimulationError",
    "Simulation",
    "TaskInfo",
    "TickEvent",
    "TickingComponent",
    "Transfer",
    "VTimeInSec",
    "BufferError_",
    "ConfigurationError",
    "EngineError",
    "PortError",
    "cycles_to_seconds",
    "naming",
    "next_tick",
    "period",
    "this_tick",
]
