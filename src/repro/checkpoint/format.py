"""Checkpoint file format and the save/load fix-up pipeline.

Layout::

    <header JSON>\\n
    <pickled payload bytes>

The header is one line of JSON carrying a magic string, a format
version, the payload length, its SHA-256, and a ``meta`` dict (sim
time, event count, id watermarks, plus whatever the caller adds — job
id, attempt, cadence sequence).  Loading verifies magic, version,
length and digest before unpickling, so a truncated or bit-flipped
file fails loudly instead of resuming a corrupt simulation.  Files are
written via temp-file + fsync + atomic rename
(:mod:`repro.core.atomicio`), so the last good checkpoint at a path
survives a crash mid-save.

Restore fix-ups (what pickling alone cannot carry):

* **Id watermarks.**  Event and message ids come from process-global
  counters; the restoring process fast-forwards its counters past the
  snapshot's watermark so restored ids stay unique and the event
  queue's deterministic tie-breaking is preserved.
* **Workload programs.**  Wavefront op streams are generators of
  (deterministic) workload programs — unpicklable.  Kernel descriptors
  drop them on save; the loader reinstalls them by kernel name from
  the workload the caller provides, and live wavefronts replay their
  consumed-op count to their exact position.
* **Tick revival.**  The snapshot may have been taken from a *damaged*
  run (a stall fault puts components into a wakeable coma).  The
  loader reconciles each ticking component's schedule flag against
  the actual pending tick events; if the snapshot's queue is dry —
  the hung-run signature — it additionally schedules a wake-up tick
  for every ticking component.  Snapshots with pending events are
  self-driving and resume unperturbed, preserving exactness.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
from typing import Any, Callable, Dict, Optional, Tuple

from ..akita.component import TickingComponent
from ..akita.event import (
    TickEvent,
    ensure_event_ids_at_least,
    event_id_watermark,
)
from ..akita.message import ensure_msg_ids_at_least, msg_id_watermark
from ..core.atomicio import atomic_write_bytes

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "load_checkpoint",
    "read_checkpoint_meta",
    "save_checkpoint",
]

CHECKPOINT_MAGIC = "rtm-ckpt"
CHECKPOINT_VERSION = 1

#: Refuse to parse absurd header lines (a corrupt file could otherwise
#: make the reader scan for a newline through gigabytes of pickle).
_MAX_HEADER_BYTES = 1 << 20


class CheckpointError(Exception):
    """A checkpoint could not be written, read, or verified."""


def save_checkpoint(platform: Any, path: str,
                    meta: Optional[Dict[str, Any]] = None,
                    fsync: bool = True) -> Dict[str, Any]:
    """Snapshot *platform* to *path* atomically; returns the header.

    The caller must ensure the simulation is quiescent — the engine
    paused, dry, or the call made from the simulation thread between
    events (the :class:`~repro.checkpoint.checkpointer.Checkpointer`
    guarantees this).  Unpicklable transients in the object graph (e.g.
    a fault injector's pending pin-window callbacks) raise
    :class:`CheckpointError`; the cadence driver treats that as a
    skipped snapshot, never a dead run.
    """
    engine = getattr(platform, "engine", None)
    header_meta: Dict[str, Any] = dict(meta or {})
    if engine is not None:
        header_meta.setdefault("sim_time", engine.now)
        header_meta.setdefault("event_count", engine.event_count)
        header_meta.setdefault("pending_events",
                               engine.pending_event_count)
    header_meta["event_id_watermark"] = event_id_watermark()
    header_meta["msg_id_watermark"] = msg_id_watermark()
    try:
        payload = pickle.dumps(platform,
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"simulation state is not picklable right now: "
            f"{type(exc).__name__}: {exc}") from exc
    header = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
        "meta": header_meta,
    }
    buf = io.BytesIO()
    buf.write(json.dumps(header).encode())
    buf.write(b"\n")
    buf.write(payload)
    try:
        atomic_write_bytes(path, buf.getvalue(), fsync=fsync)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: "
                              f"{exc}") from exc
    return header


def read_checkpoint_meta(path: str) -> Dict[str, Any]:
    """Read and validate only the header of *path* (cheap)."""
    header, _ = _read_header(path)
    return header


def load_checkpoint(path: str, workload: Any = None,
                    programs: Optional[Dict[str, Callable]] = None,
                    revive: bool = True) -> Tuple[Any, Dict[str, Any]]:
    """Load, verify and fix up a checkpoint; returns ``(platform,
    header)``.

    *workload* (a :class:`repro.workloads.base.Workload`) or *programs*
    (kernel name → program fn) supplies the generator programs to
    reinstall; omit both only for platforms that never launched a
    kernel.  *revive* (default) schedules wake-up ticks so a snapshot
    of a stalled run resumes making progress.
    """
    header, payload = _read_header(path, want_payload=True)
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(
            f"checkpoint {path} is corrupt: payload SHA-256 mismatch")
    try:
        platform = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path} failed to unpickle: "
            f"{type(exc).__name__}: {exc}") from exc
    meta = header.get("meta", {})
    ensure_event_ids_at_least(int(meta.get("event_id_watermark", 0)) + 1)
    ensure_msg_ids_at_least(int(meta.get("msg_id_watermark", 0)) + 1)
    _reinstall_programs(platform, workload, programs)
    if revive:
        _revive_ticking(platform)
    return platform, header


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _read_header(path: str,
                 want_payload: bool = False
                 ) -> Tuple[Dict[str, Any], bytes]:
    try:
        with open(path, "rb") as fh:
            line = fh.readline(_MAX_HEADER_BYTES)
            if not line.endswith(b"\n"):
                raise CheckpointError(
                    f"checkpoint {path} has no complete header line")
            try:
                header = json.loads(line)
            except ValueError as exc:
                raise CheckpointError(
                    f"checkpoint {path} header is not JSON: "
                    f"{exc}") from exc
            if not isinstance(header, dict) \
                    or header.get("magic") != CHECKPOINT_MAGIC:
                raise CheckpointError(
                    f"{path} is not an rtm checkpoint")
            if header.get("version") != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint {path} has unsupported version "
                    f"{header.get('version')!r} (this build reads "
                    f"{CHECKPOINT_VERSION})")
            expected = int(header.get("payload_bytes", -1))
            if expected < 0:
                raise CheckpointError(
                    f"checkpoint {path} header lacks payload_bytes")
            if not want_payload:
                return header, b""
            payload = fh.read(expected + 1)
            if len(payload) != expected:
                raise CheckpointError(
                    f"checkpoint {path} is truncated or padded: "
                    f"expected {expected} payload bytes, found "
                    f"{len(payload)}")
            return header, payload
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}") from exc


def _reinstall_programs(platform: Any, workload: Any,
                        programs: Optional[Dict[str, Callable]]) -> None:
    driver = getattr(platform, "driver", None)
    kernels = getattr(driver, "kernels", None)
    if not kernels:
        return
    table: Dict[str, Callable] = dict(programs or {})
    if workload is not None:
        descriptor = workload.kernel()
        table.setdefault(descriptor.name, descriptor.program)
    missing = []
    for state in kernels:
        descriptor = state.descriptor
        if descriptor.program is not None:
            continue
        program = table.get(descriptor.name)
        if program is None:
            missing.append(descriptor.name)
            continue
        # Pickle preserves object identity, so one reinstall fixes the
        # descriptor every command, message and wavefront points at.
        descriptor.install_program(program)
    if missing:
        raise CheckpointError(
            "no program available for kernel(s) "
            f"{sorted(set(missing))}; pass the checkpoint's workload "
            "(or a programs= mapping) to load_checkpoint")


def _revive_ticking(platform: Any) -> None:
    simulation = getattr(platform, "simulation", platform)
    engine = getattr(simulation, "engine", None)
    components = getattr(simulation, "components", None)
    if engine is None or components is None:
        return
    # Reconcile each ticking component's schedule flag with the ticks
    # actually frozen in the queue (earliest pending tick per handler).
    pending: Dict[int, float] = {}
    for entry in engine._queue._heap:
        event = entry[3]
        if isinstance(event, TickEvent):
            key = id(event.handler)
            t = event.time
            if key not in pending or t < pending[key]:
                pending[key] = t
    queue_dry = len(engine._queue) == 0
    for component in components:
        if not isinstance(component, TickingComponent):
            continue
        component._next_scheduled = pending.get(id(component))
        # Kick only when the snapshot's queue is dry: a non-empty queue
        # is a self-driving simulation and extra wake ticks would
        # perturb its exact schedule, while a dry queue means every
        # component is asleep — either the workload finished (kicks are
        # a few no-progress ticks) or a fault put the system into a
        # wakeable coma, and the kick is the difference between
        # resuming and staying hung.  A run that goes back to sleep
        # *after* restore is the watchdog's job, same as any hang.
        if queue_dry:
            component.tick_later()
