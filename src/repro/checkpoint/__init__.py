"""``repro.checkpoint`` — simulation checkpoint/restore.

The durability layer's engine half: a crashed or stall-aborted
simulation attempt restarts from its last good snapshot instead of
t=0.  A checkpoint is taken at an event boundary (the engine paused or
between events), so it captures a consistent view of the entire
simulated system: the engine clock and event queue, every component's
architectural state (caches, ROBs, MSHRs, wavefronts), workload
progress, and the deterministic address-stream position of every live
wavefront.

Two layers:

* :mod:`~repro.checkpoint.format` — the on-disk format and the
  save/load fix-up pipeline (versioned + checksummed + atomically
  renamed; restore reinstalls workload programs and revives the tick
  schedule).
* :mod:`~repro.checkpoint.checkpointer` — the cadence driver: snapshot
  every N events (deterministic, fires on the simulation thread) or
  every T wall seconds (pauses the engine at an event boundary first).
"""

from .checkpointer import Checkpointer
from .format import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    read_checkpoint_meta,
    save_checkpoint,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "CheckpointError",
    "load_checkpoint",
    "read_checkpoint_meta",
    "save_checkpoint",
]
