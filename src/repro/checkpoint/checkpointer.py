"""The cadence driver: periodic snapshots of a live simulation.

Two cadences, composable:

* ``every_events=N`` — deterministic: an ``AFTER_EVENT`` hook fires the
  snapshot on the simulation thread every N processed events, at an
  event boundary by construction.  This is the mode tests and the
  resume benchmark use: the snapshot lands at the same virtual time on
  every run.
* ``interval=T`` — wall-clock: a daemon thread pauses the engine,
  waits for the simulation thread to park at an event boundary, saves,
  and resumes.  This is the mode fleet workers use for crash
  insurance on long jobs.

A failed save (e.g. a fault injector's pin-window callbacks are
momentarily in the queue and unpicklable) is *counted and skipped*,
never allowed to take the run down: durability machinery must not be a
new crash source.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from ..akita.engine import RunState
from ..akita.hooks import HookCtx, HookPos
from .format import CheckpointError, save_checkpoint

__all__ = ["Checkpointer"]

#: How long the interval thread waits for the engine to park.
_PAUSE_WAIT = 5.0
_PAUSE_POLL = 0.002


class Checkpointer:
    """Writes periodic checkpoints of *platform* to *path*.

    Every save atomically replaces *path*, so the file is always the
    last good snapshot — the single thing a restarting worker needs.

    Parameters
    ----------
    platform:
        The simulation to snapshot (anything with ``engine`` /
        ``simulation`` attributes; in practice a
        :class:`~repro.gpu.platform.GPUPlatform`).
    path:
        Target file, atomically overwritten on each save.
    every_events:
        Snapshot every N processed events (0 disables the hook mode).
    interval:
        Snapshot every T wall seconds (0 disables the thread mode).
    meta:
        Extra header fields stamped into every snapshot (job id,
        attempt...).
    on_save:
        Called with the header dict after each successful save (fleet
        workers announce checkpoints to their manager here).
    registry:
        Optional :class:`~repro.metrics.MetricRegistry`; receives
        ``rtm_checkpoint_writes_total``, ``rtm_checkpoint_errors_total``
        and ``rtm_checkpoint_bytes``/``rtm_checkpoint_sim_time`` gauges.
    """

    def __init__(self, platform: Any, path: str,
                 every_events: int = 0, interval: float = 0.0,
                 meta: Optional[Dict[str, Any]] = None,
                 on_save: Optional[Callable[[Dict[str, Any]], None]]
                 = None,
                 registry: Any = None):
        if every_events <= 0 and interval <= 0:
            raise ValueError(
                "Checkpointer needs every_events > 0 and/or "
                "interval > 0")
        self.platform = platform
        self.engine = platform.engine
        self.path = path
        self.every_events = int(every_events)
        self.interval = float(interval)
        self.meta = dict(meta or {})
        self.on_save = on_save
        self.count = 0
        self.errors = 0
        self.last_error: Optional[str] = None
        self.last_header: Optional[Dict[str, Any]] = None
        self._save_lock = threading.Lock()
        self._next_at = 0
        self._hook_installed = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._metrics = None
        if registry is not None:
            self._metrics = {
                "writes": registry.counter(
                    "rtm_checkpoint_writes_total",
                    "Checkpoints successfully written."),
                "errors": registry.counter(
                    "rtm_checkpoint_errors_total",
                    "Checkpoint attempts skipped because the state "
                    "was unpicklable or the write failed."),
                "bytes": registry.gauge(
                    "rtm_checkpoint_bytes",
                    "Size of the last written checkpoint."),
                "sim_time": registry.gauge(
                    "rtm_checkpoint_sim_time",
                    "Virtual time of the last written checkpoint."),
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install the event hook and/or start the interval thread."""
        if self.every_events > 0 and not self._hook_installed:
            self._next_at = self.engine.event_count + self.every_events
            self.engine.accept_hook(self._on_event,
                                    positions=(HookPos.AFTER_EVENT,))
            self._hook_installed = True
        if self.interval > 0 and self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._interval_loop, daemon=True,
                name="rtm-checkpointer")
            self._thread.start()

    def stop(self) -> None:
        """Detach the hook and stop the interval thread."""
        if self._hook_installed:
            self.engine.remove_hook(self._on_event)
            self._hook_installed = False
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def save_now(self) -> Optional[Dict[str, Any]]:
        """One snapshot, caller-guaranteed quiescent.  Returns the
        header, or ``None`` if the save was skipped (state unpicklable
        or write failure — counted in :attr:`errors`)."""
        with self._save_lock:
            meta = dict(self.meta)
            meta["checkpoint_seq"] = self.count
            try:
                header = save_checkpoint(self.platform, self.path,
                                         meta=meta)
            except CheckpointError as exc:
                self.errors += 1
                self.last_error = str(exc)
                if self._metrics:
                    self._metrics["errors"].inc()
                return None
            self.count += 1
            self.last_header = header
            self.last_error = None
            if self._metrics:
                self._metrics["writes"].inc()
                self._metrics["bytes"].set(
                    float(header["payload_bytes"]))
                self._metrics["sim_time"].set(
                    float(header["meta"].get("sim_time", 0.0)))
            if self.on_save is not None:
                try:
                    self.on_save(header)
                except Exception:
                    pass  # announcement failures must not kill the run
            return header

    @property
    def last_path(self) -> Optional[str]:
        """Path of the last good checkpoint, or ``None`` if none yet."""
        return self.path if self.count > 0 else None

    def status(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "every_events": self.every_events,
            "interval": self.interval,
            "count": self.count,
            "errors": self.errors,
            "last_error": self.last_error,
            "last": (self.last_header or {}).get("meta"),
        }

    # ------------------------------------------------------------------
    # Cadence internals
    # ------------------------------------------------------------------
    def _on_event(self, ctx: HookCtx) -> None:
        if ctx.pos is not HookPos.AFTER_EVENT:
            return
        if self.engine.event_count >= self._next_at:
            self.save_now()  # on the sim thread => between events
            self._next_at = self.engine.event_count + self.every_events

    def _interval_loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.save_paused()

    def save_paused(self) -> bool:
        """Pause → park → save → continue.  Returns True on a save."""
        engine = self.engine
        if engine.run_state is RunState.RUNNING:
            engine.pause()
            try:
                deadline = _PAUSE_WAIT / _PAUSE_POLL
                while engine.run_state is RunState.RUNNING \
                        and deadline > 0:
                    if self._stop.wait(_PAUSE_POLL):
                        return False
                    deadline -= 1
                if engine.run_state is RunState.RUNNING:
                    return False  # refused to park; try next interval
                return self.save_now() is not None
            finally:
                engine.continue_()
        # Paused, dry, idle or ended: no thread is mutating sim state.
        return self.save_now() is not None
