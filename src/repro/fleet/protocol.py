"""The fleet control channel: line-framed JSON over worker stdio.

Both directions use the same framing.  **Commands** travel manager →
worker on stdin as bare JSON lines (the manager is the only writer, so
no prefix is needed)::

    {"cmd": "run", "spec": {...}, "attempt": 0}
    {"cmd": "reset"}
    {"cmd": "shutdown"}

**Events** travel worker → manager on stdout, each line prefixed
``@fleet `` so they coexist with ordinary logging::

    @fleet {"event": "ready", "worker_id": "w1", "url": ...}
    @fleet {"event": "started", "job_id": "fir-c1", "attempt": 0}
    @fleet {"event": "progress", "job_id": ..., "sim_time": ..., ...}
    @fleet {"event": "final-metrics", "job_id": ..., "metrics_text": ...}
    @fleet {"event": "done" | "failed", "job_id": ..., ...}

Framing is the weak point of any stdout protocol: a worker dying
mid-write leaves a torn line, a stray ``print`` from deep inside a
simulation can land *without* a trailing newline and glue itself onto
the next control line, and the OS delivers pipe traffic in arbitrary
chunk boundaries.  :class:`FrameDecoder` is the defensive reader the
manager uses: feed it raw byte chunks as they arrive and it yields only
complete, parseable control events, tolerating

* chunks that split a line (even mid-UTF-8-sequence),
* interleaved non-``@fleet`` stdout (ignored),
* garbage glued in front of a control prefix (recovered by scanning
  for the prefix inside the line),
* torn/unparseable JSON (dropped, counted in :attr:`errors`),
* unbounded garbage lines (buffer capped; oversized lines dropped).

On the worker side, :func:`emit` serializes writes under a process-wide
lock: events can be emitted from the job thread, the progress thread
and signal-adjacent teardown paths, and a ``final-metrics`` event
carrying a 30 KB exposition far exceeds the pipe's atomic-write
guarantee (``PIPE_BUF``), so without the lock two threads could
interleave and corrupt both frames.
"""

from __future__ import annotations

import codecs
import json
import sys
import threading
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["CONTROL_PREFIX", "FrameDecoder", "emit",
           "encode_command", "decode_command", "split_batches"]

#: Marker distinguishing control-channel lines from ordinary stdout.
CONTROL_PREFIX = "@fleet "

#: A single buffered line larger than this is garbage, not a frame
#: (the largest legitimate frame — a final exposition — is ~100 KB).
_MAX_LINE_BYTES = 8 * 1024 * 1024

_EMIT_LOCK = threading.Lock()


def emit(payload: Dict[str, Any], stream=None) -> None:
    """Write one control-channel event line, atomically and flushed.

    Flushed because the manager reads the pipe live (a buffered
    ``ready`` event would stall dispatch); locked because concurrent
    emitters (job thread + progress thread) would otherwise interleave
    inside one kernel write when the frame exceeds ``PIPE_BUF``.
    """
    line = CONTROL_PREFIX + json.dumps(payload) + "\n"
    out = stream if stream is not None else sys.stdout
    with _EMIT_LOCK:
        out.write(line)
        out.flush()


def encode_command(payload: Dict[str, Any]) -> bytes:
    """One manager → worker command line, ready for a binary pipe."""
    return (json.dumps(payload) + "\n").encode("utf-8")


def decode_command(line: str) -> Optional[Dict[str, Any]]:
    """Parse one stdin line into a command; ``None`` for blank or
    unparseable input (a worker must never die because its manager —
    or a human driving it interactively — typed something odd)."""
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


#: Sender-side batch budget: stay well under the decoder's line cap so
#: one frame (items + envelope + prefix) can never trip it.
_MAX_BATCH_BYTES = 1 * 1024 * 1024


def split_batches(items: List[Any],
                  max_bytes: int = _MAX_BATCH_BYTES) -> List[List[Any]]:
    """Split *items* into chunks whose JSON encoding stays under
    *max_bytes* each.

    The decoder drops any buffered line above its 8 MB cap — silently
    losing *every* item in an oversized frame.  Senders of unbounded
    batches (a shard's boundary-message outbox can hold thousands of
    encoded messages in a hot window) must therefore split *before*
    framing.  A single item larger than the budget still travels as its
    own chunk: splitting cannot shrink it, and the budget's headroom
    under the line cap absorbs any realistic single message.
    """
    if max_bytes <= 0:
        raise ValueError("max_bytes must be positive")
    batches: List[List[Any]] = []
    current: List[Any] = []
    current_bytes = 2  # the enclosing "[]"
    for item in items:
        size = len(json.dumps(item)) + 2  # ", " separator headroom
        if current and current_bytes + size > max_bytes:
            batches.append(current)
            current = []
            current_bytes = 2
        current.append(item)
        current_bytes += size
    if current:
        batches.append(current)
    return batches


class FrameDecoder:
    """Incremental, damage-tolerant decoder for the event channel.

    Feed raw byte chunks in arrival order; :meth:`feed` returns the
    complete control events they finish.  Partial lines (and partial
    UTF-8 sequences) wait in the buffer for the next chunk.
    """

    def __init__(self) -> None:
        self._decoder = codecs.getincrementaldecoder("utf-8")("replace")
        self._buffer = ""
        #: Torn or unparseable control frames seen (observability:
        #: a worker post-mortem quotes this).
        self.errors = 0
        #: Non-control stdout lines seen (ordinary worker logging).
        self.noise = 0
        #: Buffered lines dropped for exceeding the 8 MB cap.  Each one
        #: is a whole lost frame — a sender that trips this is shipping
        #: unsplit batches (see :func:`split_batches`) and the loss must
        #: be visible, not silent.
        self.oversized = 0

    def feed(self, chunk: bytes) -> List[Dict[str, Any]]:
        """Decode *chunk*; return every event it completes."""
        self._buffer += self._decoder.decode(chunk)
        events: List[Dict[str, Any]] = []
        while True:
            line, sep, rest = self._buffer.partition("\n")
            if not sep:
                if len(self._buffer) > _MAX_LINE_BYTES:
                    # Runaway garbage (a worker spewing binary with no
                    # newlines) must not balloon the manager's memory.
                    self._buffer = ""
                    self.errors += 1
                    self.oversized += 1
                break
            self._buffer = rest
            event = self._parse_line(line)
            if event is not None:
                events.append(event)
        return events

    def flush(self) -> List[Dict[str, Any]]:
        """EOF: a trailing unterminated line is by definition torn —
        the worker died mid-write — so it is counted, never parsed as
        if it were complete."""
        leftover, self._buffer = self._buffer, ""
        leftover += self._decoder.decode(b"", final=True)
        if leftover.strip():
            self.errors += 1 if CONTROL_PREFIX in leftover else 0
            if CONTROL_PREFIX not in leftover:
                self.noise += 1
        return []

    # ------------------------------------------------------------------
    def _parse_line(self, line: str) -> Optional[Dict[str, Any]]:
        line = line.rstrip("\r")
        if not line:
            return None
        if not line.startswith(CONTROL_PREFIX):
            # A print() without a trailing newline glues its text onto
            # the next frame: "no newline here@fleet {...}".  Recover
            # by scanning for the prefix mid-line.
            index = line.find(CONTROL_PREFIX)
            if index < 0:
                self.noise += 1
                return None
            self.noise += 1
            line = line[index:]
        try:
            payload = json.loads(line[len(CONTROL_PREFIX):])
        except json.JSONDecodeError:
            self.errors += 1
            return None
        if not isinstance(payload, dict):
            self.errors += 1
            return None
        return payload

    def iter_text(self, text: str) -> Iterator[Dict[str, Any]]:
        """Convenience for tests and offline transcripts: decode a
        whole captured stdout string."""
        yield from self.feed(text.encode("utf-8"))
        yield from self.flush()
