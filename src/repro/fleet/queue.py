"""Parameterized jobs and the thread-safe queue that schedules them.

A :class:`JobSpec` is one point of a campaign's parameter grid — a
workload name, a chiplet count, optional workload-parameter overrides,
an optional fault to arm (chaos testing) — plus the restart policy
(``max_retries``).  The :class:`JobQueue` holds the grid, hands queued
jobs to the :class:`~repro.fleet.manager.FleetManager` in FIFO order,
and applies the restart policy when a worker dies: the job goes back to
the head of the line with its failure recorded, until the retry budget
is exhausted and the job is marked terminally failed.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, FrozenSet, List, Optional

from ..workloads import StoreStorm, Workload, suite_small

__all__ = ["JobSpec", "Job", "JobQueue", "workload_catalog"]


def workload_catalog() -> Dict[str, Workload]:
    """The workloads a fleet job may name: the paper's six benchmarks
    (small problem sizes — fleet campaigns multiply runtimes) plus the
    StoreStorm diagnostic used for crash campaigns."""
    catalog = suite_small()
    catalog["storestorm"] = StoreStorm()
    return catalog


@lru_cache(maxsize=1)
def _catalog_schema() -> Dict[str, FrozenSet[str]]:
    """Workload name → its parameter names, computed once per process.

    Validation only needs the catalog's *shape*; enqueueing an N-job
    campaign used to rebuild every workload instance N times just to
    ask for this.  The cache holds names and field sets — immutable
    facts of the installed catalog — never the (mutable) workload
    instances themselves, so :meth:`JobSpec.build_workload` still
    constructs a fresh workload per run and jobs cannot share state
    through the catalog.
    """
    return {name: frozenset(f.name
                            for f in dataclasses.fields(workload))
            for name, workload in workload_catalog().items()}


@dataclass
class JobSpec:
    """One parameterized simulation job.

    ``fault`` (a dict of ``POST /api/faults`` parameters: kind, target,
    start, ...) is armed only while ``attempt < fault_attempts`` — the
    canonical chaos experiment injects on the first attempt and lets the
    restart policy prove a clean retry succeeds.
    """

    job_id: str
    workload: str
    chiplets: int = 1
    params: Dict[str, Any] = field(default_factory=dict)
    buggy_l2: bool = False
    seed: int = 0
    fault: Optional[Dict[str, Any]] = None
    fault_attempts: int = 1
    max_retries: int = 1
    #: Arm a ring-buffer tracer for this job's run; the worker reports
    #: the trace volume in its result event.
    trace: bool = False

    def validate(self) -> None:
        """Reject jobs that could never run before any worker is spent
        on them (the ``repro workloads --json`` catalog contract).
        Validation runs against the cached catalog schema, so an
        N-job campaign pays the catalog build once, not N times."""
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        schema = _catalog_schema()
        if self.workload not in schema:
            raise ValueError(
                f"unknown workload {self.workload!r}; expected one of "
                f"{sorted(schema)}")
        if self.chiplets < 1:
            raise ValueError("chiplets must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.params:
            known = schema[self.workload]
            unknown = set(self.params) - known
            if unknown:
                raise ValueError(
                    f"unknown {self.workload} parameter(s) "
                    f"{sorted(unknown)}; expected a subset of "
                    f"{sorted(known)}")
        if self.fault is not None and "kind" not in self.fault:
            raise ValueError("fault needs at least a 'kind'")

    def build_workload(self) -> Workload:
        """The concrete workload instance, overrides applied."""
        workload = workload_catalog()[self.workload]
        if self.params:
            workload = dataclasses.replace(workload, **self.params)
        return workload

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class Job:
    """A spec plus its scheduling state (owned by the queue's lock)."""

    spec: JobSpec
    state: str = "queued"  # queued | running | completed | failed
    attempt: int = 0       # 0-based index of the current/next attempt
    worker_id: Optional[str] = None
    workers: List[str] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def retries(self) -> int:
        """Failed attempts that were given another go (a terminal
        failure's last attempt was not retried)."""
        return max(0, len(self.failures) - (
            1 if self.state == "failed" else 0))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempt": self.attempt,
            "worker_id": self.worker_id,
            "workers": list(self.workers),
            "retries": self.retries,
            "result": self.result,
            "failures": list(self.failures),
        }


class JobQueue:
    """FIFO queue with duplicate-id rejection and a restart policy."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._pending: List[str] = []  # job ids, FIFO
        #: Transition observers, called as ``fn(event, job)`` *inside*
        #: the queue's lock — observation order is transition order,
        #: which is what lets a write-ahead journal record a coherent
        #: history (a ``complete`` can never be journaled before its
        #: ``claim``).  Observers must be fast and must not call back
        #: into the queue.
        self._observers: List[Any] = []

    def subscribe(self, observer) -> None:
        """Register ``observer(event, job)`` for every transition
        (``submit`` / ``claim`` / ``complete`` / ``fail`` /
        ``restore``)."""
        self._observers.append(observer)

    def _notify(self, event: str, job: "Job") -> None:
        for observer in self._observers:
            observer(event, job)

    # -- submission ------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Validate and enqueue; duplicate job ids are an error (a
        campaign that submits the same id twice is confused, and silent
        replacement would corrupt the first job's history)."""
        spec.validate()
        with self._lock:
            if spec.job_id in self._jobs:
                raise ValueError(f"duplicate job id {spec.job_id!r}")
            job = Job(spec)
            self._jobs[spec.job_id] = job
            self._pending.append(spec.job_id)
            self._notify("submit", job)
            return job

    def submit_all(self, specs: List[JobSpec]) -> List[Job]:
        return [self.submit(spec) for spec in specs]

    def restore(self, spec: JobSpec, state: str = "queued",
                attempt: int = 0,
                workers: Optional[List[str]] = None,
                result: Optional[Dict[str, Any]] = None,
                failures: Optional[List[Dict[str, Any]]] = None) -> Job:
        """Re-admit a job with its pre-crash history (journal resume).

        Unlike :meth:`submit`, the job arrives mid-lifecycle: terminal
        jobs (``completed`` / ``failed``) are restored terminal and
        will never be dispatched again; ``queued`` jobs re-enter the
        FIFO carrying their accumulated attempt count and failure
        records, so the restart policy picks up exactly where the
        crashed manager left off.
        """
        if state not in ("queued", "completed", "failed"):
            raise ValueError(
                f"cannot restore a job in state {state!r} (a crashed "
                "'running' attempt restores as 'queued')")
        spec.validate()
        with self._lock:
            if spec.job_id in self._jobs:
                raise ValueError(f"duplicate job id {spec.job_id!r}")
            job = Job(spec, state=state, attempt=attempt,
                      workers=list(workers or []), result=result,
                      failures=list(failures or []))
            self._jobs[spec.job_id] = job
            if state == "queued":
                self._pending.append(spec.job_id)
            self._notify("restore", job)
            return job

    # -- scheduling ------------------------------------------------------
    def claim(self, worker_id: str) -> Optional[Job]:
        """Pop the next queued job and mark it running on *worker_id*;
        ``None`` when nothing is waiting."""
        with self._lock:
            if not self._pending:
                return None
            job = self._jobs[self._pending.pop(0)]
            job.state = "running"
            job.worker_id = worker_id
            job.workers.append(worker_id)
            self._notify("claim", job)
            return job

    def complete(self, job_id: str,
                 result: Optional[Dict[str, Any]] = None) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            job.state = "completed"
            job.result = result
            job.worker_id = None
            self._notify("complete", job)
            return job

    def fail(self, job_id: str, error: str,
             post_mortem: Optional[Dict[str, Any]] = None) -> Job:
        """Record a failed attempt; requeue (at the front, so retries
        don't starve behind the rest of the campaign) while the retry
        budget lasts, else mark the job terminally failed."""
        with self._lock:
            job = self._jobs[job_id]
            job.failures.append({
                "attempt": job.attempt,
                "worker_id": job.worker_id,
                "error": error,
                "post_mortem": post_mortem,
            })
            job.worker_id = None
            if job.attempt < job.spec.max_retries:
                job.attempt += 1
                job.state = "queued"
                self._pending.insert(0, job_id)
            else:
                job.state = "failed"
            self._notify("fail", job)
            return job

    # -- introspection ---------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {"queued": 0, "running": 0, "completed": 0,
                      "failed": 0}
            for job in self._jobs.values():
                counts[job.state] += 1
            counts["total"] = len(self._jobs)
            counts["retries"] = sum(j.retries
                                    for j in self._jobs.values())
            return counts

    @property
    def done(self) -> bool:
        """Every submitted job reached a terminal state."""
        with self._lock:
            return all(j.state in ("completed", "failed")
                       for j in self._jobs.values())

    def to_dict(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [job.to_dict() for job in self._jobs.values()]
