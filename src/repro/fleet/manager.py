"""The fleet manager: a bounded pool of worker subprocesses.

``FleetManager`` drains a :class:`~repro.fleet.queue.JobQueue` through
at most ``num_workers`` concurrent worker subprocesses (one process per
job attempt — a crashed simulation must never take a sibling down with
it, which rules out threads and shared interpreters).  For every worker
it runs two reader threads (stdout control channel, stderr tail) and a
scheduler thread that:

1. reaps exited workers, turning their exit status + control events
   into queue transitions (``complete`` / ``fail`` with a post-mortem);
2. claims queued jobs onto free slots and spawns fresh workers;
3. flips the ``drained`` event once every job is terminal.

The restart policy itself lives in :meth:`JobQueue.fail`; the manager
only reports what it observed.  A worker that died without a result
event gets a post-mortem assembled from its exit code, last control
event and stderr tail — the fleet equivalent of the watchdog's
post-mortem files.
"""

from __future__ import annotations

import collections
import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .queue import Job, JobQueue
from .worker import CONTROL_PREFIX

__all__ = ["FleetManager", "WorkerHandle"]

#: Wall seconds a terminated worker gets to flush before SIGKILL.
_STOP_GRACE = 5.0


@dataclass
class WorkerHandle:
    """One spawned worker subprocess and everything observed about it."""

    worker_id: str
    job_id: str
    attempt: int
    process: subprocess.Popen
    started_wall: float
    url: Optional[str] = None
    pid: Optional[int] = None
    state: str = "spawning"  # spawning | running | exited
    exit_code: Optional[int] = None
    result: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    stderr_tail: collections.deque = field(
        default_factory=lambda: collections.deque(maxlen=40))
    _threads: List[threading.Thread] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.exit_code == 0 and self.result is not None
                and bool(self.result.get("ok")))

    def post_mortem(self) -> Dict[str, Any]:
        """What the manager knows about why this worker died."""
        report: Dict[str, Any] = {
            "worker_id": self.worker_id,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "exit_code": self.exit_code,
            "stderr_tail": list(self.stderr_tail),
        }
        if self.result is not None:
            report["run_state"] = self.result.get("run_state")
            report["watchdog"] = self.result.get("watchdog")
            report["error"] = self.result.get("error")
            report["fault_stats"] = self.result.get("fault_stats")
        return report

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "pid": self.pid,
            "url": self.url,
            "state": self.state,
            "exit_code": self.exit_code,
            "uptime_seconds": round(
                time.monotonic() - self.started_wall, 3),
        }


class FleetManager:
    """Schedules a job queue across a pool of worker subprocesses."""

    def __init__(self, queue: JobQueue, num_workers: int = 2,
                 python: Optional[str] = None,
                 worker_args: Optional[List[str]] = None,
                 poll_interval: float = 0.05,
                 snapshot_dir: Optional[str] = None):
        if num_workers < 1:
            raise ValueError("need at least one worker slot")
        self.queue = queue
        self.num_workers = num_workers
        self.python = python or sys.executable
        self.worker_args = list(worker_args or [])
        self.poll_interval = poll_interval
        self.snapshot_dir = snapshot_dir
        self.drained = threading.Event()
        self._lock = threading.Lock()
        self._active: Dict[str, WorkerHandle] = {}
        self._history: List[WorkerHandle] = []
        self._final_metrics: Dict[str, str] = {}
        self._spawned = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="rtm-fleet-scheduler")
        self._thread.start()

    def stop(self) -> None:
        """Stop scheduling and terminate any workers still running."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._lock:
            active = list(self._active.values())
        for handle in active:
            if handle.process.poll() is None:
                handle.process.terminate()
        deadline = time.monotonic() + _STOP_GRACE
        for handle in active:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait()
            self._finalize(handle)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue drains; True if it did in time."""
        return self.drained.wait(timeout)

    # ------------------------------------------------------------------
    # Scheduler loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self._reap()
            self._fill()
            if self.queue.done and not self._active:
                self.drained.set()

    def _reap(self) -> None:
        with self._lock:
            exited = [h for h in self._active.values()
                      if h.process.poll() is not None]
        for handle in exited:
            self._finalize(handle)

    def _finalize(self, handle: WorkerHandle) -> None:
        with self._lock:
            if handle.worker_id not in self._active:
                return  # already finalized (stop() raced the reaper)
            del self._active[handle.worker_id]
            self._history.append(handle)
        for thread in handle._threads:
            thread.join(timeout=2.0)
        handle.exit_code = handle.process.returncode
        handle.state = "exited"
        if handle.result is not None:
            text = handle.result.pop("metrics_text", "")
            if text:
                self._final_metrics[handle.worker_id] = text
        if handle.ok:
            summary = {k: handle.result.get(k)
                       for k in ("run_state", "sim_time", "events",
                                 "fault_stats")}
            summary["worker_id"] = handle.worker_id
            self.queue.complete(handle.job_id, summary)
        else:
            state = (handle.result or {}).get("run_state", "crashed")
            self.queue.fail(
                handle.job_id,
                f"worker {handle.worker_id} exited "
                f"{handle.exit_code} ({state})",
                handle.post_mortem())

    def _fill(self) -> None:
        while True:
            with self._lock:
                if len(self._active) >= self.num_workers:
                    return
                worker_id = f"w{self._spawned + 1}"
            job = self.queue.claim(worker_id)
            if job is None:
                return
            with self._lock:
                self._spawned += 1
            self._spawn(job, worker_id)

    # ------------------------------------------------------------------
    # Spawning and the control channel
    # ------------------------------------------------------------------

    def _worker_env(self) -> Dict[str, str]:
        """The child must be able to ``import repro`` even when the
        parent runs from a source checkout that is not installed."""
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (package_root + os.pathsep + existing
                                 if existing else package_root)
        return env

    def _spawn(self, job: Job, worker_id: str) -> None:
        argv = [self.python, "-m", "repro.fleet.worker",
                "--spec", json.dumps(job.spec.to_dict()),
                "--attempt", str(job.attempt)]
        if self.snapshot_dir is not None:
            argv += ["--snapshot-dir", self.snapshot_dir]
        argv += self.worker_args
        process = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=self._worker_env())
        handle = WorkerHandle(worker_id=worker_id, job_id=job.spec.job_id,
                              attempt=job.attempt, process=process,
                              started_wall=time.monotonic())
        for stream, reader in ((process.stdout, self._read_control),
                               (process.stderr, self._read_stderr)):
            thread = threading.Thread(target=reader,
                                      args=(handle, stream),
                                      daemon=True,
                                      name=f"rtm-fleet-{worker_id}-io")
            handle._threads.append(thread)
            thread.start()
        with self._lock:
            self._active[worker_id] = handle

    def _read_control(self, handle: WorkerHandle, stream) -> None:
        for line in stream:
            if not line.startswith(CONTROL_PREFIX):
                continue  # ordinary worker logging
            try:
                event = json.loads(line[len(CONTROL_PREFIX):])
            except json.JSONDecodeError:
                continue  # a torn line (worker died mid-write)
            handle.events.append(event)
            kind = event.get("event")
            if kind == "register":
                handle.url = event.get("url")
                handle.pid = event.get("pid")
                handle.state = "running"
            elif kind == "result":
                handle.result = event
        stream.close()

    def _read_stderr(self, handle: WorkerHandle, stream) -> None:
        for line in stream:
            handle.stderr_tail.append(line.rstrip("\n"))
        stream.close()

    # ------------------------------------------------------------------
    # Views (consumed by the gateway and the CLI)
    # ------------------------------------------------------------------
    def live_workers(self) -> Dict[str, str]:
        """worker_id -> base URL for every registered, running worker."""
        with self._lock:
            return {h.worker_id: h.url for h in self._active.values()
                    if h.url is not None}

    def final_metrics(self) -> Dict[str, str]:
        """worker_id -> last Prometheus exposition of exited workers."""
        with self._lock:
            return dict(self._final_metrics)

    def status(self) -> Dict[str, Any]:
        with self._lock:
            workers = ([h.to_dict() for h in self._active.values()]
                       + [h.to_dict() for h in self._history])
        return {
            "num_workers": self.num_workers,
            "drained": self.drained.is_set(),
            "summary": self.queue.counts(),
            "workers": workers,
            "jobs": self.queue.to_dict(),
        }
