"""The fleet manager: an async dispatcher over persistent warm workers.

``FleetManager`` drains a :class:`~repro.fleet.queue.JobQueue` through a
pool of worker subprocesses.  Two dispatch modes share one event loop:

* **warm** (default): ``num_workers`` persistent
  ``repro.fleet.worker --serve`` processes are spawned once.  Each
  boots its interpreter, imports and RTM HTTP server a single time,
  then accepts a *stream* of job assignments over a bidirectional
  line-framed JSON control channel (commands down stdin, events up
  stdout), resetting simulation state between jobs instead of
  re-exec'ing.  This is what makes short-job campaigns scale: the old
  one-subprocess-per-attempt fleet measured 0.97x at 2 workers because
  every attempt re-paid interpreter + platform startup and server
  teardown.
* **cold** (``warm=False``): the PR-5 behavior — one subprocess per
  job attempt, maximum isolation, and the measured baseline the warm
  pool's throughput benchmark compares against.

The scheduler is a single thread driven by a queue of control events
(pushed by per-worker pipe reader threads), not a poll loop over
``Popen.poll``: a ``ready`` event dispatches the next queued job in the
same scheduling turn it arrives, so idle gaps between jobs are bounded
by pipe latency, not a polling interval.

**Failure discipline.**  A worker that dies mid-job (stdout EOF without
a result event) gets a post-mortem assembled from its exit code, last
control events and stderr tail; the job re-enters the queue at the
front of the line under :meth:`JobQueue.fail`'s retry policy.  Warm
workers that crash are *recycled* — a replacement process is spawned —
up to ``max_worker_restarts`` for the pool's lifetime; if the budget is
spent and no workers remain, the remaining jobs are failed rather than
left to hang the campaign.

A warm worker's final ``/metrics`` expositions are cached **per job**
(shipped through the control channel in ``final-metrics`` events): one
process now serves many jobs, so "the exited worker's last scrape" is
no longer a meaningful unit — see :meth:`final_metrics`.
"""

from __future__ import annotations

import collections
import json
import os
import queue as queue_module
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .protocol import FrameDecoder, encode_command
from .queue import Job, JobQueue

__all__ = ["FleetManager", "WorkerHandle"]

#: Wall seconds a terminated worker gets to flush before SIGKILL.
_STOP_GRACE = 5.0


@dataclass
class WorkerHandle:
    """One worker subprocess and everything observed about it."""

    worker_id: str
    process: subprocess.Popen
    started_wall: float
    warm: bool
    job_id: Optional[str] = None      # currently assigned job
    attempt: int = 0
    state: str = "booting"  # booting | idle | running | exited
    url: Optional[str] = None
    pid: Optional[int] = None
    jobs_done: int = 0
    exit_code: Optional[int] = None
    result: Optional[Dict[str, Any]] = None   # last done/failed event
    last_progress: Optional[Dict[str, Any]] = None
    events: collections.deque = field(
        default_factory=lambda: collections.deque(maxlen=50))
    stderr_tail: collections.deque = field(
        default_factory=lambda: collections.deque(maxlen=40))
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    _threads: List[threading.Thread] = field(default_factory=list)

    def post_mortem(self) -> Dict[str, Any]:
        """What the manager knows about why this worker's job died."""
        report: Dict[str, Any] = {
            "worker_id": self.worker_id,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "exit_code": self.exit_code,
            "worker_alive": self.state != "exited",
            "stderr_tail": list(self.stderr_tail),
            "torn_frames": self.decoder.errors,
        }
        source = self.result or {}
        if source.get("job_id") == self.job_id:
            report["run_state"] = source.get("run_state")
            report["watchdog"] = source.get("watchdog")
            report["error"] = source.get("error")
            report["fault_stats"] = source.get("fault_stats")
        if self.last_progress is not None:
            report["last_progress"] = dict(self.last_progress)
        return report

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "pid": self.pid,
            "url": self.url,
            "state": self.state,
            "warm": self.warm,
            "jobs_done": self.jobs_done,
            "exit_code": self.exit_code,
            "last_progress": self.last_progress,
            "uptime_seconds": round(
                time.monotonic() - self.started_wall, 3),
        }


class FleetManager:
    """Schedules a job queue across a pool of worker subprocesses."""

    def __init__(self, queue: JobQueue, num_workers: int = 2,
                 warm: bool = True,
                 python: Optional[str] = None,
                 worker_args: Optional[List[str]] = None,
                 poll_interval: float = 0.05,
                 snapshot_dir: Optional[str] = None,
                 max_worker_restarts: Optional[int] = None,
                 journal=None):
        if num_workers < 1:
            raise ValueError("need at least one worker slot")
        self.queue = queue
        self.num_workers = num_workers
        self.warm = warm
        self.python = python or sys.executable
        self.worker_args = list(worker_args or [])
        self.poll_interval = poll_interval
        self.snapshot_dir = snapshot_dir
        #: Optional :class:`~repro.fleet.journal.CampaignJournal`.  The
        #: queue's transitions are journaled by the journal's own queue
        #: observer (attached here, idempotently); the manager adds the
        #: records only it sees: worker checkpoints and final metric
        #: expositions.
        self.journal = journal
        if journal is not None:
            journal.attach(queue)
        #: Crashed warm workers replaced over the pool's lifetime.
        self.max_worker_restarts = (num_workers
                                    if max_worker_restarts is None
                                    else max_worker_restarts)
        self.drained = threading.Event()
        self._lock = threading.Lock()
        self._active: Dict[str, WorkerHandle] = {}
        self._history: List[WorkerHandle] = []
        #: job_id -> {"worker_id", "attempt", "text"}: final expositions
        #: shipped through the control channel (latest attempt wins).
        self._final_metrics: Dict[str, Dict[str, Any]] = {}
        #: job_id -> {"path", "attempt", "sim_time", "events"}: the
        #: last checkpoint each job announced.  A retry of the job is
        #: dispatched with ``resume_from`` pointing here, so the new
        #: attempt restarts from the snapshot instead of t=0.
        self._job_checkpoints: Dict[str, Dict[str, Any]] = {}
        #: job_id -> {"worker_id", "attempt", "summary"}: per-job
        #: continuous-profile digests shipped through the control
        #: channel (latest attempt wins), merged by the gateway into
        #: the campaign-wide /api/fleet/profile.
        self._profiles: Dict[str, Dict[str, Any]] = {}
        self._events: "queue_module.Queue" = queue_module.Queue()
        self._spawned = 0
        self._restarts_used = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        if self.warm:
            for _ in range(self.num_workers):
                self._spawn_warm()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="rtm-fleet-scheduler")
        self._thread.start()

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until every warm worker has booted (announced its
        first ``ready``); True if they all did in time.  Useful to
        separate pool warm-up from campaign dispatch — e.g. when
        timing a campaign against a pre-warmed pool."""
        if not self.warm:
            return True  # cold workers exist only while running a job
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            with self._lock:
                handles = list(self._active.values())
            booted = [h for h in handles if h.url is not None]
            if len(booted) >= self.num_workers:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.01)

    def stop(self) -> None:
        """Stop scheduling, shut the pool down, settle the queue."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._lock:
            active = list(self._active.values())
        for handle in active:
            self._send_shutdown(handle)
        deadline = time.monotonic() + _STOP_GRACE
        for handle in active:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait()
        # Process whatever the workers flushed on the way out (a job
        # that completed during shutdown still counts), then fail any
        # job that never got a result.
        self._drain_events()
        for handle in active:
            self._finalize(handle)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue drains; True if it did in time."""
        return self.drained.wait(timeout)

    # ------------------------------------------------------------------
    # Scheduler loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                item = self._events.get(timeout=self.poll_interval)
            except queue_module.Empty:
                item = None
            if item is not None:
                self._handle_item(item)
                # Drain whatever else already arrived: scheduling
                # decisions should see the freshest picture.
                while True:
                    try:
                        self._handle_item(self._events.get_nowait())
                    except queue_module.Empty:
                        break
            self._dispatch()
            self._update_drained()

    def _drain_events(self) -> None:
        while True:
            try:
                self._handle_item(self._events.get_nowait())
            except queue_module.Empty:
                return

    def _update_drained(self) -> None:
        counts = self.queue.counts()
        if counts["total"] > 0 and counts["queued"] == 0 \
                and counts["running"] == 0:
            self.drained.set()
        else:
            # A pool outlives a campaign: submitting more jobs to the
            # same queue re-arms `wait()`.
            self.drained.clear()

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _handle_item(self, item) -> None:
        kind, handle, payload = item
        if kind == "event":
            self._handle_event(handle, payload)
        elif kind == "eof":
            self._handle_eof(handle)

    def _handle_event(self, handle: WorkerHandle,
                      event: Dict[str, Any]) -> None:
        if handle.state == "exited":
            return
        handle.events.append(event)
        kind = event.get("event")
        if kind == "ready":
            handle.url = event.get("url") or handle.url
            handle.pid = event.get("pid") or handle.pid
            if handle.job_id is None:
                handle.state = "idle"
        elif kind == "started":
            handle.state = "running"
        elif kind == "progress":
            handle.last_progress = {
                k: event.get(k)
                for k in ("job_id", "sim_time", "events", "run_state")}
        elif kind == "checkpoint":
            job_id = event.get("job_id")
            if job_id:
                entry = {"path": event.get("path"),
                         "attempt": event.get("attempt", 0),
                         "sim_time": event.get("sim_time"),
                         "events": event.get("events")}
                self._job_checkpoints[job_id] = entry
                if self.journal is not None:
                    self.journal.append("checkpoint", job_id=job_id,
                                        **entry)
        elif kind == "final-metrics":
            job_id = event.get("job_id")
            text = event.get("metrics_text") or ""
            if job_id and text:
                self._final_metrics[job_id] = {
                    "worker_id": handle.worker_id,
                    "attempt": event.get("attempt", 0),
                    "text": text,
                }
                if self.journal is not None:
                    # Journaled *before* the (critical, fsync'd) result
                    # record, so a durable completion implies a durable
                    # exposition: the resumed campaign's federated
                    # /metrics names every finished job.
                    self.journal.append(
                        "final-metrics", job_id=job_id,
                        worker_id=handle.worker_id,
                        attempt=event.get("attempt", 0), text=text)
        elif kind == "profile-summary":
            job_id = event.get("job_id")
            summary = event.get("summary")
            if job_id and summary:
                self._profiles[job_id] = {
                    "worker_id": handle.worker_id,
                    "attempt": event.get("attempt", 0),
                    "summary": summary,
                }
        elif kind in ("done", "failed"):
            handle.result = event
            self._settle_job(handle, event)

    def _settle_job(self, handle: WorkerHandle,
                    event: Dict[str, Any]) -> None:
        job_id = event.get("job_id") or handle.job_id
        if job_id is None:
            return
        try:
            job_state = self.queue.get(job_id).state
        except KeyError:
            return  # a job this queue never issued (stray event)
        if job_state != "running":
            return  # already settled (e.g. failed at eof, event late)
        if event.get("event") == "done" and event.get("ok"):
            summary = {k: event.get(k)
                       for k in ("run_state", "sim_time", "events",
                                 "fault_stats", "trace", "resume",
                                 "checkpoints")}
            summary["worker_id"] = handle.worker_id
            summary["attempt"] = event.get("attempt", handle.attempt)
            self.queue.complete(job_id, summary)
            handle.jobs_done += 1
        else:
            state = event.get("run_state", "crashed")
            error = event.get("error") or f"run ended {state}"
            self.queue.fail(
                job_id,
                f"worker {handle.worker_id} reported {state}: {error}",
                handle.post_mortem())
        if handle.job_id == job_id:
            handle.job_id = None
            if handle.state != "exited":
                handle.state = "idle" if handle.warm else handle.state

    def _handle_eof(self, handle: WorkerHandle) -> None:
        """A worker's stdout closed: the process is dead or dying."""
        self._finalize(handle)
        if not self.warm or self._stop.is_set():
            return
        # Recycle the slot if the pool still has work to do and the
        # restart budget allows.
        counts = self.queue.counts()
        work_left = counts["queued"] > 0 or counts["running"] > 0
        if work_left and self._restarts_used < self.max_worker_restarts:
            self._restarts_used += 1
            self._spawn_warm()
        elif work_left and not self._active:
            # Budget spent, pool empty: fail what remains rather than
            # hang the campaign.
            self._fail_pending("worker pool exhausted "
                               f"(restart budget {self.max_worker_restarts} "
                               "spent)")

    def _fail_pending(self, reason: str) -> None:
        while True:
            job = self.queue.claim("none")
            if job is None:
                return
            self.queue.fail(job.spec.job_id, reason, None)
            if self.queue.get(job.spec.job_id).state == "queued":
                # The retry policy requeued it, but there is nobody
                # left to run it: spend the budget until terminal.
                continue

    def _finalize(self, handle: WorkerHandle) -> None:
        with self._lock:
            if handle.worker_id not in self._active:
                return  # already finalized (stop() raced the reaper)
            del self._active[handle.worker_id]
            self._history.append(handle)
        try:
            handle.process.wait(timeout=_STOP_GRACE)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            handle.process.kill()
            handle.process.wait()
        for thread in handle._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=2.0)
        handle.exit_code = handle.process.returncode
        handle.state = "exited"
        if handle.job_id is not None:
            # Died without a result event for its assigned job.
            job_id = handle.job_id
            try:
                running = self.queue.get(job_id).state == "running"
            except KeyError:
                running = False
            if running:
                self.queue.fail(
                    job_id,
                    f"worker {handle.worker_id} exited "
                    f"{handle.exit_code} mid-job",
                    handle.post_mortem())
            handle.job_id = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self.warm:
            self._dispatch_warm()
        else:
            self._dispatch_cold()

    def _dispatch_warm(self) -> None:
        with self._lock:
            idle = [h for h in self._active.values()
                    if h.state == "idle"]
        for handle in idle:
            job = self.queue.claim(handle.worker_id)
            if job is None:
                return
            handle.job_id = job.spec.job_id
            handle.attempt = job.attempt
            handle.state = "running"  # optimistic; started confirms
            payload = {
                "cmd": "run",
                "spec": job.spec.to_dict(),
                "attempt": job.attempt,
            }
            resume_from = self._resume_path(job)
            if resume_from is not None:
                payload["resume_from"] = resume_from
            command = encode_command(payload)
            try:
                handle.process.stdin.write(command)
                handle.process.stdin.flush()
            except (BrokenPipeError, OSError, ValueError):
                # The worker died between ready and now; its eof event
                # is in flight and will requeue this job.
                pass

    def _resume_path(self, job: Job) -> Optional[str]:
        """The checkpoint a dispatch of *job* should resume from, or
        ``None`` for a cold start.  Only retries resume — attempt 0
        has no history, and a stale checkpoint from a *previous
        campaign's* identical job id is exactly what the preload path
        is for, so presence in the map is the single source of truth."""
        if job.attempt <= 0:
            return None
        entry = self._job_checkpoints.get(job.spec.job_id)
        if not entry:
            return None
        return entry.get("path") or None

    def preload_resume(self, replay) -> None:
        """Prime the caches a resumed campaign needs from a
        :class:`~repro.fleet.journal.JournalReplay`: per-job final
        expositions (so the federated ``/metrics`` names jobs that
        completed *before* the crash) and last-known checkpoints (so
        requeued jobs resume instead of cold-starting)."""
        for job_id, entry in replay.final_metrics.items():
            self._final_metrics.setdefault(job_id, dict(entry))
        for job_id, entry in replay.checkpoints.items():
            self._job_checkpoints.setdefault(job_id, dict(entry))

    def _dispatch_cold(self) -> None:
        while True:
            with self._lock:
                if len(self._active) >= self.num_workers:
                    return
            if self.queue.pending_count == 0:
                return
            worker_id = self._next_worker_id()
            job = self.queue.claim(worker_id)
            if job is None:
                return
            self._spawn_cold(job, worker_id)

    # ------------------------------------------------------------------
    # Spawning and the control channel
    # ------------------------------------------------------------------
    def _worker_env(self) -> Dict[str, str]:
        """The child must be able to ``import repro`` even when the
        parent runs from a source checkout that is not installed."""
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (package_root + os.pathsep + existing
                                 if existing else package_root)
        return env

    def _next_worker_id(self) -> str:
        with self._lock:
            self._spawned += 1
            return f"w{self._spawned}"

    def _spawn_warm(self) -> None:
        worker_id = self._next_worker_id()
        argv = [self.python, "-m", "repro.fleet.worker", "--serve",
                "--worker-id", worker_id]
        if self.snapshot_dir is not None:
            argv += ["--snapshot-dir", self.snapshot_dir]
        argv += self.worker_args
        self._launch(argv, worker_id, warm=True)

    def _spawn_cold(self, job: Job, worker_id: str) -> None:
        argv = [self.python, "-m", "repro.fleet.worker",
                "--spec", json.dumps(job.spec.to_dict()),
                "--attempt", str(job.attempt)]
        resume_from = self._resume_path(job)
        if resume_from is not None:
            argv += ["--resume-from", resume_from]
        if self.snapshot_dir is not None:
            argv += ["--snapshot-dir", self.snapshot_dir]
        argv += self.worker_args
        handle = self._launch(argv, worker_id, warm=False)
        handle.job_id = job.spec.job_id
        handle.attempt = job.attempt
        handle.state = "running"

    def _launch(self, argv: List[str], worker_id: str,
                warm: bool) -> WorkerHandle:
        process = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, env=self._worker_env())
        handle = WorkerHandle(worker_id=worker_id, process=process,
                              started_wall=time.monotonic(), warm=warm)
        for target in (self._read_control, self._read_stderr):
            thread = threading.Thread(target=target, args=(handle,),
                                      daemon=True,
                                      name=f"rtm-fleet-{worker_id}-io")
            handle._threads.append(thread)
            thread.start()
        with self._lock:
            self._active[worker_id] = handle
        return handle

    def _read_control(self, handle: WorkerHandle) -> None:
        """Pump raw stdout chunks through the damage-tolerant frame
        decoder into the scheduler's event queue."""
        stream = handle.process.stdout
        decoder = handle.decoder
        while True:
            chunk = stream.read1(65536)
            if not chunk:
                break
            for event in decoder.feed(chunk):
                self._events.put(("event", handle, event))
        decoder.flush()
        stream.close()
        self._events.put(("eof", handle, None))

    def _read_stderr(self, handle: WorkerHandle) -> None:
        for raw in handle.process.stderr:
            handle.stderr_tail.append(
                raw.decode("utf-8", "replace").rstrip("\n"))
        handle.process.stderr.close()

    def _send_shutdown(self, handle: WorkerHandle) -> None:
        """Ask a worker to exit: shutdown command + closed stdin for an
        idle worker, SIGTERM to abort a running simulation."""
        if handle.process.poll() is not None:
            return
        try:
            handle.process.stdin.write(
                encode_command({"cmd": "shutdown"}))
            handle.process.stdin.flush()
            handle.process.stdin.close()
        except (BrokenPipeError, OSError, ValueError):
            pass
        if handle.state == "running" or not handle.warm:
            try:
                handle.process.send_signal(signal.SIGTERM)
            except (ProcessLookupError, OSError):
                pass

    # ------------------------------------------------------------------
    # Views (consumed by the gateway and the CLI)
    # ------------------------------------------------------------------
    def live_workers(self) -> Dict[str, str]:
        """worker_id -> base URL for every booted, live worker."""
        with self._lock:
            return {h.worker_id: h.url for h in self._active.values()
                    if h.url is not None}

    def scrape_targets(self) -> List[Dict[str, str]]:
        """Live workers currently running a job, with the job identity
        a federated scrape must label their series with."""
        with self._lock:
            return [{"worker_id": h.worker_id, "job_id": h.job_id,
                     "url": h.url}
                    for h in self._active.values()
                    if h.url is not None and h.job_id is not None
                    and h.state == "running"]

    def final_metrics(self) -> Dict[str, Dict[str, Any]]:
        """job_id -> {worker_id, attempt, text}: the final Prometheus
        exposition of every job that shipped one (latest attempt wins),
        served from the control-channel cache long after the worker
        moved on — or died."""
        with self._lock:
            return {job_id: dict(entry)
                    for job_id, entry in self._final_metrics.items()}

    def profiles(self) -> Dict[str, Dict[str, Any]]:
        """job_id -> {worker_id, attempt, summary}: the continuous-
        profile digest of every job that shipped one (latest attempt
        wins) — the raw material of the campaign-wide profile."""
        with self._lock:
            return {job_id: dict(entry)
                    for job_id, entry in self._profiles.items()}

    def status(self) -> Dict[str, Any]:
        with self._lock:
            workers = ([h.to_dict() for h in self._active.values()]
                       + [h.to_dict() for h in self._history])
        return {
            "num_workers": self.num_workers,
            "warm": self.warm,
            "drained": self.drained.is_set(),
            "worker_restarts": self._restarts_used,
            "worker_restart_budget": self.max_worker_restarts,
            "summary": self.queue.counts(),
            "workers": workers,
            "jobs": self.queue.to_dict(),
            "checkpoints": {job_id: dict(entry) for job_id, entry
                            in self._job_checkpoints.items()},
            "journal": (None if self.journal is None else {
                "path": self.journal.path,
                "records_written": self.journal.records_written,
                "syncs": self.journal.syncs,
            }),
        }
