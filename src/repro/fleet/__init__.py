"""``repro.fleet`` — multi-simulation orchestration.

AkitaRTM (``repro.core``) monitors *one* simulation; real campaigns —
design sweeps, fault campaigns, the paper's Figure 7 grid — run dozens.
This package runs them behind a single pane of glass:

* :class:`JobQueue` / :class:`JobSpec` — the parameter grid and its
  restart policy (:mod:`repro.fleet.queue`);
* :class:`FleetManager` — an async dispatcher over a pool of warm
  persistent workers (each boots once, then runs a stream of jobs over
  the control channel), with worker-death detection, post-mortems and
  a crashed-worker recycle budget; ``warm=False`` restores the legacy
  one-subprocess-per-attempt dispatch (:mod:`repro.fleet.manager`);
* the line-framed JSON control channel both sides speak
  (:mod:`repro.fleet.protocol`);
* the worker entry point itself (:mod:`repro.fleet.worker`, spawned as
  ``python -m repro.fleet.worker --serve``);
* :class:`FleetGateway` — the aggregating front server: ``/api/fleet``,
  a reverse proxy to every worker's own API, per-job final expositions
  at ``/api/fleet/jobs/<job>/metrics``, and a federated ``/metrics``
  with ``(worker, job)`` labels (:mod:`repro.fleet.gateway`).

Typical campaign::

    from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec

    queue = JobQueue()
    for workload in ("fir", "kmeans"):
        for chiplets in (1, 2):
            queue.submit(JobSpec(f"{workload}-c{chiplets}", workload,
                                 chiplets=chiplets))
    manager = FleetManager(queue, num_workers=4)
    gateway = FleetGateway(manager)
    gateway.start(); manager.start()
    manager.wait(timeout=600)        # drain the sweep
    print(gateway.url + "/metrics")  # one federated scrape
    manager.stop(); gateway.stop()
"""

from .gateway import FleetGateway
from .journal import CampaignJournal, JournalReplay, replay_journal
from .manager import FleetManager, WorkerHandle
from .protocol import CONTROL_PREFIX, FrameDecoder
from .queue import Job, JobQueue, JobSpec, workload_catalog

__all__ = [
    "CONTROL_PREFIX",
    "CampaignJournal",
    "FleetGateway",
    "FleetManager",
    "FrameDecoder",
    "Job",
    "JobQueue",
    "JobSpec",
    "JournalReplay",
    "WorkerHandle",
    "replay_journal",
    "workload_catalog",
]
