"""``repro.fleet`` — multi-simulation orchestration.

AkitaRTM (``repro.core``) monitors *one* simulation; real campaigns —
design sweeps, fault campaigns, the paper's Figure 7 grid — run dozens.
This package runs them behind a single pane of glass:

* :class:`JobQueue` / :class:`JobSpec` — the parameter grid and its
  restart policy (:mod:`repro.fleet.queue`);
* :class:`FleetManager` — the worker pool: one subprocess per job
  attempt, a stdout control channel, crash detection with post-mortems
  (:mod:`repro.fleet.manager`);
* the worker entry point itself (:mod:`repro.fleet.worker`, spawned as
  ``python -m repro.fleet.worker``);
* :class:`FleetGateway` — the aggregating front server: ``/api/fleet``,
  a reverse proxy to every worker's own API, and a federated
  ``/metrics`` with per-worker labels (:mod:`repro.fleet.gateway`).

Typical campaign::

    from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec

    queue = JobQueue()
    for workload in ("fir", "kmeans"):
        for chiplets in (1, 2):
            queue.submit(JobSpec(f"{workload}-c{chiplets}", workload,
                                 chiplets=chiplets))
    manager = FleetManager(queue, num_workers=4)
    gateway = FleetGateway(manager)
    gateway.start(); manager.start()
    manager.wait(timeout=600)        # drain the sweep
    print(gateway.url + "/metrics")  # one federated scrape
    manager.stop(); gateway.stop()
"""

from .gateway import FleetGateway
from .manager import FleetManager, WorkerHandle
from .queue import Job, JobQueue, JobSpec, workload_catalog

__all__ = [
    "FleetGateway",
    "FleetManager",
    "Job",
    "JobQueue",
    "JobSpec",
    "WorkerHandle",
    "workload_catalog",
]
