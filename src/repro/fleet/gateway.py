"""The aggregating RTM gateway: one pane of glass for a whole fleet.

A fleet of workers each serves its own dashboard + API on an ephemeral
port.  The :class:`FleetGateway` is the stable front door:

=======  ===================================  ==========================
Method   Path                                 Purpose
=======  ===================================  ==========================
GET      /api/fleet                           workers, jobs, retries
GET      /api/fleet/profile                   campaign-wide merged profile
GET      /api/fleet/jobs/<job>/metrics        one job's final exposition
GET      /api/fleet/<worker>/<rest...>        reverse proxy to worker
POST     /api/fleet/<worker>/<rest...>        (same — control actions)
DELETE   /api/fleet/<worker>/<rest...>        (same)
GET      /metrics                             federated exposition
GET      /api/historian                       recording service status
GET      /api/historian/campaigns             campaigns in the store
GET      /api/historian/query                 filtered records
GET      /api/historian/compare?a=&b=         two campaigns diffed
GET      /api/historian/alerts                rules + transitions
GET      /api/historian/stream                SSE alert transitions
POST     /api/historian/rules                 add an alert rule
DELETE   /api/historian/rules?id=             remove an alert rule
=======  ===================================  ==========================

The historian routes exist when a :class:`~repro.historian.
HistorianService` has bound itself to the gateway (``fleet run
--historian <db>`` does this); otherwise they answer 400.

The reverse proxy makes every single-simulation view of the paper reach
fleet scale unchanged: ``/api/fleet/w3/api/buffers`` is worker w3's
bottleneck table, ``/api/fleet/w3/api/hang`` its hang verdict.  (The
``jobs`` segment is reserved for the per-job route, so a worker cannot
be named ``jobs``.)

``/metrics`` federates: the gateway's own fleet-level families (jobs by
state, live workers, retries, worker restarts — un-labelled) followed
by per-job expositions, each sample labelled with **both**
``worker="wN"`` and ``job="<job_id>"`` — under the warm fleet one
long-lived worker produces series for many jobs, so the worker label
alone no longer identifies a run.  Completed jobs come from the
control-channel cache (their worker may have moved on to another job,
or died); jobs still running are scraped live from their worker.  Each
job appears exactly once per scrape, so one scrape taken after the
campaign carries every job's final series.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from ..core.server import (
    BadRequest,
    HTTPServerThread,
    JSONRequestHandler,
)
from ..metrics import CONTENT_TYPE as _PROM_CONTENT_TYPE
from ..metrics import MetricRegistry, expose, federate, inject_labels

__all__ = ["FleetGateway"]

#: Per-worker scrape/proxy timeout: a wedged worker must not hold the
#: whole federated scrape hostage.
_PROXY_TIMEOUT = 5.0


class _GatewayHandler(JSONRequestHandler):
    """Routes gateway requests; ``gateway`` injected via subclassing."""

    gateway = None  # type: Optional[FleetGateway]

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")

    def _route(self, method: str) -> None:
        path, params = self._query()
        try:
            if path == "/metrics" and method == "GET":
                body = self.gateway.federated_metrics().encode()
                self._send_body(body, _PROM_CONTENT_TYPE)
            elif path == "/api/fleet" and method == "GET":
                self._send_json(self.gateway.status())
            elif path == "/api/fleet/profile" and method == "GET":
                self._send_json(
                    self.gateway.campaign_profile(params))
            elif (path == "/api/historian/stream"
                  and method == "GET"):
                self._historian_stream(params)
            elif path.startswith("/api/historian"):
                self._historian(method, path, params)
            elif (method == "GET"
                  and path.startswith("/api/fleet/jobs/")
                  and path.endswith("/metrics")):
                job_id = path[len("/api/fleet/jobs/"):-len("/metrics")]
                text = self.gateway.job_metrics(job_id.rstrip("/"))
                if text is None:
                    self._send_error_json(
                        f"no final metrics for job {job_id!r}", 404)
                else:
                    self._send_body(text.encode(), _PROM_CONTENT_TYPE)
            elif path.startswith("/api/fleet/"):
                self._proxy(method, path)
            else:
                self._send_error_json("not found", 404)
        except BadRequest as exc:
            self._send_error_json(str(exc), 400)
        except Exception as exc:  # surface handler bugs to the client
            self._send_error_json(f"{type(exc).__name__}: {exc}", 500)

    # ------------------------------------------------------------------
    # Historian (the durable campaign record behind this gateway)
    # ------------------------------------------------------------------
    def _historian_service(self):
        service = self.gateway.historian
        if service is None:
            raise BadRequest("historian not enabled for this campaign "
                             "(start the fleet with --historian)")
        return service

    def _historian(self, method: str, path: str,
                   params: Dict[str, str]) -> None:
        service = self._historian_service()
        store = service.historian
        if path == "/api/historian" and method == "GET":
            self._send_json(service.status())
        elif path == "/api/historian/campaigns" and method == "GET":
            self._send_json({"campaigns": store.campaigns()})
        elif path == "/api/historian/query" and method == "GET":
            filters: Dict[str, Any] = {}
            if "campaign" in params:
                filters["campaign_id"] = params["campaign"]
            for key in ("kind", "name"):
                if key in params:
                    filters[key] = params[key]
            for key in ("since", "until"):
                if key in params:
                    try:
                        filters[key] = float(params[key])
                    except ValueError:
                        raise BadRequest(f"bad {key!r}: not a number")
            try:
                limit = int(params.get("limit", "1000"))
            except ValueError:
                raise BadRequest("bad 'limit': not an integer")
            self._send_json(
                {"records": store.query(limit=limit, **filters)})
        elif path == "/api/historian/compare" and method == "GET":
            a, b = params.get("a"), params.get("b")
            if not a or not b:
                raise BadRequest("compare needs ?a=<campaign>&"
                                 "b=<campaign>")
            self._send_json(store.compare(a, b))
        elif path == "/api/historian/alerts" and method == "GET":
            self._send_json(service.engine.to_dict())
        elif path == "/api/historian/rules" and method == "POST":
            self._send_json(
                {"rule": self.gateway.add_historian_rule(params)})
        elif path == "/api/historian/rules" and method == "DELETE":
            try:
                rule_id = int(params.get("id", ""))
            except ValueError:
                raise BadRequest("rule DELETE needs ?id=<int>")
            self._send_json(
                {"removed": service.remove_rule(rule_id)})
        else:
            self._send_error_json("not found", 404)

    def _historian_stream(self, params: Dict[str, str]) -> None:
        """SSE of deduplicated alert-rule transitions.

        ``since`` is a sequence-number cursor (default: only
        transitions after the connection opens), ``count`` closes the
        stream after N events — how a test proves "exactly once"."""
        service = self._historian_service()
        engine = service.engine
        try:
            interval = max(0.05, float(params.get("interval", "0.25")))
            count = int(params.get("count", "0"))
            if "since" in params:
                cursor = int(params["since"])
            else:
                transitions = engine.transitions
                cursor = transitions[-1]["seq"] if transitions else 0
        except ValueError as exc:
            raise BadRequest(f"bad stream parameter: {exc}") from None
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        stopping = getattr(self.server, "stopping", None)
        sent = 0
        try:
            while True:
                for event in engine.transitions_since(cursor):
                    cursor = event["seq"]
                    self.wfile.write(b"data: "
                                     + json.dumps(event).encode()
                                     + b"\n\n")
                    self.wfile.flush()
                    sent += 1
                    if count and sent >= count:
                        return
                # Keepalive comment: an idle stream must not trip the
                # client's socket timeout while a campaign warms up.
                self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
                if stopping is not None:
                    if stopping.wait(interval):
                        return
                else:  # pragma: no cover - servers always set one
                    import time as _time
                    _time.sleep(interval)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; nothing to report

    def _proxy(self, method: str, path: str) -> None:
        remainder = path[len("/api/fleet/"):]
        worker_id, _, sub_path = remainder.partition("/")
        if not worker_id or not sub_path:
            raise BadRequest(
                "expected /api/fleet/<worker>/<endpoint>")
        query = self.path.partition("?")[2]
        target = "/" + sub_path + ("?" + query if query else "")
        status, content_type, body = self.gateway.proxy(
            method, worker_id, target)
        self._send_body(body, content_type, status)


class FleetGateway(HTTPServerThread):
    """The fleet's front server.

    *manager* needs four methods — ``live_workers() -> {id: url}``,
    ``scrape_targets() -> [{worker_id, job_id, url}]`` (live workers
    currently running a job), ``final_metrics() -> {job_id: {worker_id,
    attempt, text}}`` and ``status() -> dict`` — which
    :class:`~repro.fleet.manager.FleetManager` provides; anything with
    that shape (a test stub, a remote registry) federates too.
    """

    thread_name = "rtm-fleet-gateway"

    def __init__(self, manager, host: str = "127.0.0.1", port: int = 0):
        self.manager = manager
        self.registry = MetricRegistry()
        #: Set by HistorianService.bind_gateway: enables the
        #: /api/historian/* routes and the alert-transition SSE stream.
        self.historian = None
        self._install_fleet_metrics()
        handler = type("BoundGatewayHandler", (_GatewayHandler,),
                       {"gateway": self})
        super().__init__(handler, host=host, port=port)

    # ------------------------------------------------------------------
    # Fleet-level metric families (the gateway's own, un-labelled)
    # ------------------------------------------------------------------
    def _install_fleet_metrics(self) -> None:
        states = ("queued", "running", "completed", "failed")
        jobs = self.registry.gauge(
            "rtm_fleet_jobs", "Fleet jobs by state.", ("state",))
        workers = self.registry.gauge(
            "rtm_fleet_workers_live",
            "Worker subprocesses currently registered and serving.")
        retries = self.registry.gauge(
            "rtm_fleet_job_retries_total",
            "Failed job attempts that were requeued by the restart "
            "policy.")
        restarts = self.registry.gauge(
            "rtm_fleet_worker_restarts_total",
            "Crashed warm workers replaced by the manager's recycle "
            "policy.")

        def collect() -> None:
            status = self.manager.status()
            summary = status.get("summary", {})
            for state in states:
                jobs.labels(state).set(float(summary.get(state, 0)))
            workers.set(float(len(self.manager.live_workers())))
            retries.set(float(summary.get("retries", 0)))
            restarts.set(float(status.get("worker_restarts", 0)))

        self.registry.add_collector(collect)

    # ------------------------------------------------------------------
    # Historian rule administration (HTTP -> MetricRule)
    # ------------------------------------------------------------------
    def add_historian_rule(self, params: Dict[str, str]
                           ) -> Dict[str, Any]:
        """Create a rule from query parameters: ``family`` (required),
        ``op``, ``threshold``, ``kind``, ``for`` (hold seconds),
        ``labels`` as ``k=v`` pairs joined by commas, ``name``."""
        from ..historian.rules import MetricRule
        if self.historian is None:
            raise BadRequest("historian not enabled")
        family = params.get("family", "")
        if not family:
            raise BadRequest("rule needs ?family=<metric family>")
        labels: Dict[str, str] = {}
        for pair in filter(None, params.get("labels", "").split(",")):
            key, sep, value = pair.partition("=")
            if not sep:
                raise BadRequest(f"bad label pair {pair!r}; use k=v")
            labels[key.strip()] = value.strip()
        try:
            rule = MetricRule(
                family=family,
                op=params.get("op", ">="),
                threshold=float(params.get("threshold", "0")),
                kind=params.get("kind", "threshold"),
                labels=labels,
                for_seconds=float(params.get("for", "0")),
                name=params.get("name", ""))
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        return self.historian.add_rule(rule).to_dict()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        status = self.manager.status()
        status["gateway_url"] = self.url
        return status

    def federated_metrics(self) -> str:
        """One exposition for the whole fleet (see module docstring).

        Per-job expositions, each labelled ``(worker, job)``.  Final
        expositions (from the manager's control-channel cache) win over
        a live scrape of the same job — the cache is the complete run,
        the scrape a moment of it — so every job contributes exactly
        one set of series no matter when the scrape lands.
        """
        finals = self.manager.final_metrics()
        expositions = []
        unreachable = []
        for job_id, entry in sorted(finals.items()):
            expositions.append(
                ({"worker": str(entry.get("worker_id")),
                  "job": job_id}, entry["text"]))
        for target in sorted(self.manager.scrape_targets(),
                             key=lambda t: (t["worker_id"],
                                            t["job_id"])):
            if target["job_id"] in finals:
                continue  # a final already landed; don't double-count
            try:
                with urlopen(Request(target["url"] + "/metrics",
                                     method="GET"),
                             timeout=_PROXY_TIMEOUT) as response:
                    expositions.append(
                        ({"worker": target["worker_id"],
                          "job": target["job_id"]},
                         response.read().decode()))
            except (URLError, TimeoutError, ConnectionError, OSError) \
                    as exc:
                unreachable.append((target["worker_id"], str(exc)))
        preamble = expose(self.registry)
        body = federate(expositions, preamble=preamble)
        for worker_id, error in unreachable:
            body += (f"# worker {worker_id} unreachable: "
                     f"{error}\n")
        return body

    def campaign_profile(self, params: Optional[Dict[str, str]] = None
                         ) -> Dict[str, Any]:
        """The campaign-wide profile: every job's control-channel
        profile summary merged into one attribution view.  With
        ``?format=speedscope`` the merged stacks are returned as one
        loadable speedscope document instead."""
        from ..profile import merge_summaries, speedscope_document, \
            summary_stack_map
        profiles = self.manager.profiles()
        merged = merge_summaries(
            entry["summary"] for _, entry in sorted(profiles.items()))
        fmt = (params or {}).get("format", "summary")
        if fmt == "speedscope":
            return speedscope_document(summary_stack_map(merged),
                                       name="fleet campaign profile")
        if fmt != "summary":
            raise BadRequest(
                f"format must be 'summary' or 'speedscope', got {fmt!r}")
        return {
            "jobs": {job_id: {"worker_id": entry.get("worker_id"),
                              "attempt": entry.get("attempt", 0)}
                     for job_id, entry in sorted(profiles.items())},
            "profile": merged,
        }

    def job_metrics(self, job_id: str) -> Optional[str]:
        """One job's final exposition, ``(worker, job)``-labelled like
        the federated view; ``None`` if the job never shipped one."""
        entry = self.manager.final_metrics().get(job_id)
        if entry is None:
            return None
        return inject_labels(
            entry["text"],
            {"worker": str(entry.get("worker_id")), "job": job_id})

    # ------------------------------------------------------------------
    # Reverse proxy
    # ------------------------------------------------------------------
    def proxy(self, method: str, worker_id: str,
              target: str) -> Tuple[int, str, bytes]:
        """Forward one request to *worker_id*; returns
        ``(status, content_type, body)``.  Unknown workers are 404,
        dead ones 502 — the distinction a retrying client needs."""
        url = self.manager.live_workers().get(worker_id)
        if url is None:
            return (404, "application/json",
                    json.dumps({"error":
                                 f"unknown or exited worker "
                                 f"{worker_id!r}"}).encode())
        try:
            with urlopen(Request(url + target, method=method),
                         timeout=_PROXY_TIMEOUT) as response:
                content_type = response.headers.get(
                    "Content-Type", "application/octet-stream")
                return response.status, content_type, response.read()
        except HTTPError as exc:
            # The worker's own verdict (400/404/...) passes through.
            return (exc.code,
                    exc.headers.get("Content-Type", "application/json"),
                    exc.read())
        except (URLError, TimeoutError, ConnectionError, OSError) as exc:
            return (502, "application/json",
                    json.dumps({"error":
                                 f"worker {worker_id!r} unreachable: "
                                 f"{exc}"}).encode())
