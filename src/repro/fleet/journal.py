"""The campaign write-ahead log: crash-safe fleet state on disk.

A fleet campaign used to live entirely in the manager's memory: kill
the manager process and every scheduling decision — which jobs
completed, which were mid-retry, which final metric expositions had
been harvested — died with it.  ``CampaignJournal`` is the durability
half of ISSUE 7's tentpole: an append-only JSONL write-ahead log that
records every scheduler transition *before* it takes effect in memory,
so ``fleet resume <journal>`` can rebuild the :class:`JobQueue` after a
``kill -9`` and finish the campaign exactly-once.

**Record format.**  One record per line::

    <crc32 hex8> <JSON object>\\n

The CRC is computed over the JSON bytes, so replay detects a
bit-flipped or torn record without trusting JSON's own (weak) framing.
This mirrors the fleet control channel's damage doctrine
(:class:`~repro.fleet.protocol.FrameDecoder`): a crash mid-write leaves
a torn final line, a disk hiccup can corrupt a record mid-file, and
replay must *tolerate* both — count them, skip them, keep going — not
die.  A torn tail is expected damage (the crash raced the write); a
corrupt record mid-file is counted separately because it means
something worse than a crash happened.

**Durability discipline.**  Appends are flushed always and fsync'd in
batches; records that change campaign outcome (``complete``, ``fail``)
are fsync'd immediately (``critical=True``).  Because fsync persists
every byte written to the file so far, a durable ``complete`` record
implies the ``final-metrics`` record emitted just before it is durable
too — the resume path's federated ``/metrics`` can therefore name
every completed job.

**Compaction.**  A long campaign's journal grows one record per
transition.  :meth:`compact` rewrites it as a single ``snapshot``
record (the full reconstructed state) via temp-file + fsync + atomic
rename, so a crash mid-compaction leaves the previous journal intact.
Replay applies a snapshot as a new baseline and continues with
whatever records follow it.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.atomicio import atomic_write_bytes
from .queue import JobQueue, JobSpec

__all__ = ["CampaignJournal", "JournalReplay", "replay_journal"]

#: Non-critical appends are fsync'd once this many records accumulate.
_FSYNC_BATCH = 16

#: Refuse to parse absurd journal lines (same cap doctrine as the
#: control channel's FrameDecoder).
_MAX_LINE_BYTES = 16 * 1024 * 1024


def _encode_record(record: Dict[str, Any]) -> bytes:
    body = json.dumps(record, separators=(",", ":"),
                      default=str).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x " % crc + body + b"\n"


def _decode_record(line: bytes) -> Optional[Dict[str, Any]]:
    """One journal line → record dict, or ``None`` if damaged."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        expected = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


class CampaignJournal:
    """Append-only, fsync-batched WAL of one campaign's state.

    Open it on a path (existing journals are appended to — that is
    what lets a resumed campaign keep its history), attach it to a
    :class:`JobQueue` so every scheduler transition is recorded, and
    let the :class:`~repro.fleet.manager.FleetManager` add the records
    the queue cannot know about (worker checkpoints, final metric
    expositions).
    """

    def __init__(self, path: str, fsync_batch: int = _FSYNC_BATCH):
        self.path = str(path)
        self.fsync_batch = max(1, int(fsync_batch))
        self._lock = threading.Lock()
        self._attached: set = set()
        self._seq = 0
        self._unsynced = 0
        self.records_written = 0
        self.syncs = 0
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "ab")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record_type: str, critical: bool = False,
               **fields: Any) -> Dict[str, Any]:
        """Append one record; returns it (with its sequence number).

        *critical* records — the ones that change campaign outcome —
        are fsync'd before returning; everything else is flushed
        immediately (a reader sees it) and fsync'd in batches (a crash
        may lose the tail of the batch, which replay treats as
        not-having-happened — safe, because the scheduler re-derives
        in-flight state from what *is* durable).
        """
        with self._lock:
            if self._fh is None:
                raise ValueError("journal is closed")
            record = {"type": record_type, "seq": self._seq, **fields}
            self._seq += 1
            self._fh.write(_encode_record(record))
            self._fh.flush()
            self.records_written += 1
            self._unsynced += 1
            if critical or self._unsynced >= self.fsync_batch:
                os.fsync(self._fh.fileno())
                self.syncs += 1
                self._unsynced = 0
            return record

    def sync(self) -> None:
        """Force-fsync everything appended so far."""
        with self._lock:
            if self._fh is not None and self._unsynced:
                os.fsync(self._fh.fileno())
                self.syncs += 1
                self._unsynced = 0

    def close(self) -> None:
        with self._lock:
            if self._fh is None:
                return
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    # Queue wiring
    # ------------------------------------------------------------------
    def attach(self, queue: JobQueue) -> None:
        """Record every scheduler transition of *queue* (idempotent —
        both the CLI and the manager may call this on the same pair).

        The observer runs inside the queue's lock, so journal order is
        transition order — replay never sees a ``complete`` for a job
        whose ``claim`` it hasn't seen.
        """
        if id(queue) in self._attached:
            return
        self._attached.add(id(queue))
        queue.subscribe(self._on_queue_event)

    def _on_queue_event(self, event: str, job) -> None:
        if event == "submit":
            self.append("submit", job_id=job.spec.job_id,
                        spec=job.spec.to_dict())
        elif event == "claim":
            self.append("claim", job_id=job.spec.job_id,
                        attempt=job.attempt, worker_id=job.worker_id)
        elif event == "complete":
            self.append("complete", critical=True,
                        job_id=job.spec.job_id, result=job.result)
        elif event == "fail":
            failure = job.failures[-1] if job.failures else {}
            self.append("fail", critical=True,
                        job_id=job.spec.job_id,
                        attempt=failure.get("attempt", job.attempt),
                        worker_id=failure.get("worker_id"),
                        error=failure.get("error"),
                        post_mortem=failure.get("post_mortem"),
                        requeued=job.state == "queued",
                        next_attempt=job.attempt)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, replay: "JournalReplay") -> None:
        """Atomically rewrite the journal as one ``snapshot`` record.

        The snapshot is *replay*'s reconstructed state (typically
        ``replay_journal(self.path)`` taken moments before, or the
        state a resume just rebuilt).  Written via temp + fsync +
        rename: a crash mid-compaction leaves the old journal intact,
        and the append handle is reopened on the new file so subsequent
        records land after the snapshot.
        """
        with self._lock:
            if self._fh is None:
                raise ValueError("journal is closed")
            snapshot = {"type": "snapshot", "seq": self._seq,
                        "campaign": replay.campaign,
                        "jobs": {job_id: dict(state) for job_id, state
                                 in replay.jobs.items()},
                        "checkpoints": dict(replay.checkpoints),
                        "final_metrics": dict(replay.final_metrics)}
            self._seq += 1
            atomic_write_bytes(self.path, _encode_record(snapshot))
            self._fh.close()
            self._fh = open(self.path, "ab")
            self._unsynced = 0
            self.records_written += 1
            self.syncs += 1


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class JournalReplay:
    """Campaign state reconstructed from a journal.

    ``jobs`` maps job_id → ``{spec, state, attempt, workers, result,
    failures}`` — the same shape :meth:`Job.to_dict` produces, which is
    what makes snapshots and incremental records interchangeable.
    """

    path: str
    records: int = 0
    corrupt_records: int = 0
    torn_tail: bool = False
    duplicates: int = 0
    campaign: Dict[str, Any] = field(default_factory=dict)
    jobs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    checkpoints: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    final_metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def counts(self) -> Dict[str, int]:
        counts = {"queued": 0, "running": 0, "completed": 0, "failed": 0}
        for state in self.jobs.values():
            counts[state.get("state", "queued")] = \
                counts.get(state.get("state", "queued"), 0) + 1
        counts["total"] = len(self.jobs)
        return counts

    # ------------------------------------------------------------------
    def build_queue(self) -> Tuple[JobQueue, List[str]]:
        """Rebuild a :class:`JobQueue` for resumption.

        Returns ``(queue, resumed_job_ids)``.  Terminal jobs
        (``completed`` / ``failed``) are restored terminal — they will
        never be dispatched again, which is the exactly-once half of
        the contract.  ``queued`` jobs are requeued as-is.  ``running``
        jobs — in flight when the manager died, with no durable result
        — are requeued at their *current* attempt: the attempt never
        produced a ``complete``/``fail`` record, so re-running it is
        finishing it, not repeating it.
        """
        queue = JobQueue()
        resumed: List[str] = []
        for job_id, state in self.jobs.items():
            spec = JobSpec.from_dict(state["spec"])
            job_state = state.get("state", "queued")
            requeue = job_state in ("queued", "running")
            queue.restore(
                spec,
                state="queued" if requeue else job_state,
                attempt=int(state.get("attempt", 0)),
                workers=list(state.get("workers", [])),
                result=state.get("result"),
                failures=list(state.get("failures", [])),
            )
            if requeue:
                resumed.append(job_id)
        return queue, resumed

    # ------------------------------------------------------------------
    # Record application
    # ------------------------------------------------------------------
    def _job(self, record: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        return self.jobs.get(record.get("job_id"))

    def apply(self, record: Dict[str, Any]) -> None:
        kind = record.get("type")
        if kind == "campaign":
            meta = {k: v for k, v in record.items()
                    if k not in ("type", "seq")}
            self.campaign.update(meta)
        elif kind == "snapshot":
            self.campaign = dict(record.get("campaign", {}))
            self.jobs = {job_id: dict(state) for job_id, state
                         in record.get("jobs", {}).items()}
            self.checkpoints = dict(record.get("checkpoints", {}))
            self.final_metrics = dict(record.get("final_metrics", {}))
        elif kind == "submit":
            job_id = record.get("job_id")
            if job_id is None:
                return
            if job_id in self.jobs:
                self.duplicates += 1
                return
            self.jobs[job_id] = {
                "spec": record.get("spec", {}),
                "state": "queued", "attempt": 0, "workers": [],
                "result": None, "failures": [],
            }
        elif kind == "claim":
            job = self._job(record)
            if job is None or job["state"] in ("completed", "failed"):
                return  # late or stray — terminal state wins
            job["state"] = "running"
            job["attempt"] = int(record.get("attempt", job["attempt"]))
            worker = record.get("worker_id")
            if worker is not None:
                job["workers"].append(worker)
        elif kind == "complete":
            job = self._job(record)
            if job is None:
                return
            if job["state"] == "completed":
                self.duplicates += 1  # duplicate completion: idempotent
                return
            job["state"] = "completed"
            job["result"] = record.get("result")
        elif kind == "fail":
            job = self._job(record)
            if job is None or job["state"] in ("completed", "failed"):
                if job is not None:
                    self.duplicates += 1
                return
            job["failures"].append({
                "attempt": record.get("attempt"),
                "worker_id": record.get("worker_id"),
                "error": record.get("error"),
                "post_mortem": record.get("post_mortem"),
            })
            if record.get("requeued"):
                job["state"] = "queued"
                job["attempt"] = int(
                    record.get("next_attempt", job["attempt"] + 1))
            else:
                job["state"] = "failed"
        elif kind == "checkpoint":
            job_id = record.get("job_id")
            if job_id is not None:
                self.checkpoints[job_id] = {
                    k: record.get(k)
                    for k in ("path", "attempt", "sim_time", "events")}
        elif kind == "final-metrics":
            job_id = record.get("job_id")
            if job_id is not None and record.get("text"):
                self.final_metrics[job_id] = {
                    "worker_id": record.get("worker_id"),
                    "attempt": record.get("attempt", 0),
                    "text": record.get("text"),
                }
        # Unknown record types are skipped silently: a newer journal
        # replayed by an older build loses features, not the campaign.


def replay_journal(path: str) -> JournalReplay:
    """Replay *path* into a :class:`JournalReplay`, tolerating damage.

    A missing trailing newline marks the final record as torn (the
    writer crashed mid-append) — expected, flagged, skipped.  A record
    that fails its CRC or JSON parse mid-file is counted in
    ``corrupt_records`` and skipped; every record after it still
    applies, because each line frames and checksums itself.
    """
    replay = JournalReplay(path=str(path))
    with open(path, "rb") as fh:
        buffer = b""
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            buffer += chunk
            while True:
                line, sep, rest = buffer.partition(b"\n")
                if not sep:
                    if len(buffer) > _MAX_LINE_BYTES:
                        replay.corrupt_records += 1
                        buffer = b""
                    break
                buffer = rest
                _apply_line(replay, line)
        if buffer.strip():
            # Unterminated final line: the classic torn tail.
            replay.torn_tail = True
    return replay


def _apply_line(replay: JournalReplay, line: bytes) -> None:
    line = line.rstrip(b"\r")
    if not line.strip():
        return
    record = _decode_record(line)
    if record is None:
        replay.corrupt_records += 1
        return
    replay.records += 1
    replay.apply(record)
