"""The fleet worker: one monitored simulation in one subprocess.

Spawned by the :class:`~repro.fleet.manager.FleetManager` as::

    python -m repro.fleet.worker --spec '<JobSpec JSON>' --attempt 0

The worker builds the platform the job describes, attaches a
:class:`~repro.core.Monitor` with its own :class:`~repro.core.RTMServer`
on an ephemeral port, arms the job's fault (first ``fault_attempts``
attempts only) and a watchdog, then runs the simulation to completion.

**Control channel.**  The worker talks to its manager over stdout with
line-framed JSON, each line prefixed ``@fleet `` (everything else on
stdout is ordinary logging and ignored by the manager):

* ``{"event": "register", "job_id", "attempt", "pid", "url", "port"}``
  — sent as soon as the HTTP server is up, so the gateway can start
  reverse-proxying this worker immediately;
* ``{"event": "result", "ok", "run_state", "sim_time", "events",
  "watchdog", "fault_stats", "metrics_text"}`` — sent once, right
  before exit.  ``metrics_text`` is the worker's final Prometheus
  exposition: the process is about to die, and shipping the last scrape
  through the control channel is what lets the gateway's federated
  ``/metrics`` keep serving completed jobs' series.

Exit status: 0 for a completed workload, 1 for hang/abort/crash — the
manager maps non-zero onto the queue's restart policy.

SIGTERM/SIGINT stop the engine and flush the result event before
exiting, so ``FleetManager.stop()`` never leaves half-written control
traffic behind.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import Any, Dict, List, Optional

from ..core import Monitor
from ..gpu import GPUPlatform, GPUPlatformConfig
from ..metrics import expose
from .queue import JobSpec

__all__ = ["run_worker", "main", "CONTROL_PREFIX"]

#: Marker distinguishing control-channel lines from ordinary stdout.
CONTROL_PREFIX = "@fleet "


def emit(payload: Dict[str, Any]) -> None:
    """Write one control-channel line (flushed: the manager reads the
    pipe live, and a buffered register event would stall the fleet)."""
    sys.stdout.write(CONTROL_PREFIX + json.dumps(payload) + "\n")
    sys.stdout.flush()


def _arm_fault(monitor: Monitor, spec: JobSpec) -> None:
    from ..faults.injector import FaultKind, FaultSpec
    fault = dict(spec.fault or {})
    kind = FaultKind(fault.pop("kind"))
    target = fault.pop("target", "*")
    injector = monitor.ensure_injector(seed=spec.seed)
    injector.inject(FaultSpec(kind, target, **fault))


def run_worker(spec: JobSpec, attempt: int = 0, port: int = 0,
               stall_threshold: float = 0.75,
               watchdog_interval: float = 0.1,
               hang_wait: float = 60.0,
               snapshot_dir: Optional[str] = None) -> int:
    """Run one job to completion in this process; returns the exit code.

    The defaults tune supervision for fleet duty: a worker that stalls
    is a wasted slot, so hangs are confirmed fast (0.75 s without
    progress) and aborted after one recovery attempt rather than
    debugged interactively.
    """
    workload = spec.build_workload()
    config = GPUPlatformConfig.small(num_chiplets=spec.chiplets,
                                     l2_write_buffer_bug=spec.buggy_l2)
    platform = GPUPlatform(config)
    workload.enqueue(platform.driver)

    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    if monitor.hang is not None:
        monitor.hang.stall_threshold = stall_threshold
    monitor.start_sampler()
    url = monitor.start_server(port=port)
    monitor.enable_watchdog(check_interval=watchdog_interval,
                            max_tick_retries=1,
                            retry_wait=watchdog_interval,
                            snapshot_dir=snapshot_dir)
    if spec.fault is not None and attempt < spec.fault_attempts:
        _arm_fault(monitor, spec)
    # Instrument from t=0 so the federated scrape carries the whole run,
    # not just whatever happened after the first gateway scrape.
    monitor.ensure_sim_metrics().start()

    def _graceful(signum, frame):  # noqa: ARG001 (signal signature)
        platform.simulation.abort()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)

    emit({"event": "register", "job_id": spec.job_id,
          "attempt": attempt, "pid": os.getpid(), "url": url,
          "port": int(url.rsplit(":", 1)[1])})

    try:
        ok = platform.run(hang_wait=hang_wait)
    except Exception as exc:  # a crash is a result too
        emit({"event": "result", "job_id": spec.job_id,
              "attempt": attempt, "ok": False,
              "run_state": "crashed",
              "error": f"{type(exc).__name__}: {exc}",
              "watchdog": None, "fault_stats": {},
              "metrics_text": ""})
        monitor.stop_server()
        return 1

    watchdog_report = (monitor.watchdog.report
                       if monitor.watchdog is not None else None)
    injector = monitor.injector
    result = {
        "event": "result",
        "job_id": spec.job_id,
        "attempt": attempt,
        "ok": ok,
        "run_state": platform.simulation.run_state,
        "sim_time": platform.simulation.now,
        "events": platform.engine.event_count,
        "watchdog": watchdog_report,
        "fault_stats": injector.stats() if injector is not None else {},
        "metrics_text": expose(monitor.metrics),
    }
    emit(result)
    monitor.stop_server()
    return 0 if ok else 1


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.fleet.worker",
        description="one fleet-managed monitored simulation")
    parser.add_argument("--spec", required=True,
                        help="JobSpec as a JSON object")
    parser.add_argument("--attempt", type=int, default=0)
    parser.add_argument("--port", type=int, default=0,
                        help="RTM server port (default: ephemeral)")
    parser.add_argument("--stall-threshold", type=float, default=0.75)
    parser.add_argument("--watchdog-interval", type=float, default=0.1)
    parser.add_argument("--hang-wait", type=float, default=60.0)
    parser.add_argument("--snapshot-dir", default=None)
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    try:
        spec = JobSpec.from_dict(json.loads(args.spec))
        spec.validate()
    except (ValueError, TypeError, json.JSONDecodeError) as exc:
        emit({"event": "result", "ok": False, "run_state": "rejected",
              "error": f"bad spec: {exc}", "job_id": None,
              "metrics_text": ""})
        return 2
    return run_worker(spec, attempt=args.attempt, port=args.port,
                      stall_threshold=args.stall_threshold,
                      watchdog_interval=args.watchdog_interval,
                      hang_wait=args.hang_wait,
                      snapshot_dir=args.snapshot_dir)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
