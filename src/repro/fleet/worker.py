"""The fleet worker: a persistent process running monitored simulations.

Spawned by the :class:`~repro.fleet.manager.FleetManager` in one of two
modes:

* **warm** (the default fleet mode)::

      python -m repro.fleet.worker --serve --worker-id w1

  The process boots its platform machinery once — interpreter, imports,
  the RTM HTTP server — then reads line-framed JSON commands from stdin
  (``run`` / ``reset`` / ``shutdown``, see :mod:`repro.fleet.protocol`)
  and executes a *stream* of jobs, resetting simulation state between
  jobs instead of re-exec'ing.  The reset rebuilds the (cheap, ~1 ms)
  platform object graph from scratch for every job — the only reset
  that provably cannot bleed engine time, cache contents, metric
  counters or trace records from one job into the next — while the
  expensive process-level state (interpreter, imported modules, the
  HTTP server and its port) stays warm.  One worker's RTM server thus
  spans many jobs: the URL announced in ``ready`` is stable for the
  process lifetime and is rebound to each job's fresh monitor.

* **one-shot** (the legacy cold mode, kept for per-attempt isolation
  and as the throughput benchmark's baseline)::

      python -m repro.fleet.worker --spec '<JobSpec JSON>' --attempt 0

**Event channel.**  The worker talks to its manager over stdout with
``@fleet``-prefixed JSON lines (:func:`repro.fleet.protocol.emit`):

* ``ready`` — ``{worker_id, pid, url, port, jobs_done}``: the worker
  is idle and will accept a ``run`` command (sent at boot and again
  after every job).  In one-shot mode it doubles as registration.
* ``started`` — ``{job_id, attempt}``: a run command was picked up.
* ``progress`` — ``{job_id, attempt, sim_time, events, run_state}``:
  periodic heartbeat while a job runs (drives fleet status views and
  lets the manager tell "slow" from "dead").
* ``final-metrics`` — ``{job_id, attempt, metrics_text}``: the job's
  final Prometheus exposition.  Shipped *before* the result event so
  the gateway's per-job cache is complete by the time the job is
  marked terminal — a scrape racing the completion can never observe
  a completed job with no series.
* ``profile-summary`` — ``{job_id, attempt, summary}``: the job's
  continuous-profile digest (layers, top functions, top stacks),
  emitted before the result when ``--profile`` is on so the gateway's
  campaign-wide profile is complete by the time the job is terminal.
* ``done`` / ``failed`` — the result: ``{job_id, attempt, ok,
  run_state, sim_time, events, watchdog, fault_stats, trace}``.

Exit status (one-shot): 0 completed, 1 hang/abort/crash, 2 rejected
spec.  Warm workers exit 0 on ``shutdown`` or stdin EOF (an orphaned
worker whose manager died must not linger).

SIGTERM/SIGINT abort the running simulation so the result event is
flushed before exit — ``FleetManager.stop()`` never leaves half-written
control traffic behind.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from typing import List, Optional

from ..core import Monitor
from ..core.server import RTMServer
from ..gpu import GPUPlatform, GPUPlatformConfig
from ..metrics import expose
from .protocol import CONTROL_PREFIX, decode_command, emit
from .queue import JobSpec

__all__ = ["run_worker", "serve", "main", "CONTROL_PREFIX",
           "WorkerSettings"]


class WorkerSettings:
    """Supervision tuning shared by both worker modes.

    The defaults tune for fleet duty: a worker that stalls is a wasted
    slot, so hangs are confirmed fast (0.75 s without progress) and
    aborted after one recovery attempt rather than debugged
    interactively.
    """

    def __init__(self, stall_threshold: float = 0.75,
                 watchdog_interval: float = 0.1,
                 hang_wait: float = 60.0,
                 progress_interval: float = 0.2,
                 snapshot_dir: Optional[str] = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_events: int = 0,
                 checkpoint_interval: float = 0.0,
                 profile: bool = False,
                 profile_interval: float = 0.02):
        self.stall_threshold = stall_threshold
        self.watchdog_interval = watchdog_interval
        self.hang_wait = hang_wait
        self.progress_interval = progress_interval
        self.snapshot_dir = snapshot_dir
        #: Where per-job checkpoints are written (``None`` disables
        #: checkpointing; the cadence below must also be non-zero).
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_events = int(checkpoint_events)
        self.checkpoint_interval = float(checkpoint_interval)
        #: Run every job under the continuous profiler and ship a
        #: profile summary up the control channel.
        self.profile = bool(profile)
        self.profile_interval = float(profile_interval)

    @property
    def checkpointing(self) -> bool:
        return self.checkpoint_dir is not None and (
            self.checkpoint_events > 0 or self.checkpoint_interval > 0)

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "WorkerSettings":
        return cls(stall_threshold=args.stall_threshold,
                   watchdog_interval=args.watchdog_interval,
                   hang_wait=args.hang_wait,
                   progress_interval=args.progress_interval,
                   snapshot_dir=args.snapshot_dir,
                   checkpoint_dir=args.checkpoint_dir,
                   checkpoint_events=args.checkpoint_events,
                   checkpoint_interval=args.checkpoint_interval,
                   profile=args.profile,
                   profile_interval=args.profile_interval)


def _arm_fault(monitor: Monitor, spec: JobSpec) -> None:
    from ..faults.injector import FaultKind, FaultSpec
    fault = dict(spec.fault or {})
    kind = FaultKind(fault.pop("kind"))
    target = fault.pop("target", "*")
    injector = monitor.ensure_injector(seed=spec.seed)
    injector.inject(FaultSpec(kind, target, **fault))


class _ProgressEmitter:
    """Background heartbeat while a job runs."""

    def __init__(self, platform: GPUPlatform, job_id: str, attempt: int,
                 interval: float):
        self._platform = platform
        self._job_id = job_id
        self._attempt = attempt
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_ProgressEmitter":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="fleet-progress")
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            simulation = self._platform.simulation
            emit({"event": "progress", "job_id": self._job_id,
                  "attempt": self._attempt,
                  "sim_time": simulation.now,
                  "events": self._platform.engine.event_count,
                  "run_state": simulation.run_state})


def _build_platform(spec: JobSpec, resume_from: Optional[str]):
    """The job's platform: resumed from a checkpoint when one is given
    and loadable, else built cold.  Returns ``(platform, resume)``
    where *resume* describes the restore (``None`` = cold start; a
    failed restore falls back to cold with the error recorded — a
    stale or damaged checkpoint must cost a cold start, not the job).
    """
    workload = spec.build_workload()
    if resume_from is not None:
        from ..checkpoint import CheckpointError, load_checkpoint
        try:
            platform, header = load_checkpoint(resume_from,
                                               workload=workload)
            return platform, {
                "path": resume_from,
                "sim_time": platform.engine.now,
                "events": platform.engine.event_count,
                "checkpoint_seq": header["meta"].get("checkpoint_seq"),
            }
        except CheckpointError as exc:
            resume = {"path": resume_from, "error": str(exc)}
            platform = _cold_platform(spec, workload)
            return platform, resume
    return _cold_platform(spec, workload), None


def _cold_platform(spec: JobSpec, workload) -> GPUPlatform:
    config = GPUPlatformConfig.small(
        num_chiplets=spec.chiplets,
        l2_write_buffer_bug=spec.buggy_l2)
    platform = GPUPlatform(config)
    workload.enqueue(platform.driver)
    return platform


def _make_checkpointer(platform: GPUPlatform, spec: JobSpec,
                       attempt: int, settings: WorkerSettings,
                       monitor: Monitor):
    """Per-job checkpoint cadence, announcing each save upstream so
    the manager can hand the path back as ``resume_from`` on retry."""
    from ..checkpoint import Checkpointer
    os.makedirs(settings.checkpoint_dir, exist_ok=True)
    path = os.path.join(settings.checkpoint_dir, f"{spec.job_id}.rtm")

    def announce(header):
        meta = header.get("meta", {})
        emit({"event": "checkpoint", "job_id": spec.job_id,
              "attempt": attempt, "path": path,
              "sim_time": meta.get("sim_time"),
              "events": meta.get("event_count")})

    return Checkpointer(platform, path,
                        every_events=settings.checkpoint_events,
                        interval=settings.checkpoint_interval,
                        meta={"job_id": spec.job_id, "attempt": attempt},
                        on_save=announce, registry=monitor.metrics)


def _execute_job(spec: JobSpec, attempt: int, server: RTMServer,
                 settings: WorkerSettings,
                 abort: Optional["_AbortCurrent"] = None,
                 resume_from: Optional[str] = None) -> bool:
    """Run one job against *server*, emitting the full event sequence
    (``started`` … ``final-metrics`` … ``done``/``failed``).  Returns
    the job's success.

    Everything simulation-scoped — platform, monitor, registry,
    watchdog, tracer, checkpointer — is built fresh here and torn down
    before returning; only the process and *server* survive into the
    next call.  That construction-per-job *is* the warm worker's reset.
    """
    emit({"event": "started", "job_id": spec.job_id,
          "attempt": attempt, "resume_from": resume_from})
    monitor: Optional[Monitor] = None
    checkpointer = None
    try:
        platform, resume = _build_platform(spec, resume_from)
        if abort is not None:
            # Expose the in-flight platform to the signal handler for
            # the duration of this job only.
            abort.platform = platform

        monitor = Monitor(platform.simulation)
        monitor.attach_driver(platform.driver)
        if monitor.hang is not None:
            monitor.hang.stall_threshold = settings.stall_threshold
        monitor.start_sampler()
        # The process-lifetime server now fronts this job's monitor:
        # the dashboard URL spans jobs, the simulation behind it is new.
        server.rebind(monitor)
        if settings.checkpointing:
            checkpointer = _make_checkpointer(platform, spec, attempt,
                                              settings, monitor)
            monitor.attach_checkpointer(checkpointer)
            checkpointer.start()
        monitor.enable_watchdog(
            check_interval=settings.watchdog_interval,
            max_tick_retries=1,
            retry_wait=settings.watchdog_interval,
            snapshot_dir=settings.snapshot_dir)
        if spec.fault is not None and attempt < spec.fault_attempts \
                and (resume is None or "error" in resume):
            # A resumed attempt never re-arms its fault: the snapshot
            # already carries whatever damage the fault did, and the
            # retry exists to finish the job, not re-break it.
            _arm_fault(monitor, spec)
        if spec.trace:
            monitor.ensure_tracer(backend="ring").start()
        # Instrument from t=0 so the federated scrape carries the whole
        # run, not just whatever happened after the first scrape.
        monitor.ensure_sim_metrics().start()
        if settings.profile:
            # Short fleet jobs want short windows: a one-window job
            # would otherwise summarize as an empty ring.
            monitor.start_continuous_profiling(
                interval=settings.profile_interval,
                window_seconds=1.0)
        if resume is not None and "error" not in resume:
            monitor.metrics.counter(
                "rtm_job_resumes_total",
                "Attempts restarted from a checkpoint instead of t=0."
            ).inc()
            monitor.metrics.gauge(
                "rtm_job_resume_sim_time",
                "Virtual time this attempt resumed from."
            ).set(float(resume["sim_time"]))
    except Exception as exc:  # bad build: report, stay alive
        emit({"event": "failed", "job_id": spec.job_id,
              "attempt": attempt, "ok": False, "run_state": "rejected",
              "error": f"{type(exc).__name__}: {exc}",
              "watchdog": None, "fault_stats": {}, "trace": None})
        if checkpointer is not None:
            checkpointer.stop()
        if monitor is not None:
            _teardown(monitor)
        return False

    try:
        with _ProgressEmitter(platform, spec.job_id, attempt,
                              settings.progress_interval):
            ok = platform.run(hang_wait=settings.hang_wait)
    except Exception as exc:  # a crash is a result too
        emit({"event": "failed", "job_id": spec.job_id,
              "attempt": attempt, "ok": False, "run_state": "crashed",
              "error": f"{type(exc).__name__}: {exc}",
              "watchdog": None, "fault_stats": {}, "trace": None})
        if checkpointer is not None:
            checkpointer.stop()
        _teardown(monitor)
        return False
    finally:
        if abort is not None:
            abort.platform = None

    if checkpointer is not None:
        checkpointer.stop()
    watchdog_report = (monitor.watchdog.report
                       if monitor.watchdog is not None else None)
    injector = monitor.injector
    tracer = monitor.tracer
    result = {
        "job_id": spec.job_id,
        "attempt": attempt,
        "ok": ok,
        "run_state": platform.simulation.run_state,
        "sim_time": platform.simulation.now,
        "events": platform.engine.event_count,
        "watchdog": watchdog_report,
        "fault_stats": injector.stats() if injector is not None else {},
        "trace": tracer.status() if tracer is not None else None,
        "resume": resume,
        "checkpoints": (checkpointer.status()
                        if checkpointer is not None else None),
    }
    if monitor.continuous is not None:
        # Stop sampling, then ship the job's profile digest ahead of
        # the result (like final-metrics: the gateway's campaign
        # profile must be complete when the job goes terminal).
        monitor.continuous.stop()
        emit({"event": "profile-summary", "job_id": spec.job_id,
              "attempt": attempt,
              "summary": monitor.continuous.summary()})
    # Final exposition first (see module docstring: the gateway's
    # per-job cache must be complete before the job goes terminal).
    emit({"event": "final-metrics", "job_id": spec.job_id,
          "attempt": attempt, "metrics_text": expose(monitor.metrics)})
    emit({"event": ("done" if ok else "failed"), **result})
    _teardown(monitor)
    return ok


def _teardown(monitor: Monitor) -> None:
    """Stop everything simulation-scoped — but *not* the HTTP server,
    which belongs to the process, not the job.  (This is the cheap
    subset of ``Monitor.stop_server``.)"""
    monitor.stop_sampler()
    if monitor.watchdog is not None:
        monitor.watchdog.stop()
    if monitor.tracer is not None:
        monitor.tracer.stop()
    if monitor.sim_metrics is not None:
        monitor.sim_metrics.stop()
    if monitor.profiler.running:
        monitor.profiler.stop()
    if monitor.continuous is not None and monitor.continuous.running:
        monitor.continuous.stop()


class _AbortCurrent:
    """SIGTERM/SIGINT → abort whatever simulation is running now.

    The warm worker swaps simulations per job, so the handler chases a
    mutable slot rather than closing over one platform.
    """

    def __init__(self) -> None:
        self.platform: Optional[GPUPlatform] = None
        self.requested = False

    def install(self) -> None:
        signal.signal(signal.SIGTERM, self._handle)
        signal.signal(signal.SIGINT, self._handle)

    def _handle(self, signum, frame):  # noqa: ARG002 (signal signature)
        self.requested = True
        if self.platform is not None:
            self.platform.simulation.abort()


def serve(worker_id: str, settings: WorkerSettings,
          port: int = 0) -> int:
    """Warm mode: boot once, run jobs from stdin until shutdown/EOF."""
    # Boot the process-lifetime server against an idle placeholder
    # monitor; each job rebinds it.  Booting the server *before*
    # announcing ready is what lets the gateway proxy this worker the
    # moment its first job is assigned.
    idle_monitor = Monitor()
    server = RTMServer(idle_monitor, port=port)
    server.start()
    abort = _AbortCurrent()
    abort.install()
    jobs_done = 0

    def ready() -> None:
        emit({"event": "ready", "worker_id": worker_id,
              "pid": os.getpid(), "url": server.url,
              "port": server.port, "jobs_done": jobs_done})

    ready()
    try:
        for line in sys.stdin:
            command = decode_command(line)
            if command is None:
                continue
            cmd = command.get("cmd")
            if cmd == "shutdown" or abort.requested:
                break
            if cmd == "reset":
                # Drop the last job's monitor early (normally the next
                # run replaces it; reset lets a manager reclaim memory
                # on a long-idle worker).
                server.rebind(idle_monitor)
                ready()
                continue
            if cmd != "run":
                emit({"event": "failed", "job_id": None,
                      "attempt": command.get("attempt", 0), "ok": False,
                      "run_state": "rejected",
                      "error": f"unknown command {cmd!r}",
                      "watchdog": None, "fault_stats": {},
                      "trace": None})
                ready()  # still idle, still serving
                continue
            attempt = int(command.get("attempt", 0))
            try:
                spec = JobSpec.from_dict(command["spec"])
                spec.validate()
            except (KeyError, ValueError, TypeError) as exc:
                emit({"event": "failed",
                      "job_id": (command.get("spec") or {}).get("job_id"),
                      "attempt": attempt, "ok": False,
                      "run_state": "rejected",
                      "error": f"bad spec: {exc}",
                      "watchdog": None, "fault_stats": {},
                      "trace": None})
                ready()
                continue
            ok = _execute_job(spec, attempt, server, settings,
                              abort=abort,
                              resume_from=command.get("resume_from"))
            if ok:
                jobs_done += 1
            if abort.requested:
                break
            ready()
    finally:
        server.stop()
    return 0


def run_worker(spec: JobSpec, attempt: int = 0, port: int = 0,
               settings: Optional[WorkerSettings] = None,
               resume_from: Optional[str] = None) -> int:
    """One-shot mode: run a single job to completion in this process;
    returns the exit code.  (The cold fleet's unit of dispatch, and the
    warm-vs-cold benchmark's baseline.)"""
    settings = settings or WorkerSettings()
    placeholder = Monitor()
    server = RTMServer(placeholder, port=port)
    server.start()
    abort = _AbortCurrent()
    abort.install()
    emit({"event": "ready", "worker_id": None, "pid": os.getpid(),
          "url": server.url, "port": server.port, "jobs_done": 0})
    try:
        ok = _execute_job(spec, attempt, server, settings, abort=abort,
                          resume_from=resume_from)
    finally:
        server.stop()
    return 0 if ok else 1


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.fleet.worker",
        description="fleet-managed monitored simulation worker")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--spec",
                      help="one-shot mode: JobSpec as a JSON object")
    mode.add_argument("--serve", action="store_true",
                      help="warm mode: accept a stream of jobs on stdin")
    parser.add_argument("--worker-id", default="w?",
                        help="identity echoed in ready events (warm)")
    parser.add_argument("--attempt", type=int, default=0)
    parser.add_argument("--port", type=int, default=0,
                        help="RTM server port (default: ephemeral)")
    parser.add_argument("--stall-threshold", type=float, default=0.75)
    parser.add_argument("--watchdog-interval", type=float, default=0.1)
    parser.add_argument("--hang-wait", type=float, default=60.0)
    parser.add_argument("--progress-interval", type=float, default=0.2)
    parser.add_argument("--snapshot-dir", default=None)
    parser.add_argument("--checkpoint-dir", default=None,
                        help="write per-job checkpoints here (enables "
                             "resume-from-checkpoint retries)")
    parser.add_argument("--checkpoint-events", type=int, default=0,
                        help="checkpoint every N simulation events")
    parser.add_argument("--checkpoint-interval", type=float, default=0.0,
                        help="checkpoint every T wall seconds")
    parser.add_argument("--resume-from", default=None,
                        help="one-shot mode: restore this checkpoint "
                             "instead of starting at t=0")
    parser.add_argument("--profile", action="store_true",
                        help="run every job under the continuous "
                             "profiler; ship profile summaries upstream")
    parser.add_argument("--profile-interval", type=float, default=0.02,
                        help="continuous-profiler sampling interval")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    settings = WorkerSettings.from_args(args)
    if args.serve:
        return serve(args.worker_id, settings, port=args.port)
    try:
        spec = JobSpec.from_dict(json.loads(args.spec))
        spec.validate()
    except (ValueError, TypeError, json.JSONDecodeError) as exc:
        emit({"event": "failed", "job_id": None, "attempt": args.attempt,
              "ok": False, "run_state": "rejected",
              "error": f"bad spec: {exc}", "watchdog": None,
              "fault_stats": {}, "trace": None})
        return 2
    return run_worker(spec, attempt=args.attempt, port=args.port,
                      settings=settings, resume_from=args.resume_from)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
