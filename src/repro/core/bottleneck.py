"""The bottleneck analyzer (paper §IV-C, Figure 3 and Figure 4).

Takes a snapshot of every buffer in the simulation and lists the most
occupied ones.  A buffer that is *persistently* at the top of this list
marks the component that drains it as a likely performance bottleneck;
after a hang, any non-empty buffer marks a component that could not make
progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..akita.buffer import Buffer
from .inspector import discover_buffers

SORT_KEYS = ("percent", "size")


@dataclass
class BufferRow:
    """One row of the analyzer table."""

    name: str
    size: int
    capacity: int
    pinned: bool = False  # held at capacity by a fault injector

    @property
    def percent(self) -> float:
        if self.pinned:
            return 1.0
        return self.size / self.capacity if self.capacity else 0.0

    def to_dict(self) -> Dict[str, Any]:
        # "pinned" lets /api/buffers clients tell a fault-pinned buffer
        # (held at capacity by the injector) from a genuinely full one.
        return {"buffer": self.name, "size": self.size,
                "capacity": self.capacity,
                "percent": round(self.percent, 4),
                "pinned": self.pinned}


class BufferAnalyzer:
    """Snapshots buffer levels across registered components."""

    def __init__(self) -> None:
        self._buffers: List[Buffer] = []
        self._known: set = set()

    def register_component(self, component: Any) -> int:
        """Discover and track *component*'s buffers.  Returns how many
        new buffers were found."""
        added = 0
        for buf in discover_buffers(component):
            if id(buf) not in self._known:
                self._known.add(id(buf))
                self._buffers.append(buf)
                added += 1
        return added

    @property
    def buffer_count(self) -> int:
        return len(self._buffers)

    def snapshot(self, sort: str = "percent",
                 top: int = 0,
                 include_empty: bool = False) -> List[BufferRow]:
        """The Figure 3 table: most occupied buffers first.

        Parameters
        ----------
        sort:
            ``"percent"`` (fullness ratio) or ``"size"`` (element count),
            the two sort modes of the paper's panel.
        top:
            Truncate to the first *top* rows (0 = all).
        include_empty:
            Keep empty buffers in the list (useful in tests; the panel
            hides them).
        """
        if sort not in SORT_KEYS:
            raise ValueError(f"sort must be one of {SORT_KEYS}")
        rows = [BufferRow(b.name, b.size, b.capacity,
                          getattr(b, "pinned", False))
                for b in self._buffers
                if include_empty or b.size > 0
                or getattr(b, "pinned", False)]
        key = (lambda r: (r.percent, r.size)) if sort == "percent" \
            else (lambda r: (r.size, r.percent))
        rows.sort(key=key, reverse=True)
        if top:
            rows = rows[:top]
        return rows

    def non_empty(self) -> List[BufferRow]:
        """Buffers with content — the hang-analysis view of case
        study 2 (after a deadlock every one of these marks a stuck
        component)."""
        return self.snapshot(sort="size")
