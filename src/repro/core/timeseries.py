"""Simulation value monitoring over time (paper §IV-C, Figure 5).

A :class:`ValueWatch` tracks one value of the hardware under simulation
— a number, or a container whose size is plotted.  The paper keeps only
the most recent 300 data points ("considering that the client's memory
is usually limited"); we honour the same bound.

Up to :data:`MAX_WATCHES` watches are active at once (the paper's view
"plots up to five individual values over time").

Storage lives in the metrics layer: each watch is a labelled child of
the ``rtm_watch_value`` gauge family, so watched values appear in the
Prometheus exposition alongside every other metric, and the history
behind the dashboard's time charts is the gauge child's bounded
:class:`~repro.metrics.Series` — one namespace, one ring, no private
sample lists.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..metrics import Gauge, MetricRegistry, Series
from .inspector import numeric_value, resolve_path

#: Most recent data points kept per watch (paper: 300).
HISTORY = 300
#: Concurrent watches (paper: up to five values plotted).
MAX_WATCHES = 5

_watch_ids = itertools.count(1)


class ValueWatch:
    """One monitored value and its recent history."""

    def __init__(self, component: Any, path: str,
                 label: Optional[str] = None,
                 registry: Optional[MetricRegistry] = None):
        self.id = next(_watch_ids)
        self.component = component
        self.path = path
        comp_name = getattr(component, "name", type(component).__name__)
        self.label = label or f"{comp_name}.{path}"
        self._gauge: Optional[Gauge] = None
        if registry is not None:
            self._gauge = registry.gauge(
                "rtm_watch_value",
                "Current value of each dashboard watch.",
                ("watch",), history=HISTORY)
            self._child = self._gauge.labels(self.label)
            self._series = self._child.series
            self._series.clear()  # a re-used label starts fresh
        else:
            self._child = None
            self._series = Series(HISTORY)

    def sample(self, now: float) -> Optional[float]:
        """Record the current value at simulation time *now*."""
        try:
            raw = resolve_path(self.component, self.path)
        except (AttributeError, KeyError, IndexError, TypeError):
            return None
        value = numeric_value(raw)
        if value is None:
            return None
        if self._child is not None:
            self._child.set(value, now)
        else:
            self._series.append(now, value)
        return value

    @property
    def points(self) -> List[Tuple[float, float]]:
        """Snapshot of the recent (sim time, value) history."""
        return self._series.points()

    def release(self) -> None:
        """Drop this watch's child from the registry (on unwatch)."""
        if self._gauge is not None:
            self._gauge.remove(self.label)
            self._gauge = None
            self._child = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "label": self.label,
            "path": self.path,
            "points": [[t, v] for t, v in self.points],
        }


class ValueMonitor:
    """Manages the active watches; thread-safe."""

    def __init__(self, max_watches: int = MAX_WATCHES,
                 registry: Optional[MetricRegistry] = None):
        self.max_watches = max_watches
        self.registry = registry
        self._watches: Dict[int, ValueWatch] = {}
        self._lock = threading.Lock()

    def watch(self, component: Any, path: str,
              label: Optional[str] = None) -> ValueWatch:
        """Start watching ``component.path``.

        When the watch limit is reached the oldest watch is dropped,
        mirroring the dashboard's five-plot carousel.
        """
        with self._lock:
            while len(self._watches) >= self.max_watches:
                oldest = min(self._watches)
                self._watches.pop(oldest).release()
            w = ValueWatch(component, path, label,
                           registry=self.registry)
            self._watches[w.id] = w
            return w

    def unwatch(self, watch_id: int) -> bool:
        with self._lock:
            watch = self._watches.pop(watch_id, None)
            if watch is None:
                return False
            watch.release()
            return True

    def get(self, watch_id: int) -> Optional[ValueWatch]:
        return self._watches.get(watch_id)

    @property
    def watches(self) -> List[ValueWatch]:
        with self._lock:
            return list(self._watches.values())

    def sample_all(self, now: float) -> None:
        """Take one sample of every active watch (called periodically by
        the monitor's sampler thread or by a polling client)."""
        for w in self.watches:
            w.sample(now)

    def to_dict(self) -> List[Dict[str, Any]]:
        return [w.to_dict() for w in self.watches]
