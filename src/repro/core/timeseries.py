"""Simulation value monitoring over time (paper §IV-C, Figure 5).

A :class:`ValueWatch` tracks one value of the hardware under simulation
— a number, or a container whose size is plotted.  The paper keeps only
the most recent 300 data points ("considering that the client's memory
is usually limited"); we honour the same bound.

Up to :data:`MAX_WATCHES` watches are active at once (the paper's view
"plots up to five individual values over time").
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .inspector import numeric_value, resolve_path

#: Most recent data points kept per watch (paper: 300).
HISTORY = 300
#: Concurrent watches (paper: up to five values plotted).
MAX_WATCHES = 5

_watch_ids = itertools.count(1)


class ValueWatch:
    """One monitored value and its recent history."""

    def __init__(self, component: Any, path: str,
                 label: Optional[str] = None):
        self.id = next(_watch_ids)
        self.component = component
        self.path = path
        comp_name = getattr(component, "name", type(component).__name__)
        self.label = label or f"{comp_name}.{path}"
        self.points: Deque[Tuple[float, float]] = deque(maxlen=HISTORY)

    def sample(self, now: float) -> Optional[float]:
        """Record the current value at simulation time *now*."""
        try:
            raw = resolve_path(self.component, self.path)
        except (AttributeError, KeyError, IndexError, TypeError):
            return None
        value = numeric_value(raw)
        if value is None:
            return None
        self.points.append((now, value))
        return value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "label": self.label,
            "path": self.path,
            "points": [[t, v] for t, v in self.points],
        }


class ValueMonitor:
    """Manages the active watches; thread-safe."""

    def __init__(self, max_watches: int = MAX_WATCHES):
        self.max_watches = max_watches
        self._watches: Dict[int, ValueWatch] = {}
        self._lock = threading.Lock()

    def watch(self, component: Any, path: str,
              label: Optional[str] = None) -> ValueWatch:
        """Start watching ``component.path``.

        When the watch limit is reached the oldest watch is dropped,
        mirroring the dashboard's five-plot carousel.
        """
        with self._lock:
            while len(self._watches) >= self.max_watches:
                oldest = min(self._watches)
                del self._watches[oldest]
            w = ValueWatch(component, path, label)
            self._watches[w.id] = w
            return w

    def unwatch(self, watch_id: int) -> bool:
        with self._lock:
            return self._watches.pop(watch_id, None) is not None

    def get(self, watch_id: int) -> Optional[ValueWatch]:
        return self._watches.get(watch_id)

    @property
    def watches(self) -> List[ValueWatch]:
        with self._lock:
            return list(self._watches.values())

    def sample_all(self, now: float) -> None:
        """Take one sample of every active watch (called periodically by
        the monitor's sampler thread or by a polling client)."""
        for w in self.watches:
            w.sample(now)

    def to_dict(self) -> List[Dict[str, Any]]:
        return [w.to_dict() for w in self.watches]
