"""The AkitaRTM HTTP backend.

Turns any monitored simulation into a web server (paper §IV-A): the
frontend (static files under ``repro/core/static``) polls these JSON
endpoints.  The same endpoints are the paper's "HTTP API" that lets
simulators written in other languages plug in, and they are what the
:mod:`repro.core.client` drives in tests, benchmarks and the simulated
user study.

Endpoints
---------
=======  ==============================  =====================================
Method   Path                            Purpose
=======  ==============================  =====================================
GET      /                               dashboard (static files)
GET      /api/overview                   sim time, run state, event counts
GET      /api/resources                  CPU%, RSS, events/s (T2)
GET      /api/components                 hierarchical component tree
GET      /api/component?name=N           one component, serialized (T5)
GET      /api/value?component=N&path=P   one monitored value (time charts)
GET      /api/buffers?sort=S&top=K       bottleneck analyzer table (T5)
GET      /api/progress                   progress bars (T1)
GET      /api/hang                       hang heuristic verdict (T3)
GET      /api/topology                   connection graph (§VIII ext.)
GET      /api/throughput?component=N     per-port message counts (§VIII)
GET      /api/alerts                     alert rules + firing state
POST     /api/alert?component&path&...   add a fail-fast alert rule
DELETE   /api/alert?id=I                 remove an alert rule
GET      /api/faults                     armed fault specs + stats
POST     /api/faults?kind&target&...     arm a fault (drop/delay/stall...)
DELETE   /api/faults?id=I                disarm a fault
GET      /api/watchdog                   supervision state + post-mortem
POST     /api/watchdog?action=start|stop control the watchdog
GET      /metrics                        Prometheus text exposition
GET      /api/metrics                    registry snapshot (?delta=1)
GET      /api/stream                     SSE: periodic snapshot pushes
POST     /api/metrics?action=start|stop  attach/detach sim instrumentation
GET      /api/trace                      tracer status + store stats
GET      /api/trace/query?component&...  filtered trace events
GET      /api/trace/follow?msg_id=I      one message's hops + path
GET      /api/trace/export?format&path   JSONL / Perfetto export
POST     /api/trace?action=start|stop|clear  control the tracer
GET      /api/profile?top=K              profiler report (T4)
POST     /api/profile/start|stop         control the one-shot profiler
GET      /api/profile/windows?last=N     rolling-profiler window ring
GET      /api/profile/attribution?last   overhead decomposed by layer
GET      /api/profile/export?format=F    collapsed / speedscope export
POST     /api/profile/continuous?action  start|stop the rolling profiler
POST     /api/pause | /api/continue      simulation control
POST     /api/kickstart                  resume a dry run loop
POST     /api/throttle?events_per_second slow down time (§V-C)
POST     /api/tick?component=N           wake one component (Tick button)
POST     /api/watch?component=N&path=P   add a time-chart watch
GET      /api/watches                    all watches + their 300-pt series
DELETE   /api/watch?id=I                 remove a watch
=======  ==============================  =====================================

Requests are served from dedicated threads; the monitor performs all
work on demand, serializing one component or value per request (§VII's
low-overhead design choices 1 and 2), in a thread parallel to the
simulation thread (choice 3).

Status-code discipline: 400 for malformed or missing query parameters,
404 for unknown component/alert/watch/fault ids, 500 only for genuine
handler bugs (the final ``except Exception`` backstop).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..metrics import CONTENT_TYPE as _PROM_CONTENT_TYPE
from ..metrics import expose as _expose
from ..metrics import snapshot_delta as _snapshot_delta

STATIC_DIR = Path(__file__).parent / "static"

#: HTTP handler latency buckets (seconds).
_HTTP_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0)


def _endpoint_label(path: str) -> str:
    """Bound label cardinality: API paths verbatim, static collapsed."""
    if path.startswith("/api/") or path == "/metrics":
        return path
    return "/static"

_CONTENT_TYPES = {
    ".html": "text/html; charset=utf-8",
    ".js": "application/javascript; charset=utf-8",
    ".css": "text/css; charset=utf-8",
    ".svg": "image/svg+xml",
    ".json": "application/json",
}


class BadRequest(Exception):
    """A malformed query parameter; mapped to HTTP 400."""


#: Backwards-compatible alias (the original private name).
_BadRequest = BadRequest


def _int_param(params: Dict[str, str], key: str, default: int) -> int:
    try:
        return int(params.get(key, default))
    except (TypeError, ValueError):
        raise BadRequest(f"parameter {key!r} must be an integer, "
                         f"got {params.get(key)!r}") from None


def _float_param(params: Dict[str, str], key: str,
                 default: Optional[float] = None) -> Optional[float]:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise BadRequest(f"parameter {key!r} must be a number, "
                         f"got {raw!r}") from None


class JSONRequestHandler(BaseHTTPRequestHandler):
    """Shared plumbing of the AkitaRTM HTTP handlers.

    Both the per-simulation :class:`RTMServer` handler and the fleet
    gateway (:mod:`repro.fleet.gateway`) speak the same dialect: JSON
    bodies, ``{"error": ...}`` envelopes with the 400/404/500 status
    discipline, and query strings flattened to single values.
    """

    server_version = "AkitaRTM/1.0"

    def log_message(self, fmt, *args):  # silence default stderr logging
        pass

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int = 400) -> None:
        self._send_json({"error": message}, status)

    def _send_body(self, body: bytes, content_type: str,
                   status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _query(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        params = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        return parsed.path, params


class _Handler(JSONRequestHandler):
    """Routes requests to the monitor.  One instance per request."""

    monitor = None  # injected by RTMServer via subclassing

    # -- static files ------------------------------------------------------
    def _serve_static(self, path: str) -> None:
        if path in ("/", "/index.html"):
            path = "/index.html"
        rel = path.lstrip("/").replace("static/", "", 1)
        target = (STATIC_DIR / rel).resolve()
        if not str(target).startswith(str(STATIC_DIR.resolve())) \
                or not target.is_file():
            self._send_error_json("not found", 404)
            return
        body = target.read_bytes()
        self.send_response(200)
        self.send_header("Content-Type",
                         _CONTENT_TYPES.get(target.suffix,
                                            "application/octet-stream"))
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- self-instrumentation ------------------------------------------------
    def _record_http(self, method: str, endpoint: str,
                     seconds: float) -> None:
        """Publish this request into the monitor's registry — the HTTP
        slice of Figure 7's overhead decomposition, live."""
        registry = getattr(self.monitor, "metrics", None)
        if registry is None:
            return
        registry.counter(
            "rtm_http_requests_total",
            "HTTP requests served, by method and endpoint.",
            ("method", "endpoint")).labels(method, endpoint).inc()
        registry.histogram(
            "rtm_http_request_seconds",
            "HTTP request handling latency, by endpoint.",
            ("endpoint",),
            buckets=_HTTP_BUCKETS).labels(endpoint).observe(seconds)

    # -- GET -----------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path, params = self._query()
        if path == "/api/stream":
            # Long-lived: excluded from request-latency accounting.
            try:
                self._get_stream(params)
            except BadRequest as exc:
                self._send_error_json(str(exc), 400)
            return
        t0 = perf_counter()
        try:
            self._route_get(path, params)
        finally:
            self._record_http("GET", _endpoint_label(path),
                              perf_counter() - t0)

    def _route_get(self, path: str, params: Dict[str, str]) -> None:
        monitor = self.monitor
        try:
            if path == "/api/overview":
                self._send_json(monitor.overview())
            elif path == "/api/resources":
                self._send_json(monitor.resources.sample().to_dict())
            elif path == "/api/components":
                self._send_json({"tree": monitor.component_tree(),
                                 "names": monitor.component_names()})
            elif path == "/api/component":
                name = params.get("name", "")
                if not monitor.has_component(name):
                    self._send_error_json(f"unknown component {name!r}",
                                          404)
                else:
                    self._send_json(monitor.component_detail(name))
            elif path == "/api/value":
                self._get_value(params)
            elif path == "/api/buffers":
                sort = params.get("sort", "percent")
                top = _int_param(params, "top", 50)
                try:
                    rows = monitor.analyzer.snapshot(sort=sort, top=top)
                except ValueError as exc:
                    raise BadRequest(str(exc)) from None
                self._send_json({"buffers": [r.to_dict() for r in rows]})
            elif path == "/api/progress":
                self._send_json({"bars": [b.to_dict()
                                          for b in monitor.progress_bars()]})
            elif path == "/api/hang":
                if monitor.hang is None:
                    self._send_error_json(
                        "hang detection needs a registered simulation",
                        400)
                else:
                    self._send_json(monitor.hang_status().to_dict())
            elif path == "/api/faults":
                injector = monitor.injector
                self._send_json({
                    "armed": injector is not None,
                    "faults": injector.to_dict() if injector else [],
                    "stats": injector.stats() if injector else {},
                })
            elif path == "/api/watchdog":
                watchdog = monitor.watchdog
                self._send_json({
                    "enabled": watchdog is not None,
                    **(watchdog.to_dict() if watchdog else {}),
                })
            elif path == "/api/checkpoint":
                checkpointer = monitor.checkpointer
                self._send_json({
                    "enabled": checkpointer is not None,
                    **(checkpointer.status() if checkpointer else {}),
                })
            elif path == "/api/profile":
                top = _int_param(params, "top", 15)
                report = monitor.profiler.report(top)
                payload = report.to_dict()
                payload["running"] = monitor.profiler.running
                payload["continuous"] = (
                    monitor.continuous.status()
                    if monitor.continuous is not None
                    else {"running": False})
                self._send_json(payload)
            elif path == "/api/profile/windows":
                self._get_profile_windows(params)
            elif path == "/api/profile/attribution":
                self._get_profile_attribution(params)
            elif path == "/api/profile/export":
                self._get_profile_export(params)
            elif path == "/api/watches":
                monitor.values.sample_all(monitor.now())
                self._send_json({"watches": monitor.values.to_dict()})
            elif path == "/api/topology":
                self._send_json(monitor.topology())
            elif path == "/api/alerts":
                self._send_json({"alerts": monitor.alerts.to_dict()})
            elif path == "/api/throughput":
                name = params.get("component", "")
                if not monitor.has_component(name):
                    self._send_error_json(f"unknown component {name!r}",
                                          404)
                else:
                    self._send_json(
                        {"ports": monitor.port_throughput(name)})
            elif path == "/metrics":
                self._get_prometheus()
            elif path == "/api/metrics":
                self._get_metrics(params)
            elif path == "/api/trace":
                tracer = monitor.tracer
                self._send_json({
                    "attached": tracer is not None,
                    **(tracer.status() if tracer else {}),
                })
            elif path == "/api/trace/query":
                self._get_trace_query(params)
            elif path == "/api/trace/follow":
                self._get_trace_follow(params)
            elif path == "/api/trace/export":
                self._get_trace_export(params)
            else:
                self._serve_static(path)
        except BadRequest as exc:
            self._send_error_json(str(exc), 400)
        except Exception as exc:  # surface handler bugs to the client
            self._send_error_json(f"{type(exc).__name__}: {exc}", 500)

    def _get_value(self, params: Dict[str, str]) -> None:
        from .inspector import numeric_value, resolve_path
        monitor = self.monitor
        name = params.get("component", "")
        path = params.get("path", "")
        if not monitor.has_component(name):
            self._send_error_json(f"unknown component {name!r}", 404)
            return
        try:
            raw = resolve_path(monitor.component(name), path)
        except (AttributeError, KeyError, IndexError, TypeError) as exc:
            self._send_error_json(f"bad path {path!r}: {exc}", 400)
            return
        self._send_json({"component": name, "path": path,
                         "time": monitor.now(),
                         "value": numeric_value(raw)})

    # -- metrics -------------------------------------------------------------
    def _ensure_sim_metrics_started(self) -> None:
        """Auto-attach simulation instrumentation on first scrape, the
        way a Prometheus user expects /metrics to just work.  Monitors
        without a registered simulation still expose their own
        (monitor-side) families."""
        monitor = self.monitor
        try:
            monitor.ensure_sim_metrics().start()
        except RuntimeError:
            pass

    def _get_prometheus(self) -> None:
        self._ensure_sim_metrics_started()
        body = _expose(self.monitor.metrics).encode()
        self.send_response(200)
        self.send_header("Content-Type", _PROM_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _metrics_snapshot(self, params: Dict[str, str]) -> Dict[str, Any]:
        import re
        names = params.get("names")
        if names is not None:
            try:
                re.compile(names)
            except re.error as exc:
                raise BadRequest(f"bad names regex: {exc}") from None
        return self.monitor.metrics.snapshot(names)

    def _get_metrics(self, params: Dict[str, str]) -> None:
        self._ensure_sim_metrics_started()
        current = self._metrics_snapshot(params)
        want_delta = params.get("delta", "") not in ("", "0", "false")
        payload: Dict[str, Any] = {"delta": want_delta}
        if want_delta:
            # The previous snapshot lives on the per-server handler
            # class, so deltas span requests but not server restarts.
            previous = getattr(type(self), "_metrics_prev", None)
            payload["metrics"] = _snapshot_delta(previous or {}, current)
            type(self)._metrics_prev = current
        else:
            payload["metrics"] = current
        self._send_json(payload)

    def _get_stream(self, params: Dict[str, str]) -> None:
        """Server-Sent Events: push snapshots until the client leaves,
        ``count`` is reached, or the server stops."""
        monitor = self.monitor
        interval = max(0.05, _float_param(params, "interval", 0.5))
        count = _int_param(params, "count", 0)
        import re
        names = params.get("names")
        if names is not None:
            try:
                re.compile(names)
            except re.error as exc:
                raise BadRequest(f"bad names regex: {exc}") from None
        # attach=0 lets passive consumers (the dashboard header) stream
        # overview/resources without attaching simulation hooks — an open
        # browser tab must not perturb the overhead it displays.
        if params.get("attach", "1") not in ("0", "false"):
            self._ensure_sim_metrics_started()
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        stopping = getattr(self.server, "stopping", None)
        sent = 0
        try:
            while True:
                payload: Dict[str, Any] = {
                    "metrics": monitor.metrics.snapshot(names)}
                try:
                    payload["overview"] = monitor.overview()
                except RuntimeError:
                    pass
                if monitor.resources is not None:
                    payload["resources"] = \
                        monitor.resources.sample().to_dict()
                self.wfile.write(
                    b"data: " + json.dumps(payload).encode() + b"\n\n")
                self.wfile.flush()
                sent += 1
                if count and sent >= count:
                    break
                if stopping is not None:
                    if stopping.wait(interval):
                        break
                else:  # pragma: no cover - servers always set one
                    import time as _time
                    _time.sleep(interval)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; nothing to report

    def _post_metrics(self, params: Dict[str, str]) -> None:
        monitor = self.monitor
        action = params.get("action", "")
        if action == "start":
            try:
                sim_metrics = monitor.ensure_sim_metrics()
            except RuntimeError as exc:
                raise BadRequest(str(exc)) from None
            sim_metrics.start()
            self._send_json(sim_metrics.status())
        elif action == "stop":
            if monitor.sim_metrics is None:
                self._send_error_json(
                    "no simulation metrics attached", 404)
                return
            monitor.sim_metrics.stop()
            self._send_json(monitor.sim_metrics.status())
        else:
            raise BadRequest(
                f"action must be 'start' or 'stop', got {action!r}")

    # -- continuous profiling ------------------------------------------------
    def _require_continuous(self):
        profiler = self.monitor.continuous
        if profiler is None:
            self._send_error_json(
                "continuous profiler not attached; "
                "POST /api/profile/continuous?action=start", 404)
            return None
        return profiler

    @staticmethod
    def _last_param(params: Dict[str, str]) -> Optional[int]:
        last = _int_param(params, "last", 0)
        if last < 0:
            raise BadRequest("parameter 'last' must be >= 0")
        return last or None

    def _get_profile_windows(self, params: Dict[str, str]) -> None:
        profiler = self._require_continuous()
        if profiler is None:
            return
        last = self._last_param(params)
        self._send_json({"status": profiler.status(),
                         "windows": profiler.windows(last)})

    def _get_profile_attribution(self, params: Dict[str, str]) -> None:
        profiler = self._require_continuous()
        if profiler is None:
            return
        last = self._last_param(params)
        top = _int_param(params, "top", 20)
        self._send_json(profiler.attribution(last, top=top))

    def _get_profile_export(self, params: Dict[str, str]) -> None:
        profiler = self._require_continuous()
        if profiler is None:
            return
        fmt = params.get("format", "speedscope")
        last = self._last_param(params)
        if fmt == "collapsed":
            text = profiler.collapsed(last, role=params.get("role"))
            payload: Any = text
            body = text.encode()
            content_type = "text/plain; charset=utf-8"
        elif fmt == "speedscope":
            payload = profiler.speedscope(last)
            body = json.dumps(payload).encode()
            content_type = "application/json"
        elif fmt == "summary":
            payload = profiler.summary(last)
            body = json.dumps(payload).encode()
            content_type = "application/json"
        else:
            raise BadRequest(
                f"format must be 'collapsed', 'speedscope' or "
                f"'summary', got {fmt!r}")
        dest = params.get("path")
        if dest is not None:
            from .atomicio import atomic_write_text
            atomic_write_text(
                dest, payload if isinstance(payload, str)
                else json.dumps(payload, indent=2))
            self._send_json({"written": dest, "format": fmt})
        else:
            self._send_body(body, content_type)

    def _post_profile_continuous(self, params: Dict[str, str]) -> None:
        monitor = self.monitor
        action = params.get("action", "")
        if action == "start":
            config: Dict[str, Any] = {}
            for key in ("interval", "window_seconds", "backoff_after",
                        "max_interval"):
                if key in params:
                    config[key] = _float_param(params, key)
            if "ring" in params:
                config["ring"] = _int_param(params, "ring", 15)
            if monitor.continuous is None:
                try:
                    monitor.ensure_continuous_profiler(**config)
                except ValueError as exc:
                    raise BadRequest(str(exc)) from None
            monitor.continuous.start()
            self._send_json(monitor.continuous.status())
        elif action == "stop":
            profiler = self._require_continuous()
            if profiler is None:
                return
            profiler.stop()
            self._send_json(profiler.status())
        else:
            raise BadRequest(
                f"action must be 'start' or 'stop', got {action!r}")

    # -- trace ---------------------------------------------------------------
    def _require_tracer(self):
        tracer = self.monitor.tracer
        if tracer is None:
            self._send_error_json(
                "no tracer attached; POST /api/trace?action=start", 404)
            return None
        return tracer

    def _get_trace_query(self, params: Dict[str, str]) -> None:
        tracer = self._require_tracer()
        if tracer is None:
            return
        filters: Dict[str, Any] = {
            "limit": _int_param(params, "limit", 200),
        }
        if "component" in params:
            try:
                import re as _re
                _re.compile(params["component"])
            except _re.error as exc:
                raise BadRequest(
                    f"bad component regex: {exc}") from None
            filters["component"] = params["component"]
        if "kind" in params:
            filters["kind"] = params["kind"].split(",")
        if "t0" in params:
            filters["t0"] = _float_param(params, "t0")
        if "t1" in params:
            filters["t1"] = _float_param(params, "t1")
        if "msg_id" in params:
            filters["msg_id"] = _int_param(params, "msg_id", 0)
        events = tracer.query(**filters)
        self._send_json({"count": len(events),
                         "events": [ev.to_dict() for ev in events]})

    def _get_trace_follow(self, params: Dict[str, str]) -> None:
        from ..trace import message_path
        tracer = self._require_tracer()
        if tracer is None:
            return
        if "msg_id" not in params:
            raise BadRequest("parameter 'msg_id' is required")
        msg_id = _int_param(params, "msg_id", 0)
        events = tracer.follow(msg_id)
        if not events:
            self._send_error_json(
                f"no trace events for message {msg_id}", 404)
            return
        self._send_json({"msg_id": msg_id,
                         "events": [ev.to_dict() for ev in events],
                         "path": message_path(events)})

    def _get_trace_export(self, params: Dict[str, str]) -> None:
        from ..trace import export_events
        tracer = self._require_tracer()
        if tracer is None:
            return
        fmt = params.get("format", "jsonl")
        limit = _int_param(params, "limit", 0)
        events = tracer.query(limit=limit)
        dest = params.get("path")
        try:
            payload = export_events(events, fmt, dest)
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        if dest is not None:
            self._send_json({"written": str(payload),
                             "count": len(events), "format": fmt})
        else:
            self._send_json(payload)

    def _post_trace(self, params: Dict[str, str]) -> None:
        monitor = self.monitor
        action = params.get("action", "")
        if action == "start":
            backend = params.get("backend", "ring")
            try:
                tracer = monitor.ensure_tracer(
                    backend=backend,
                    capacity=_int_param(params, "capacity", 65536),
                    db_path=params.get("db"),
                    include=params.get("include"))
            except (RuntimeError, ValueError) as exc:
                raise BadRequest(str(exc)) from None
            tracer.start()
            self._send_json(tracer.status())
        elif action == "stop":
            tracer = self._require_tracer()
            if tracer is None:
                return
            tracer.stop()
            self._send_json(tracer.status())
        elif action == "clear":
            tracer = self._require_tracer()
            if tracer is None:
                return
            tracer.clear()
            self._send_json(tracer.status())
        else:
            raise BadRequest(
                f"action must be 'start', 'stop' or 'clear', "
                f"got {action!r}")

    # -- POST ----------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        path, params = self._query()
        t0 = perf_counter()
        try:
            self._route_post(path, params)
        finally:
            self._record_http("POST", _endpoint_label(path),
                              perf_counter() - t0)

    def _route_post(self, path: str, params: Dict[str, str]) -> None:
        monitor = self.monitor
        try:
            if path == "/api/pause":
                monitor.pause()
                self._send_json({"paused": True})
            elif path == "/api/continue":
                monitor.continue_()
                self._send_json({"paused": False})
            elif path == "/api/kickstart":
                monitor.kick_start()
                self._send_json({"ok": True})
            elif path == "/api/throttle":
                eps = _float_param(params, "events_per_second", 0.0)
                monitor.set_throttle(eps)
                self._send_json({"events_per_second": eps})
            elif path == "/api/tick":
                name = params.get("component", "")
                ok = monitor.tick_component(name)
                if ok:
                    monitor.kick_start()
                    self._send_json({"ticked": name})
                else:
                    self._send_error_json(
                        f"{name!r} is not a ticking component", 400)
            elif path == "/api/profile/start":
                monitor.profiler.start()
                self._send_json({"profiling": True})
            elif path == "/api/profile/stop":
                monitor.profiler.stop()
                self._send_json({"profiling": False})
            elif path == "/api/profile/continuous":
                self._post_profile_continuous(params)
            elif path == "/api/watch":
                name = params.get("component", "")
                value_path = params.get("path", "")
                if not monitor.has_component(name):
                    self._send_error_json(f"unknown component {name!r}",
                                          404)
                    return
                watch = monitor.watch_value(name, value_path)
                self._send_json({"id": watch.id, "label": watch.label})
            elif path == "/api/alert":
                name = params.get("component", "")
                if not monitor.has_component(name):
                    self._send_error_json(f"unknown component {name!r}",
                                          404)
                    return
                try:
                    rule = monitor.add_alert(
                        name, params.get("path", ""),
                        params.get("op", ">="),
                        _float_param(params, "threshold", 0.0),
                        _float_param(params, "duration", 0.0),
                        params.get("action", "notify"))
                except ValueError as exc:
                    self._send_error_json(str(exc), 400)
                    return
                self._send_json({"id": rule.id, "label": rule.label})
            elif path == "/api/faults":
                self._post_fault(params)
            elif path == "/api/watchdog":
                self._post_watchdog(params)
            elif path == "/api/checkpoint":
                checkpointer = monitor.checkpointer
                if checkpointer is None:
                    self._send_error_json(
                        "no checkpointer attached", 400)
                elif params.get("action", "save") != "save":
                    self._send_error_json(
                        "unknown action (expected save)", 400)
                else:
                    saved = checkpointer.save_paused()
                    self._send_json({"saved": saved,
                                     **checkpointer.status()})
            elif path == "/api/trace":
                self._post_trace(params)
            elif path == "/api/metrics":
                self._post_metrics(params)
            else:
                self._send_error_json("not found", 404)
        except BadRequest as exc:
            self._send_error_json(str(exc), 400)
        except Exception as exc:
            self._send_error_json(f"{type(exc).__name__}: {exc}", 500)

    def _post_fault(self, params: Dict[str, str]) -> None:
        """Arm one fault: ``kind`` + ``target`` are required."""
        from ..faults.injector import FaultKind, FaultSpec
        monitor = self.monitor
        kind = params.get("kind", "")
        target = params.get("target", "")
        if kind not in [k.value for k in FaultKind]:
            raise BadRequest(
                f"kind must be one of "
                f"{sorted(k.value for k in FaultKind)}, got {kind!r}")
        if not target:
            raise BadRequest("parameter 'target' is required")
        try:
            injector = monitor.ensure_injector(
                seed=_int_param(params, "seed", 0))
        except RuntimeError as exc:
            raise BadRequest(str(exc)) from None
        try:
            spec = injector.inject(FaultSpec(
                FaultKind(kind), target,
                start=_float_param(params, "start", 0.0),
                end=_float_param(params, "end"),
                probability=_float_param(params, "probability", 1.0),
                delay=_float_param(params, "delay", 0.0)))
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        self._send_json(spec.to_dict())

    def _post_watchdog(self, params: Dict[str, str]) -> None:
        monitor = self.monitor
        action = params.get("action", "")
        if action == "start":
            config = {}
            for key in ("check_interval", "retry_wait"):
                if key in params:
                    config[key] = _float_param(params, key)
            for key in ("max_tick_retries", "max_suspects",
                        "trace_window"):
                if key in params:
                    config[key] = _int_param(params, key, 0)
            for key in ("recover", "abort_on_failure"):
                if key in params:
                    config[key] = params[key].lower() not in (
                        "0", "false", "no")
            if "snapshot_dir" in params:
                config["snapshot_dir"] = params["snapshot_dir"]
            watchdog = monitor.enable_watchdog(**config)
            self._send_json(watchdog.to_dict())
        elif action == "stop":
            if monitor.watchdog is None:
                self._send_error_json("no watchdog attached", 404)
                return
            monitor.watchdog.stop()
            self._send_json(monitor.watchdog.to_dict())
        else:
            raise BadRequest(
                f"action must be 'start' or 'stop', got {action!r}")

    # -- DELETE -------------------------------------------------------------
    def do_DELETE(self) -> None:  # noqa: N802
        path, params = self._query()
        t0 = perf_counter()
        try:
            self._route_delete(path, params)
        finally:
            self._record_http("DELETE", _endpoint_label(path),
                              perf_counter() - t0)

    def _route_delete(self, path: str, params: Dict[str, str]) -> None:
        try:
            if path == "/api/watch":
                watch_id = _int_param(params, "id", 0)
                removed = self.monitor.values.unwatch(watch_id)
                if not removed:
                    self._send_error_json(f"unknown watch id {watch_id}",
                                          404)
                    return
                self._send_json({"removed": True})
            elif path == "/api/alert":
                rule_id = _int_param(params, "id", 0)
                removed = self.monitor.alerts.remove(rule_id)
                if not removed:
                    self._send_error_json(f"unknown alert id {rule_id}",
                                          404)
                    return
                self._send_json({"removed": True})
            elif path == "/api/faults":
                spec_id = _int_param(params, "id", 0)
                injector = self.monitor.injector
                if injector is None or not injector.revoke(spec_id):
                    self._send_error_json(f"unknown fault id {spec_id}",
                                          404)
                    return
                self._send_json({"removed": True})
            else:
                self._send_error_json("not found", 404)
        except BadRequest as exc:
            self._send_error_json(str(exc), 400)
        except Exception as exc:
            self._send_error_json(f"{type(exc).__name__}: {exc}", 500)


class HTTPServerThread:
    """Owns a ThreadingHTTPServer and its serving thread.

    The reusable server shell: bind at construction time (so ``port=0``
    resolves to the ephemeral port before :meth:`start` returns), serve
    from a daemon thread, and expose a ``stopping`` event that long-
    lived handlers (SSE streams) wait on between pushes so :meth:`stop`
    unparks them immediately instead of waiting out an interval.
    """

    thread_name = "rtm-http"

    #: ``serve_forever`` wakes at this interval to notice ``shutdown()``.
    #: The stdlib default (0.5 s) makes every server stop cost up to
    #: half a second of pure sleeping — per *job* under the old
    #: one-subprocess-per-attempt fleet, which is one of the fixed
    #: costs the warm pool exists to amortize.
    poll_interval = 0.05

    def __init__(self, handler, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.stopping = threading.Event()
        self._handler = handler
        self._thread: Optional[threading.Thread] = None
        self.host = host
        self.port = self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=lambda: self._httpd.serve_forever(
                poll_interval=self.poll_interval),
            daemon=True, name=self.thread_name)
        self._thread.start()

    def stop(self) -> None:
        self._httpd.stopping.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


class RTMServer(HTTPServerThread):
    """The monitor-bound HTTP server.

    Classically one per simulation; a warm fleet worker instead keeps
    one server alive across many simulations and :meth:`rebind`\\ s it
    to each job's fresh monitor — the worker's dashboard URL (and the
    gateway's reverse-proxy route to it) stays stable for the process
    lifetime while the simulation behind it changes.
    """

    thread_name = "rtm-server"

    def __init__(self, monitor, host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundHandler", (_Handler,), {"monitor": monitor})
        super().__init__(handler, host=host, port=port)

    @property
    def monitor(self):
        return self._handler.monitor

    def rebind(self, monitor) -> None:
        """Point the server at a different monitor.

        Handler instances resolve ``monitor`` through their class at
        request time, so flipping the class attribute switches every
        *subsequent* request atomically; requests already in flight
        finish against the monitor they started with.
        """
        self._handler.monitor = monitor
