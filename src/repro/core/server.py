"""The AkitaRTM HTTP backend.

Turns any monitored simulation into a web server (paper §IV-A): the
frontend (static files under ``repro/core/static``) polls these JSON
endpoints.  The same endpoints are the paper's "HTTP API" that lets
simulators written in other languages plug in, and they are what the
:mod:`repro.core.client` drives in tests, benchmarks and the simulated
user study.

Endpoints
---------
=======  ==============================  =====================================
Method   Path                            Purpose
=======  ==============================  =====================================
GET      /                               dashboard (static files)
GET      /api/overview                   sim time, run state, event counts
GET      /api/resources                  CPU%, RSS, events/s (T2)
GET      /api/components                 hierarchical component tree
GET      /api/component?name=N           one component, serialized (T5)
GET      /api/value?component=N&path=P   one monitored value (time charts)
GET      /api/buffers?sort=S&top=K       bottleneck analyzer table (T5)
GET      /api/progress                   progress bars (T1)
GET      /api/hang                       hang heuristic verdict (T3)
GET      /api/topology                   connection graph (§VIII ext.)
GET      /api/throughput?component=N     per-port message counts (§VIII)
GET      /api/alerts                     alert rules + firing state
POST     /api/alert?component&path&...   add a fail-fast alert rule
DELETE   /api/alert?id=I                 remove an alert rule
GET      /api/profile?top=K              profiler report (T4)
POST     /api/profile/start|stop         control the profiler
POST     /api/pause | /api/continue      simulation control
POST     /api/kickstart                  resume a dry run loop
POST     /api/throttle?events_per_second slow down time (§V-C)
POST     /api/tick?component=N           wake one component (Tick button)
POST     /api/watch?component=N&path=P   add a time-chart watch
GET      /api/watches                    all watches + their 300-pt series
DELETE   /api/watch?id=I                 remove a watch
=======  ==============================  =====================================

Requests are served from dedicated threads; the monitor performs all
work on demand, serializing one component or value per request (§VII's
low-overhead design choices 1 and 2), in a thread parallel to the
simulation thread (choice 3).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

STATIC_DIR = Path(__file__).parent / "static"

_CONTENT_TYPES = {
    ".html": "text/html; charset=utf-8",
    ".js": "application/javascript; charset=utf-8",
    ".css": "text/css; charset=utf-8",
    ".svg": "image/svg+xml",
    ".json": "application/json",
}


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the monitor.  One instance per request."""

    server_version = "AkitaRTM/1.0"
    monitor = None  # injected by RTMServer via subclassing

    # -- helpers -----------------------------------------------------------
    def log_message(self, fmt, *args):  # silence default stderr logging
        pass

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int = 400) -> None:
        self._send_json({"error": message}, status)

    def _query(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        params = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        return parsed.path, params

    # -- static files ------------------------------------------------------
    def _serve_static(self, path: str) -> None:
        if path in ("/", "/index.html"):
            path = "/index.html"
        rel = path.lstrip("/").replace("static/", "", 1)
        target = (STATIC_DIR / rel).resolve()
        if not str(target).startswith(str(STATIC_DIR.resolve())) \
                or not target.is_file():
            self._send_error_json("not found", 404)
            return
        body = target.read_bytes()
        self.send_response(200)
        self.send_header("Content-Type",
                         _CONTENT_TYPES.get(target.suffix,
                                            "application/octet-stream"))
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- GET -----------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path, params = self._query()
        monitor = self.monitor
        try:
            if path == "/api/overview":
                self._send_json(monitor.overview())
            elif path == "/api/resources":
                self._send_json(monitor.resources.sample().to_dict())
            elif path == "/api/components":
                self._send_json({"tree": monitor.component_tree(),
                                 "names": monitor.component_names()})
            elif path == "/api/component":
                name = params.get("name", "")
                if not monitor.has_component(name):
                    self._send_error_json(f"unknown component {name!r}",
                                          404)
                else:
                    self._send_json(monitor.component_detail(name))
            elif path == "/api/value":
                self._get_value(params)
            elif path == "/api/buffers":
                sort = params.get("sort", "percent")
                top = int(params.get("top", "50"))
                rows = monitor.analyzer.snapshot(sort=sort, top=top)
                self._send_json({"buffers": [r.to_dict() for r in rows]})
            elif path == "/api/progress":
                self._send_json({"bars": [b.to_dict()
                                          for b in monitor.progress_bars()]})
            elif path == "/api/hang":
                self._send_json(monitor.hang_status().to_dict())
            elif path == "/api/profile":
                top = int(params.get("top", "15"))
                report = monitor.profiler.report(top)
                payload = report.to_dict()
                payload["running"] = monitor.profiler.running
                self._send_json(payload)
            elif path == "/api/watches":
                monitor.values.sample_all(monitor.now())
                self._send_json({"watches": monitor.values.to_dict()})
            elif path == "/api/topology":
                self._send_json(monitor.topology())
            elif path == "/api/alerts":
                self._send_json({"alerts": monitor.alerts.to_dict()})
            elif path == "/api/throughput":
                name = params.get("component", "")
                if not monitor.has_component(name):
                    self._send_error_json(f"unknown component {name!r}",
                                          404)
                else:
                    self._send_json(
                        {"ports": monitor.port_throughput(name)})
            else:
                self._serve_static(path)
        except Exception as exc:  # surface handler bugs to the client
            self._send_error_json(f"{type(exc).__name__}: {exc}", 500)

    def _get_value(self, params: Dict[str, str]) -> None:
        from .inspector import numeric_value, resolve_path
        monitor = self.monitor
        name = params.get("component", "")
        path = params.get("path", "")
        if not monitor.has_component(name):
            self._send_error_json(f"unknown component {name!r}", 404)
            return
        try:
            raw = resolve_path(monitor.component(name), path)
        except (AttributeError, KeyError, IndexError, TypeError) as exc:
            self._send_error_json(f"bad path {path!r}: {exc}", 400)
            return
        self._send_json({"component": name, "path": path,
                         "time": monitor.now(),
                         "value": numeric_value(raw)})

    # -- POST ----------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        path, params = self._query()
        monitor = self.monitor
        try:
            if path == "/api/pause":
                monitor.pause()
                self._send_json({"paused": True})
            elif path == "/api/continue":
                monitor.continue_()
                self._send_json({"paused": False})
            elif path == "/api/kickstart":
                monitor.kick_start()
                self._send_json({"ok": True})
            elif path == "/api/throttle":
                eps = float(params.get("events_per_second", "0"))
                monitor.set_throttle(eps)
                self._send_json({"events_per_second": eps})
            elif path == "/api/tick":
                name = params.get("component", "")
                ok = monitor.tick_component(name)
                if ok:
                    monitor.kick_start()
                    self._send_json({"ticked": name})
                else:
                    self._send_error_json(
                        f"{name!r} is not a ticking component", 400)
            elif path == "/api/profile/start":
                monitor.profiler.start()
                self._send_json({"profiling": True})
            elif path == "/api/profile/stop":
                monitor.profiler.stop()
                self._send_json({"profiling": False})
            elif path == "/api/watch":
                name = params.get("component", "")
                value_path = params.get("path", "")
                if not monitor.has_component(name):
                    self._send_error_json(f"unknown component {name!r}",
                                          404)
                    return
                watch = monitor.watch_value(name, value_path)
                self._send_json({"id": watch.id, "label": watch.label})
            elif path == "/api/alert":
                name = params.get("component", "")
                if not monitor.has_component(name):
                    self._send_error_json(f"unknown component {name!r}",
                                          404)
                    return
                try:
                    rule = monitor.add_alert(
                        name, params.get("path", ""),
                        params.get("op", ">="),
                        float(params.get("threshold", "0")),
                        float(params.get("duration", "0")),
                        params.get("action", "notify"))
                except ValueError as exc:
                    self._send_error_json(str(exc), 400)
                    return
                self._send_json({"id": rule.id, "label": rule.label})
            else:
                self._send_error_json("not found", 404)
        except Exception as exc:
            self._send_error_json(f"{type(exc).__name__}: {exc}", 500)

    # -- DELETE -------------------------------------------------------------
    def do_DELETE(self) -> None:  # noqa: N802
        path, params = self._query()
        if path == "/api/watch":
            watch_id = int(params.get("id", "0"))
            removed = self.monitor.values.unwatch(watch_id)
            self._send_json({"removed": removed})
        elif path == "/api/alert":
            rule_id = int(params.get("id", "0"))
            removed = self.monitor.alerts.remove(rule_id)
            self._send_json({"removed": removed})
        else:
            self._send_error_json("not found", 404)


class RTMServer:
    """Owns the ThreadingHTTPServer and its serving thread."""

    def __init__(self, monitor, host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundHandler", (_Handler,), {"monitor": monitor})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None
        self.host = host
        self.port = self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True, name="rtm-server")
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
