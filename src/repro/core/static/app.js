/* AkitaRTM dashboard client.
 *
 * Plain fetch-polling against the JSON API, mirroring the paper's
 * frontend behaviour:
 *  - resources / controls / progress refresh continuously,
 *  - the component tree is fetched once and rendered hierarchically,
 *  - selecting a component serializes it on demand (one component per
 *    request),
 *  - flag icons next to numeric fields open time charts that keep the
 *    most recent 300 points,
 *  - the right panel toggles between the profiler's vertical arc
 *    diagram and the bottleneck analyzer's buffer table.
 */
"use strict";

const $ = (id) => document.getElementById(id);

async function api(path, method = "GET") {
  const res = await fetch(path, { method });
  if (!res.ok) throw new Error(`${method} ${path}: ${res.status}`);
  return res.json();
}

/* ------------------------------------------------------------------ *
 * Controls + overview (Figure 2 C)
 * ------------------------------------------------------------------ */
function fmtTime(t) {
  if (t >= 1e-3) return (t * 1e3).toFixed(3) + " ms";
  if (t >= 1e-6) return (t * 1e6).toFixed(3) + " µs";
  return (t * 1e9).toFixed(1) + " ns";
}

function renderOverview(o) {
  $("sim-time").textContent = fmtTime(o.now);
  $("run-state").textContent = o.paused ? "paused" : o.run_state;
}

async function refreshOverview() {
  try {
    renderOverview(await api("/api/overview"));
  } catch (e) { /* server going away is fine */ }
}

$("btn-pause").onclick = () => api("/api/pause", "POST").then(refreshOverview);
$("btn-continue").onclick = () =>
  api("/api/continue", "POST").then(refreshOverview);
$("btn-kickstart").onclick = () => api("/api/kickstart", "POST");
$("throttle").onchange = (e) =>
  api(`/api/throttle?events_per_second=${e.target.value}`, "POST");

/* ------------------------------------------------------------------ *
 * Resources + hang state (Figure 2 A, tasks T2/T3)
 * ------------------------------------------------------------------ */
function renderResources(r) {
  $("res-cpu").textContent = r.cpu_percent.toFixed(1) + " %";
  $("res-mem").textContent = r.rss_mb.toFixed(1) + " MB";
  $("res-eps").textContent = r.events_per_second.toLocaleString();
}

async function refreshHang() {
  try {
    const h = await api("/api/hang");
    const el = $("hang-state");
    el.textContent = h.hung
      ? `HUNG (${h.stalled_wall_seconds}s)` : "ok";
    el.style.color = h.hung ? "var(--red)" : "var(--green)";
  } catch (e) { /* ignore */ }
}

async function refreshResources() {
  try {
    renderResources(await api("/api/resources"));
  } catch (e) { /* ignore */ }
}

/* ------------------------------------------------------------------ *
 * Alerts: fail-early/fail-fast rules and their firing state
 * ------------------------------------------------------------------ */
async function refreshAlerts() {
  try {
    const data = await api("/api/alerts");
    const container = $("alerts");
    if (!data.alerts.length) {
      container.textContent = "no rules";
      container.style.color = "var(--muted)";
      return;
    }
    container.style.color = "";
    container.replaceChildren(...data.alerts.map((a) => {
      const div = document.createElement("div");
      div.className = "kv";
      const label = document.createElement("span");
      label.textContent = a.label;
      const state = document.createElement("b");
      state.textContent = a.fired ? `FIRED (${a.action})` : "armed";
      state.style.color = a.fired ? "var(--red)" : "var(--green)";
      div.appendChild(label);
      div.appendChild(state);
      return div;
    }));
  } catch (e) { /* ignore */ }
}

/* ------------------------------------------------------------------ *
 * Component tree (Figure 2 B/D)
 * ------------------------------------------------------------------ */
let selectedComponent = null;

function renderTree(tree, prefix = "") {
  const ul = document.createElement("ul");
  for (const segment of Object.keys(tree).sort()) {
    const li = document.createElement("li");
    const full = prefix ? `${prefix}.${segment}` : segment;
    const children = tree[segment];
    const hasKids = Object.keys(children).length > 0;
    if (hasKids) {
      const caret = document.createElement("span");
      caret.className = "caret";
      caret.textContent = "▸";
      li.appendChild(caret);
      const sub = renderTree(children, full);
      sub.classList.add("hidden");
      caret.onclick = () => {
        sub.classList.toggle("hidden");
        caret.textContent = sub.classList.contains("hidden") ? "▸" : "▾";
      };
      const node = document.createElement("span");
      node.className = "node";
      node.textContent = segment;
      node.onclick = () => selectComponent(full, node);
      li.appendChild(node);
      li.appendChild(sub);
    } else {
      const node = document.createElement("span");
      node.className = "node";
      node.textContent = segment;
      node.onclick = () => selectComponent(full, node);
      li.appendChild(node);
    }
    ul.appendChild(li);
  }
  return ul;
}

let knownNames = [];
async function loadTree() {
  const data = await api("/api/components");
  knownNames = data.names;
  $("tree").replaceChildren(renderTree(data.tree));
}

/* ------------------------------------------------------------------ *
 * Component detail + value flags (Figure 2 D, tasks T4/T5)
 * ------------------------------------------------------------------ */
function renderValue(v) {
  if (v === null || v === undefined) return "null";
  if (typeof v !== "object") return String(v);
  if (v.__kind__ === "buffer") return `buffer ${v.size}/${v.capacity}`;
  if (v.__kind__ === "port") return `port ${v.name}`;
  if (v.__kind__ === "dict") return `dict(${v.size})`;
  if (v.__kind__ === "list") return `list(${v.size})`;
  if (v.__kind__ === "object") return v.type;
  return JSON.stringify(v);
}

async function selectComponent(name, node) {
  if (!knownNames.includes(name)) return; // grouping node, not a component
  document.querySelectorAll("#tree .node.selected")
    .forEach((n) => n.classList.remove("selected"));
  if (node) node.classList.add("selected");
  selectedComponent = name;
  const detail = await api(`/api/component?name=${encodeURIComponent(name)}`);
  $("detail-title").textContent = `${detail.name} (${detail.type})`;
  const tickBtn = $("btn-tick");
  tickBtn.classList.toggle("hidden", !detail.ticking);
  tickBtn.onclick = () =>
    api(`/api/tick?component=${encodeURIComponent(name)}`, "POST");
  const table = document.createElement("table");
  for (const [field, value] of Object.entries(detail.fields)) {
    const tr = document.createElement("tr");
    const tdName = document.createElement("td");
    tdName.textContent = field;
    const tdVal = document.createElement("td");
    tdVal.textContent = renderValue(value);
    if (detail.watchable.includes(field)) {
      const flag = document.createElement("span");
      flag.className = "flag";
      flag.title = "Monitor this value over time";
      flag.textContent = "⚑";
      flag.onclick = () => addWatch(name, field);
      tdVal.appendChild(flag);
    }
    tr.appendChild(tdName);
    tr.appendChild(tdVal);
    table.appendChild(tr);
  }
  $("detail").replaceChildren(table);
}

/* ------------------------------------------------------------------ *
 * Time charts (Figure 2 F) — 300 recent points per watch
 * ------------------------------------------------------------------ */
async function addWatch(component, path) {
  await api(`/api/watch?component=${encodeURIComponent(component)}` +
            `&path=${encodeURIComponent(path)}`, "POST");
  refreshWatches();
}

function drawChart(watch) {
  const W = 300, H = 80, PAD = 4;
  const div = document.createElement("div");
  div.className = "chart";
  const label = document.createElement("div");
  label.className = "label";
  const pts = watch.points;
  const last = pts.length ? pts[pts.length - 1][1] : "–";
  label.innerHTML = `<span>${watch.label}</span><b>${last}</b>`;
  const close = document.createElement("span");
  close.className = "close";
  close.textContent = "✕";
  close.onclick = () =>
    api(`/api/watch?id=${watch.id}`, "DELETE").then(refreshWatches);
  label.appendChild(close);
  div.appendChild(label);

  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("width", W);
  svg.setAttribute("height", H);
  if (pts.length > 1) {
    const ts = pts.map((p) => p[0]), vs = pts.map((p) => p[1]);
    const t0 = Math.min(...ts), t1 = Math.max(...ts);
    const v0 = Math.min(0, ...vs), v1 = Math.max(1, ...vs);
    const x = (t) => PAD + (W - 2 * PAD) * (t1 > t0 ? (t - t0) / (t1 - t0) : 0);
    const y = (v) => H - PAD - (H - 2 * PAD) * ((v - v0) / (v1 - v0));
    const line = document.createElementNS(svg.namespaceURI, "polyline");
    line.setAttribute("points",
      pts.map((p) => `${x(p[0]).toFixed(1)},${y(p[1]).toFixed(1)}`).join(" "));
    svg.appendChild(line);
  }
  div.appendChild(svg);
  return div;
}

async function refreshWatches() {
  try {
    const data = await api("/api/watches");
    $("charts").replaceChildren(...data.watches.map(drawChart));
  } catch (e) { /* ignore */ }
}

/* ------------------------------------------------------------------ *
 * Right panel: profiler arc diagram / buffer analyzer (Figure 2 E)
 * ------------------------------------------------------------------ */
let rightTab = "profile";
let bufferSort = "percent";

$("tab-profile").onclick = () => setTab("profile");
$("tab-buffers").onclick = () => setTab("buffers");
$("sort-size").onclick = () => setSort("size");
$("sort-percent").onclick = () => setSort("percent");
$("btn-prof-start").onclick = () => api("/api/profile/start", "POST");
$("btn-prof-stop").onclick = () => api("/api/profile/stop", "POST");

function setTab(tab) {
  rightTab = tab;
  $("tab-profile").classList.toggle("active", tab === "profile");
  $("tab-buffers").classList.toggle("active", tab === "buffers");
  $("profile-view").classList.toggle("hidden", tab !== "profile");
  $("buffers-view").classList.toggle("hidden", tab !== "buffers");
}

function setSort(sort) {
  bufferSort = sort;
  $("sort-size").classList.toggle("active", sort === "size");
  $("sort-percent").classList.toggle("active", sort === "percent");
  refreshRightPanel();
}

function drawArcDiagram(report) {
  const svg = $("arc-diagram");
  const ns = svg.namespaceURI;
  svg.replaceChildren();
  const rows = report.functions;
  if (!rows.length) return;
  const rowH = 26, x0 = 46;
  svg.setAttribute("height", Math.max(480, rows.length * rowH + 20));
  const maxTotal = Math.max(...rows.map((f) => f.total_time), 1e-9);
  const yOf = {};
  rows.forEach((f, i) => {
    const y = 16 + i * rowH;
    yOf[f.name] = y;
    // Two colour-coded squares: self time and total time.
    for (const [j, value] of [[0, f.self_time], [1, f.total_time]]) {
      const rect = document.createElementNS(ns, "rect");
      rect.setAttribute("x", 4 + j * 16);
      rect.setAttribute("y", y - 8);
      rect.setAttribute("width", 12);
      rect.setAttribute("height", 12);
      const heat = Math.min(1, value / maxTotal);
      rect.setAttribute("fill", `rgba(207,34,46,${0.15 + 0.85 * heat})`);
      const title = document.createElementNS(ns, "title");
      title.textContent = `${j ? "total" : "self"}: ${value.toFixed(3)}s`;
      rect.appendChild(title);
      svg.appendChild(rect);
    }
    const text = document.createElementNS(ns, "text");
    text.setAttribute("x", x0);
    text.setAttribute("y", y + 3);
    text.textContent = f.name;
    svg.appendChild(text);
  });
  // Arcs: caller -> callee, thickness = time.
  const maxEdge = Math.max(...report.edges.map((e) => e.time), 1e-9);
  for (const e of report.edges) {
    const y1 = yOf[e.caller], y2 = yOf[e.callee];
    if (y1 === undefined || y2 === undefined) continue;
    const path = document.createElementNS(ns, "path");
    const xr = 40, mid = (y1 + y2) / 2, r = Math.abs(y2 - y1) / 2;
    path.setAttribute(
      "d", `M ${xr} ${y1} A ${r} ${r} 0 0 ${y2 > y1 ? 1 : 0} ${xr} ${y2}`);
    path.setAttribute("stroke-width",
      (0.5 + 3.5 * e.time / maxEdge).toFixed(1));
    svg.appendChild(path);
  }
}

function renderBufferTable(buffers) {
  const tbody = $("buffer-table").querySelector("tbody");
  tbody.replaceChildren(...buffers.map((b) => {
    const tr = document.createElement("tr");
    if (b.percent >= 1) tr.className = "full";
    for (const cell of [b.buffer, b.size, b.capacity]) {
      const td = document.createElement("td");
      td.textContent = cell;
      tr.appendChild(td);
    }
    return tr;
  }));
}

/* Continuous profiler: one row per layer, bar width = share of the
 * attributed seconds in the recent windows.  Silent when the run has
 * no continuous profiler attached (the endpoint 404s). */
const LAYER_COLORS = {
  engine: "#cf222e", hooks: "#fb8f44", metrics: "#bf3989",
  trace: "#8250df", faults: "#a40e26", server: "#0969da",
  profiler: "#1a7f37", monitor: "#9a6700", fleet: "#57606a",
  workload: "#2da44e", idle: "#d0d7de", other: "#8c959f",
};

function renderLayerBars(report) {
  const container = $("layer-attribution");
  const layers = Object.entries(report.layers || {});
  const total = layers.reduce((acc, kv) => acc + kv[1], 0);
  if (!layers.length || total <= 0) {
    container.replaceChildren();
    return;
  }
  container.replaceChildren(...layers.map(([name, seconds]) => {
    const row = document.createElement("div");
    row.className = "layerbar";
    const share = 100 * seconds / total;
    row.innerHTML =
      `<span class="name">${name}</span>` +
      `<span class="track"><span class="fill" style="width:${share.toFixed(1)}%;` +
      `background:${LAYER_COLORS[name] || "#8c959f"}"></span></span>` +
      `<span class="secs">${seconds.toFixed(2)}s</span>`;
    return row;
  }));
}

async function refreshLayerAttribution() {
  try {
    renderLayerBars(await api("/api/profile/attribution?last=5"));
  } catch (e) {
    $("layer-attribution").replaceChildren();
  }
}

async function refreshRightPanel() {
  try {
    if (rightTab === "profile") {
      drawArcDiagram(await api("/api/profile?top=15"));
      refreshLayerAttribution();
    } else {
      const data = await api(`/api/buffers?sort=${bufferSort}&top=30`);
      renderBufferTable(data.buffers);
    }
  } catch (e) { /* ignore */ }
}

/* ------------------------------------------------------------------ *
 * Progress bars (Figure 2 G, task T1)
 * ------------------------------------------------------------------ */
async function refreshProgress() {
  try {
    const data = await api("/api/progress");
    $("progress-bars").replaceChildren(...data.bars.map((b) => {
      const row = document.createElement("div");
      row.className = "pbar";
      const total = Math.max(1, b.total);
      row.innerHTML =
        `<span class="name">${b.name}</span>` +
        `<span class="track">` +
        `<span class="done" style="width:${100 * b.completed / total}%"></span>` +
        `<span class="ongoing" style="width:${100 * b.ongoing / total}%"></span>` +
        `</span>` +
        `<span class="counts">${b.completed} / ${b.ongoing} / ${b.not_started}</span>`;
      return row;
    }));
  } catch (e) { /* ignore */ }
}

/* ------------------------------------------------------------------ *
 * Live updates
 *
 * Overview + resources ride one Server-Sent-Events stream
 * (/api/stream) instead of two polling loops; `names=^$` keeps the
 * per-event metrics payload empty and `attach=0` leaves simulation
 * instrumentation alone — a passively open dashboard must not change
 * what it observes.  If the stream dies (old browser, proxy buffering,
 * server restart) the original polling intervals take over.
 * ------------------------------------------------------------------ */
function startHeaderStream() {
  if (!window.EventSource) { startHeaderPolling(); return; }
  const es = new EventSource("/api/stream?interval=0.5&names=%5E%24&attach=0");
  es.onmessage = (ev) => {
    try {
      const d = JSON.parse(ev.data);
      if (d.overview) renderOverview(d.overview);
      if (d.resources) renderResources(d.resources);
    } catch (e) { /* malformed frame; skip */ }
  };
  es.onerror = () => { es.close(); startHeaderPolling(); };
}

let headerPolling = false;
function startHeaderPolling() {
  if (headerPolling) return;
  headerPolling = true;
  setInterval(refreshOverview, 500);
  setInterval(refreshResources, 1000);
}

loadTree();
refreshOverview();
refreshResources();
refreshHang();
startHeaderStream();
setInterval(refreshHang, 1000);
setInterval(refreshProgress, 750);
setInterval(refreshWatches, 500);
setInterval(refreshRightPanel, 1500);
setInterval(refreshAlerts, 2000);
