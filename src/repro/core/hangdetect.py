"""Hang detection (task **T3**).

Case study 2 identifies a hang by three concurrent signals:

1. the progress bars stop moving,
2. the simulation time stops changing, and
3. CPU usage falls well below 100%.

:class:`HangDetector` encodes that heuristic over periodic snapshots of
(simulation time, event count, CPU%).  A hang verdict also carries the
non-empty-buffer snapshot, which is the debugging entry point the case
study uses ("if there is any content in a buffer, we know the buffer
owner cannot proceed").
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from ..metrics import MetricRegistry
from .bottleneck import BufferAnalyzer, BufferRow


@dataclass
class HangStatus:
    """The detector's verdict."""

    hung: bool
    stalled_wall_seconds: float
    sim_time: float
    run_state: str
    cpu_percent: float
    stuck_buffers: List[BufferRow] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "hung": self.hung,
            "stalled_wall_seconds": round(self.stalled_wall_seconds, 2),
            "sim_time": self.sim_time,
            "run_state": self.run_state,
            "cpu_percent": round(self.cpu_percent, 1),
            "stuck_buffers": [b.to_dict() for b in self.stuck_buffers],
        }


class HangDetector:
    """Stall heuristic over (wall time, sim time) snapshots."""

    def __init__(self, simulation, analyzer: BufferAnalyzer,
                 stall_threshold: float = 2.0,
                 cpu_threshold: float = 50.0,
                 clock: Callable[[], float] = time.monotonic,
                 registry: Optional[MetricRegistry] = None):
        """
        Parameters
        ----------
        simulation:
            The :class:`~repro.akita.simulation.Simulation` under watch.
        analyzer:
            Buffer analyzer used for the stuck-buffer snapshot.
        stall_threshold:
            Wall seconds of frozen simulation time before declaring a
            hang.
        cpu_threshold:
            CPU% below which a stall is corroborated (an engine that is
            busy computing but not advancing time is *slow*, not hung).
        clock:
            Wall-clock source.  Must be monotonic — ``time.monotonic``
            by default, never ``time.time``, whose NTP/DST jumps would
            fake or mask stalls.  Injectable so tests can simulate the
            passage of wall time deterministically.
        """
        self.simulation = simulation
        self.analyzer = analyzer
        self.stall_threshold = stall_threshold
        self.cpu_threshold = cpu_threshold
        self.clock = clock
        # (wall, sim_time) history; a couple hundred points suffice.
        self._history: Deque[Tuple[float, float]] = deque(maxlen=512)
        self._g_stalled = self._g_hung = None
        if registry is not None:
            self._g_stalled = registry.gauge(
                "rtm_hang_stalled_seconds",
                "Wall seconds since simulation time last advanced.")
            self._g_hung = registry.gauge(
                "rtm_hang_hung",
                "1 while the hang heuristic's verdict is hung, else 0.")

    def record(self, cpu_percent: float = 0.0) -> None:
        """Append a snapshot (called by the monitor's sampler thread)."""
        self._history.append((self.clock(),
                              self.simulation.engine.now))
        self._last_cpu = cpu_percent

    def stalled_for(self) -> float:
        """Wall seconds since the simulation time last advanced."""
        if not self._history:
            return 0.0
        newest_wall, newest_sim = self._history[-1]
        stall_start = newest_wall
        for wall, sim in reversed(self._history):
            if sim < newest_sim - 1e-15:
                break
            stall_start = wall
        return self._history[-1][0] - stall_start

    def check(self, cpu_percent: Optional[float] = None) -> HangStatus:
        """Evaluate the heuristic now."""
        self.record(cpu_percent or 0.0)
        state = self.simulation.run_state
        stalled = self.stalled_for()
        cpu = cpu_percent if cpu_percent is not None \
            else getattr(self, "_last_cpu", 0.0)

        if state == "hung":
            # The run loop itself classified it: queue dry, workload
            # incomplete.  Definitive.
            hung = True
        elif state in ("completed", "aborted", "idle"):
            hung = False
        else:
            hung = (stalled >= self.stall_threshold
                    and cpu < self.cpu_threshold)
        stuck = self.analyzer.non_empty() if hung else []
        if self._g_stalled is not None:
            self._g_stalled.set(stalled)
            self._g_hung.set(1.0 if hung else 0.0)
        return HangStatus(hung, stalled, self.simulation.engine.now,
                          state, cpu, stuck)
