"""A Python client of the AkitaRTM HTTP API.

Used by the test suite, the Figure 7 benchmark harness (scenario 4's
"automated clicks at one-second intervals" are issued through this
client), and the simulated user study, whose participant agents interact
with the monitor exactly the way the web frontend does — over HTTP.

GET requests are idempotent, so transient transport failures (socket
timeouts while the simulation thread hogs the GIL, resets mid-response)
are retried with exponential backoff and jitter up to ``max_retries``
times.  POST/DELETE are never retried — a timed-out control request may
still have been applied.

Connection *refused* is different: the kernel answered immediately and
definitively — nothing is listening on that port.  In a fleet, that is
the signature of a dead worker, and burning the full backoff budget on
it would stall every scrape behind the corpse.  Refused connections
therefore fast-fail with :class:`RTMConnectionError` (pass
``retry_refused=True`` to restore the old patient behaviour, e.g. when
racing a server that is still binding its socket).
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Dict, Iterator, List, Optional
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen


class RTMClientError(RuntimeError):
    """An API call failed (HTTP error or server-reported error)."""


class RTMConnectionError(RTMClientError):
    """Nothing is listening at the target address (connection refused).

    Raised without consuming the retry/backoff budget: a refused
    connection is an immediate kernel-level verdict, not a transient
    timeout, so callers probing possibly-dead workers get their answer
    in microseconds instead of after a full backoff cycle.
    """


def _refused(exc: BaseException) -> bool:
    """Is *exc* (or the URLError wrapping it) a connection-refused?"""
    if isinstance(exc, ConnectionRefusedError):
        return True
    reason = getattr(exc, "reason", None)
    return isinstance(reason, ConnectionRefusedError)


class RTMClient:
    """Thin wrapper over the REST endpoints.

    Parameters
    ----------
    url:
        Base URL, e.g. ``"http://127.0.0.1:8080"``.
    timeout:
        Per-request socket timeout in seconds.
    max_retries:
        How many times an idempotent GET is retried after a transient
        transport error (0 disables retries).  HTTP error statuses
        (4xx/5xx) are server verdicts, not transport failures, and are
        never retried.
    backoff:
        Initial retry delay in seconds; doubles per attempt, with up to
        50% uniform jitter added to avoid retry stampedes.
    retry_refused:
        Treat connection-refused like any transient failure (retry with
        backoff) instead of fast-failing with
        :class:`RTMConnectionError`.  Off by default: refused means the
        server is gone, not busy.
    """

    def __init__(self, url: str, timeout: float = 5.0,
                 max_retries: int = 3, backoff: float = 0.05,
                 retry_refused: bool = False):
        self.base = url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.retry_refused = retry_refused
        self.retry_count = 0  # total transient retries, for tests/stats
        self._sleep = time.sleep  # injectable for tests

    # -- transport ---------------------------------------------------------
    def _call(self, method: str, endpoint: str,
              params: Optional[Dict[str, Any]] = None,
              parse_json: bool = True) -> Any:
        url = f"{self.base}{endpoint}"
        if params:
            url += "?" + urlencode(params)
        attempts = 1 + (self.max_retries if method == "GET" else 0)
        for attempt in range(attempts):
            try:
                # Positional-compatible: tests stub _request with the
                # three-argument signature.
                if parse_json:
                    return self._request(method, endpoint, url)
                return self._request(method, endpoint, url,
                                     parse_json=False)
            except RTMClientError:
                raise  # server verdict (HTTP status) — never retry
            except (URLError, TimeoutError, ConnectionError) as exc:
                if _refused(exc) and not self.retry_refused:
                    raise RTMConnectionError(
                        f"{method} {endpoint}: connection refused — "
                        f"nothing listening at {self.base}") from exc
                if attempt == attempts - 1:
                    raise RTMClientError(
                        f"{method} {endpoint}: {exc} "
                        f"(after {attempt + 1} attempts)") from exc
                self.retry_count += 1
                delay = self.backoff * (2 ** attempt)
                self._sleep(delay * (1.0 + random.uniform(0.0, 0.5)))

    def _request(self, method: str, endpoint: str, url: str,
                 parse_json: bool = True) -> Any:
        request = Request(url, method=method)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                body = response.read().decode()
                return json.loads(body) if parse_json else body
        except HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode()).get("error", "")
            except Exception:
                detail = ""
            raise RTMClientError(
                f"{method} {endpoint} -> {exc.code}: {detail}") from exc

    def _get(self, endpoint: str, **params) -> Any:
        return self._call("GET", endpoint, params or None)

    def _post(self, endpoint: str, **params) -> Any:
        return self._call("POST", endpoint, params or None)

    # -- monitoring views ---------------------------------------------------
    def overview(self) -> Dict[str, Any]:
        return self._get("/api/overview")

    def resources(self) -> Dict[str, Any]:
        return self._get("/api/resources")

    def components(self) -> List[str]:
        return self._get("/api/components")["names"]

    def component_tree(self) -> Dict[str, Any]:
        return self._get("/api/components")["tree"]

    def component(self, name: str) -> Dict[str, Any]:
        return self._get("/api/component", name=name)

    def value(self, component: str, path: str) -> Optional[float]:
        return self._get("/api/value", component=component,
                         path=path)["value"]

    def buffers(self, sort: str = "percent",
                top: int = 50) -> List[Dict[str, Any]]:
        return self._get("/api/buffers", sort=sort, top=top)["buffers"]

    def progress(self) -> List[Dict[str, Any]]:
        return self._get("/api/progress")["bars"]

    def hang(self) -> Dict[str, Any]:
        return self._get("/api/hang")

    def profile(self, top: int = 15) -> Dict[str, Any]:
        return self._get("/api/profile", top=top)

    def watches(self) -> List[Dict[str, Any]]:
        return self._get("/api/watches")["watches"]

    def topology(self) -> Dict[str, Any]:
        return self._get("/api/topology")

    def throughput(self, component: str) -> List[Dict[str, Any]]:
        return self._get("/api/throughput", component=component)["ports"]

    def alerts(self) -> List[Dict[str, Any]]:
        return self._get("/api/alerts")["alerts"]

    def add_alert(self, component: str, path: str, op: str,
                  threshold: float, duration: float = 0.0,
                  action: str = "notify") -> int:
        return self._post("/api/alert", component=component, path=path,
                          op=op, threshold=threshold, duration=duration,
                          action=action)["id"]

    def remove_alert(self, rule_id: int) -> bool:
        return self._call("DELETE", "/api/alert",
                          {"id": rule_id})["removed"]

    # -- fault injection & supervision --------------------------------------
    def faults(self) -> Dict[str, Any]:
        return self._get("/api/faults")

    def inject_fault(self, kind: str, target: str,
                     **params) -> Dict[str, Any]:
        """Arm a fault (kind: drop/delay/stall/pin_buffer/kill_port);
        extra keywords (start, end, probability, delay, seed) pass
        through to the spec."""
        return self._post("/api/faults", kind=kind, target=target,
                          **params)

    def revoke_fault(self, spec_id: int) -> bool:
        return self._call("DELETE", "/api/faults",
                          {"id": spec_id})["removed"]

    def watchdog(self) -> Dict[str, Any]:
        return self._get("/api/watchdog")

    def watchdog_start(self, **config) -> Dict[str, Any]:
        return self._post("/api/watchdog", action="start", **config)

    def watchdog_stop(self) -> Dict[str, Any]:
        return self._post("/api/watchdog", action="stop")

    def checkpoint(self) -> Dict[str, Any]:
        """Checkpointer status (cadence, count, last snapshot meta)."""
        return self._get("/api/checkpoint")

    def checkpoint_save(self) -> Dict[str, Any]:
        """Force one snapshot now (pauses the engine at an event
        boundary first).  POST — never retried."""
        return self._post("/api/checkpoint", action="save")

    # -- tracing -------------------------------------------------------------
    def trace(self) -> Dict[str, Any]:
        """Tracer status + store stats (GET; retried like any view)."""
        return self._get("/api/trace")

    def trace_start(self, **config) -> Dict[str, Any]:
        """Attach and start the tracer (backend/capacity/db/include
        keywords pass through).  POST — never retried."""
        return self._post("/api/trace", action="start", **config)

    def trace_stop(self) -> Dict[str, Any]:
        return self._post("/api/trace", action="stop")

    def trace_clear(self) -> Dict[str, Any]:
        return self._post("/api/trace", action="clear")

    def trace_query(self, **filters) -> List[Dict[str, Any]]:
        """Filtered events (component regex, kind, t0/t1, msg_id,
        limit)."""
        return self._get("/api/trace/query", **filters)["events"]

    def trace_follow(self, msg_id: int) -> Dict[str, Any]:
        """One message's recorded hops plus the rendered path."""
        return self._get("/api/trace/follow", msg_id=msg_id)

    def trace_export(self, format: str = "jsonl",
                     path: Optional[str] = None, limit: int = 0) -> Any:
        """Export the store: the document itself, or — with *path* — a
        server-side file write confirmation."""
        params: Dict[str, Any] = {"format": format, "limit": limit}
        if path is not None:
            params["path"] = path
        return self._get("/api/trace/export", **params)

    # -- metrics -------------------------------------------------------------
    def metrics_snapshot(self, delta: bool = False,
                         names: Optional[str] = None) -> Dict[str, Any]:
        """The registry as JSON (GET — retried like any view).  With
        ``delta=True`` counters/histograms are differences since the
        previous delta request."""
        params: Dict[str, Any] = {}
        if delta:
            params["delta"] = 1
        if names is not None:
            params["names"] = names
        return self._get("/api/metrics", **params)["metrics"]

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition of ``/metrics``."""
        return self._call("GET", "/metrics", parse_json=False)

    def metrics_start(self, **config) -> Dict[str, Any]:
        """Attach simulation instrumentation.  POST — never retried."""
        return self._post("/api/metrics", action="start", **config)

    def metrics_stop(self) -> Dict[str, Any]:
        return self._post("/api/metrics", action="stop")

    def metrics_stream(self, interval: float = 0.5,
                       max_events: Optional[int] = None,
                       names: Optional[str] = None,
                       attach: bool = True
                       ) -> Iterator[Dict[str, Any]]:
        """Iterate Server-Sent Events from ``/api/stream``.

        Establishing the connection follows the GET retry rules
        (idempotent, transient transport errors backed off); once the
        stream is open a broken connection simply ends the iterator —
        re-calling resumes with fresh snapshots.  Pass ``attach=False``
        to observe overview/resources without attaching simulation
        instrumentation (the metrics dict then only carries server-side
        families).
        """
        params: Dict[str, Any] = {"interval": interval}
        if max_events is not None:
            params["count"] = max_events
        if names is not None:
            params["names"] = names
        if not attach:
            params["attach"] = "0"
        url = f"{self.base}/api/stream?" + urlencode(params)
        attempts = 1 + self.max_retries
        response = None
        for attempt in range(attempts):
            try:
                response = urlopen(Request(url, method="GET"),
                                   timeout=self.timeout)
                break
            except HTTPError as exc:
                raise RTMClientError(
                    f"GET /api/stream -> {exc.code}") from exc
            except (URLError, TimeoutError, ConnectionError) as exc:
                if _refused(exc) and not self.retry_refused:
                    raise RTMConnectionError(
                        f"GET /api/stream: connection refused — "
                        f"nothing listening at {self.base}") from exc
                if attempt == attempts - 1:
                    raise RTMClientError(
                        f"GET /api/stream: {exc} "
                        f"(after {attempt + 1} attempts)") from exc
                self.retry_count += 1
                delay = self.backoff * (2 ** attempt)
                self._sleep(delay * (1.0 + random.uniform(0.0, 0.5)))
        return self._iter_sse(response)

    @staticmethod
    def _iter_sse(response) -> Iterator[Dict[str, Any]]:
        data_lines: List[str] = []
        try:
            with response:
                for raw in response:
                    line = raw.decode().rstrip("\r\n")
                    if line.startswith("data:"):
                        data_lines.append(line[5:].lstrip())
                    elif not line and data_lines:
                        yield json.loads("\n".join(data_lines))
                        data_lines = []
        except (URLError, TimeoutError, ConnectionError, OSError):
            return  # stream ended; caller may reconnect

    # -- fleet (gateway endpoints) -------------------------------------------
    def fleet_status(self) -> Dict[str, Any]:
        """The aggregating gateway's fleet view: workers, jobs, queue
        counters.  Only meaningful against a
        :class:`repro.fleet.FleetGateway` URL."""
        return self._get("/api/fleet")

    def fleet_workers(self) -> List[Dict[str, Any]]:
        return self.fleet_status()["workers"]

    def fleet_jobs(self) -> List[Dict[str, Any]]:
        return self.fleet_status()["jobs"]

    def fleet_worker_get(self, worker_id: str, endpoint: str,
                         **params) -> Any:
        """Call one worker's own API through the gateway's reverse
        proxy, e.g. ``fleet_worker_get("w1", "/api/overview")``."""
        return self._get(f"/api/fleet/{worker_id}{endpoint}", **params)

    def fleet_profile(self, format: str = "summary") -> Dict[str, Any]:
        """The campaign-wide merged profile (``format='speedscope'``
        for a loadable speedscope document instead)."""
        return self._get("/api/fleet/profile", format=format)

    def fleet_job_metrics(self, job_id: str) -> str:
        """One job's final Prometheus exposition (``worker``/``job``
        labelled), served from the gateway's control-channel cache —
        available long after the worker that ran the job moved on to
        another job or exited.  Raises :class:`RTMClientError` (404)
        while the job has not shipped a final exposition yet."""
        return self._call("GET", f"/api/fleet/jobs/{job_id}/metrics",
                          parse_json=False)

    # -- historian (gateway endpoints) ---------------------------------------
    def historian_status(self) -> Dict[str, Any]:
        """The recording service's view: campaign id, record counts,
        rules, store health.  Only meaningful against a gateway whose
        campaign runs with ``--historian``."""
        return self._get("/api/historian")

    def historian_campaigns(self) -> List[Dict[str, Any]]:
        return self._get("/api/historian/campaigns")["campaigns"]

    def historian_query(self, campaign: Optional[str] = None,
                        kind: Optional[str] = None,
                        name: Optional[str] = None,
                        since: Optional[float] = None,
                        until: Optional[float] = None,
                        limit: int = 1000) -> List[Dict[str, Any]]:
        """Filtered historian records (CRC-verified server side)."""
        params: Dict[str, Any] = {"limit": limit}
        for key, value in (("campaign", campaign), ("kind", kind),
                           ("name", name), ("since", since),
                           ("until", until)):
            if value is not None:
                params[key] = value
        return self._get("/api/historian/query", **params)["records"]

    def historian_compare(self, a: str, b: str) -> Dict[str, Any]:
        """Diff two campaigns: every job of both, per-family deltas."""
        return self._get("/api/historian/compare", a=a, b=b)

    def historian_alerts(self) -> Dict[str, Any]:
        """The rule engine's rules and transition log."""
        return self._get("/api/historian/alerts")

    def historian_add_rule(self, family: str, op: str = ">=",
                           threshold: float = 0.0,
                           kind: str = "threshold",
                           labels: Optional[Dict[str, str]] = None,
                           for_seconds: float = 0.0,
                           name: str = "") -> Dict[str, Any]:
        """Install a metric alert rule.  POST — never retried."""
        params: Dict[str, Any] = {"family": family, "op": op,
                                  "threshold": threshold, "kind": kind}
        if labels:
            params["labels"] = ",".join(f"{k}={v}"
                                        for k, v in labels.items())
        if for_seconds:
            params["for"] = for_seconds
        if name:
            params["name"] = name
        return self._post("/api/historian/rules", **params)["rule"]

    def historian_remove_rule(self, rule_id: int) -> bool:
        return self._call("DELETE", "/api/historian/rules",
                          {"id": rule_id})["removed"]

    def historian_stream(self, interval: float = 0.25,
                         max_events: Optional[int] = None,
                         since: Optional[int] = None
                         ) -> Iterator[Dict[str, Any]]:
        """Iterate alert-transition SSE events from
        ``/api/historian/stream``.  With *max_events* the server closes
        the stream after that many transitions; *since* replays from a
        sequence cursor (default: only new transitions)."""
        params: Dict[str, Any] = {"interval": interval}
        if max_events is not None:
            params["count"] = max_events
        if since is not None:
            params["since"] = since
        url = (f"{self.base}/api/historian/stream?"
               + urlencode(params))
        try:
            response = urlopen(Request(url, method="GET"),
                               timeout=self.timeout)
        except HTTPError as exc:
            raise RTMClientError(
                f"GET /api/historian/stream -> {exc.code}") from exc
        except (URLError, TimeoutError, ConnectionError) as exc:
            if _refused(exc) and not self.retry_refused:
                raise RTMConnectionError(
                    f"GET /api/historian/stream: connection refused — "
                    f"nothing listening at {self.base}") from exc
            raise RTMClientError(
                f"GET /api/historian/stream: {exc}") from exc
        return self._iter_sse(response)

    # -- controls -----------------------------------------------------------
    def pause(self) -> None:
        self._post("/api/pause")

    def continue_(self) -> None:
        self._post("/api/continue")

    def kickstart(self) -> None:
        self._post("/api/kickstart")

    def throttle(self, events_per_second: float) -> None:
        self._post("/api/throttle", events_per_second=events_per_second)

    def tick(self, component: str) -> None:
        self._post("/api/tick", component=component)

    def profile_start(self) -> None:
        self._post("/api/profile/start")

    def profile_stop(self) -> None:
        self._post("/api/profile/stop")

    # -- continuous profiling / overhead attribution -----------------------
    def profile_windows(self, last: int = 0) -> Dict[str, Any]:
        """Rolling-profiler status + the most recent window digests."""
        return self._get("/api/profile/windows", last=last)

    def profile_attribution(self, last: int = 0,
                            top: int = 20) -> Dict[str, Any]:
        """Overhead decomposed by named layer over recent windows."""
        return self._get("/api/profile/attribution", last=last, top=top)

    def profile_export(self, format: str = "speedscope",
                       last: int = 0) -> Any:
        """A collapsed-stack text or speedscope/summary JSON export."""
        params: Dict[str, Any] = {"format": format, "last": last}
        if format == "collapsed":
            return self._call("GET", "/api/profile/export", params,
                              parse_json=False)
        return self._call("GET", "/api/profile/export", params)

    def profile_continuous_start(self, **config) -> Dict[str, Any]:
        """Start (creating if needed) the continuous profiler;
        ``interval``/``window_seconds``/``ring``/``backoff_after``/
        ``max_interval`` are forwarded as query parameters."""
        return self._post("/api/profile/continuous", action="start",
                          **config)

    def profile_continuous_stop(self) -> Dict[str, Any]:
        return self._post("/api/profile/continuous", action="stop")

    def watch(self, component: str, path: str) -> int:
        return self._post("/api/watch", component=component,
                          path=path)["id"]

    def unwatch(self, watch_id: int) -> bool:
        return self._call("DELETE", "/api/watch",
                          {"id": watch_id})["removed"]

    # -- conveniences ----------------------------------------------------------
    def sample_value(self, component: str, path: str, duration: float,
                     interval: float = 0.05) -> List[tuple]:
        """Poll one value for *duration* wall seconds — the frontend's
        time-chart behaviour, and how Figure 5's series were captured."""
        points = []
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            data = self._get("/api/value", component=component, path=path)
            points.append((data["time"], data["value"]))
            time.sleep(interval)
        return points
