"""Simulator self-profiling (task **T4**, paper Figure 2 E).

The Go original shells into ``pprof``; the equivalent here is a sampling
profiler over ``sys._current_frames()``: a daemon thread samples the
simulation thread's Python stack at a configurable interval and
aggregates

* **self time** — samples in which the function was the leaf frame,
* **total time** — samples in which it appeared anywhere on the stack,
* **call edges** — caller→callee pairs weighted by samples,

which is exactly the data the paper's vertical arc diagram renders (two
color-coded squares per function + arrows whose thickness is time).
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def _frame_key(frame) -> str:
    code = frame.f_code
    filename = code.co_filename.rsplit("/", 1)[-1]
    return f"{code.co_name} ({filename}:{code.co_firstlineno})"


@dataclass
class FunctionStats:
    """Aggregated samples for one function."""

    name: str
    self_time: float = 0.0
    total_time: float = 0.0

    def to_dict(self) -> dict:
        return {"name": self.name,
                "self_time": round(self.self_time, 4),
                "total_time": round(self.total_time, 4)}


@dataclass
class ProfileReport:
    """One profiling window's result."""

    duration: float
    samples: int
    functions: List[FunctionStats] = field(default_factory=list)
    #: (caller name, callee name, seconds)
    edges: List[Tuple[str, str, float]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "duration": round(self.duration, 3),
            "samples": self.samples,
            "functions": [f.to_dict() for f in self.functions],
            "edges": [{"caller": c, "callee": e, "time": round(w, 4)}
                      for c, e, w in self.edges],
        }


class SamplingProfiler:
    """Interval-sampling profiler of one target thread.

    ``target_thread_id`` may be an int ident, or a **callable**
    returning one: the simulation thread is whichever thread ends up
    calling ``Engine.run`` and is therefore unknown when the monitor
    (and this profiler) is constructed.  Passing e.g.
    :func:`repro.profile.threads.sim_thread_id` late-binds the pin —
    each sample resolves the target afresh, so the profiler follows
    the registration.  When the target resolves to None, every thread
    is sampled (the historical behavior)."""

    def __init__(self, interval: float = 0.005,
                 target_thread_id=None):
        self.interval = interval
        self.target_thread_id = target_thread_id
        self._functions: Dict[str, FunctionStats] = {}
        self._edges: Dict[Tuple[str, str], float] = {}
        self._samples = 0
        self._started_at = 0.0
        self._stopped_at: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Begin sampling.  Idempotent."""
        if self.running:
            return
        self._stop.clear()
        self._started_at = time.monotonic()
        self._stopped_at = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="rtm-profiler")
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling.  Idempotent; the report stays available."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._stopped_at is None:
            self._stopped_at = time.monotonic()

    def _resolve_target(self) -> Optional[int]:
        target = self.target_thread_id
        if callable(target):
            return target()
        return target

    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.interval):
            target = self._resolve_target()
            frames = sys._current_frames()
            for thread_id, frame in frames.items():
                if thread_id == me:
                    continue
                if target is not None and thread_id != target:
                    continue
                self._record(frame)
            self._samples += 1

    def _record(self, leaf_frame) -> None:
        stack: List[str] = []
        frame = leaf_frame
        while frame is not None:
            stack.append(_frame_key(frame))
            frame = frame.f_back
        # Drop the thread-bootstrap plumbing at the stack base: pprof
        # likewise reports user frames, not runtime scaffolding.
        while stack and "threading.py" in stack[-1]:
            stack.pop()
        if not stack:
            return
        with self._lock:
            dt = self.interval
            leaf = stack[0]
            self._stats(leaf).self_time += dt
            for name in set(stack):
                self._stats(name).total_time += dt
            for callee, caller in zip(stack, stack[1:]):
                key = (caller, callee)
                self._edges[key] = self._edges.get(key, 0.0) + dt

    def _stats(self, name: str) -> FunctionStats:
        stats = self._functions.get(name)
        if stats is None:
            stats = FunctionStats(name)
            self._functions[name] = stats
        return stats

    # ------------------------------------------------------------------
    def report(self, top: int = 15) -> ProfileReport:
        """The top-*top* functions, plus the call edges connecting them
        (the arc-diagram payload).

        Ranking is by self time first (pprof's "flat" ordering — the
        most frequent performance-debugging subtask is finding where
        time is actually spent), with total time as the tiebreaker.
        """
        end = self._stopped_at if self._stopped_at is not None \
            else time.monotonic()
        duration = max(0.0, end - self._started_at) \
            if self._started_at else 0.0
        with self._lock:
            ranked = sorted(self._functions.values(),
                            key=lambda f: (f.self_time, f.total_time),
                            reverse=True)[:top]
            names = {f.name for f in ranked}
            edges = sorted(
                ((c, e, w) for (c, e), w in self._edges.items()
                 if c in names and e in names),
                key=lambda item: item[2], reverse=True)
        return ProfileReport(duration, self._samples, ranked, edges)

    def reset(self) -> None:
        with self._lock:
            self._functions.clear()
            self._edges.clear()
            self._samples = 0
