"""Reflection over simulation components.

The paper's ``RegisterComponent`` "uses reflection to discover buffers
(for the bottleneck analysis) and fields (for simulation monitoring) of
these components.  Reflection eliminates the need to modify existing
code and for users to manually select fields to monitor."

This module is that reflection layer, in Python: given any object it

* serializes its public fields into JSON-safe structures (name, type,
  value — container fields report sizes plus a bounded preview),
* discovers every reachable :class:`~repro.akita.buffer.Buffer`
  (the analyzer's input), and
* resolves dotted value paths (``"mshr.size"``) for time-series
  monitoring, reducing containers to their length as the paper's value
  plots do.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..akita.buffer import Buffer
from ..akita.engine import Engine
from ..akita.port import Port

#: Recursion limit when serializing nested objects.
MAX_DEPTH = 3
#: Max elements shown when previewing containers.
MAX_PREVIEW = 8
#: Attribute-walk limit when hunting for buffers.
MAX_BUFFER_DEPTH = 4

_SCALAR_TYPES = (int, float, bool, str, type(None))


def _public_attrs(obj: Any) -> Iterator[Tuple[str, Any]]:
    """Instance attributes + class properties, skipping private names."""
    attrs = {}
    if hasattr(obj, "__dict__"):
        attrs.update(vars(obj))
    elif hasattr(obj, "__slots__"):
        for slot in obj.__slots__:
            if hasattr(obj, slot):
                attrs[slot] = getattr(obj, slot)
    for klass in type(obj).__mro__:
        for name, member in vars(klass).items():
            if isinstance(member, property) and name not in attrs:
                try:
                    attrs[name] = getattr(obj, name)
                except Exception:  # property may need unavailable state
                    continue
    for name in sorted(attrs):
        if name.startswith("_"):
            continue
        # The engine back-reference is framework plumbing, not component
        # state; showing it would drown the panel in engine internals.
        if isinstance(attrs[name], Engine):
            continue
        yield name, attrs[name]


def serialize_value(value: Any, depth: int = 0) -> Any:
    """JSON-safe rendering of one value."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Buffer):
        return {"__kind__": "buffer", "name": value.name,
                "size": value.size, "capacity": value.capacity,
                "fullness": round(value.fullness, 4)}
    if isinstance(value, Port):
        return {"__kind__": "port", "name": value.name,
                "buffer": serialize_value(value.buf, depth + 1),
                "sent": value.num_sent, "delivered": value.num_delivered}
    if isinstance(value, dict):
        preview = {}
        for i, (k, v) in enumerate(value.items()):
            if i >= MAX_PREVIEW:
                break
            preview[str(k)] = serialize_value(v, depth + 1) \
                if depth < MAX_DEPTH else type(v).__name__
        return {"__kind__": "dict", "size": len(value),
                "preview": preview}
    if isinstance(value, (list, tuple, set, frozenset)) or (
            hasattr(value, "__len__") and hasattr(value, "__iter__")
            and not hasattr(value, "items")):
        try:
            size = len(value)
        except TypeError:
            return type(value).__name__
        preview = []
        for i, item in enumerate(value):
            if i >= MAX_PREVIEW:
                break
            preview.append(serialize_value(item, depth + 1)
                           if depth < MAX_DEPTH else type(item).__name__)
        return {"__kind__": "list", "size": size, "preview": preview}
    if callable(value):
        return f"<callable {getattr(value, '__name__', '?')}>"
    if depth >= MAX_DEPTH:
        return type(value).__name__
    return {"__kind__": "object", "type": type(value).__name__,
            "fields": {name: serialize_value(v, depth + 1)
                       for name, v in _public_attrs(value)}}


def serialize_component(component: Any) -> Dict[str, Any]:
    """Serialize one component for the monitoring panel (paper Fig. 2 D).

    The monitor serializes exactly one component per request (the fine
    granularity §VII credits for the low overhead).
    """
    fields = {}
    for name, value in _public_attrs(component):
        fields[name] = serialize_value(value, depth=1)
    return {
        "name": getattr(component, "name", type(component).__name__),
        "type": type(component).__name__,
        "fields": fields,
    }


def discover_buffers(component: Any) -> List[Buffer]:
    """Find every Buffer reachable from *component* (ports + internals)."""
    found: List[Buffer] = []
    seen: set = set()

    def walk(obj: Any, depth: int) -> None:
        oid = id(obj)
        if oid in seen or depth > MAX_BUFFER_DEPTH:
            return
        seen.add(oid)
        if isinstance(obj, Buffer):
            found.append(obj)
            return
        if isinstance(obj, _SCALAR_TYPES):
            return
        if isinstance(obj, Port):
            walk(obj.buf, depth + 1)
            return
        if isinstance(obj, dict):
            for v in obj.values():
                walk(v, depth + 1)
            return
        if isinstance(obj, (list, tuple, set, frozenset)):
            for v in obj:
                walk(v, depth + 1)
            return
        if hasattr(obj, "__dict__"):
            for name, v in vars(obj).items():
                if name == "component":  # don't climb back to owners
                    continue
                walk(v, depth + 1)

    walk(component, 0)
    # Deduplicate, preserving discovery order.
    unique, ids = [], set()
    for buf in found:
        if id(buf) not in ids:
            ids.add(id(buf))
            unique.append(buf)
    return unique


def resolve_path(component: Any, path: str) -> Any:
    """Follow a dotted attribute path from *component*.

    Supports ``a.b.c`` attribute hops and ``name[3]`` indexing into
    sequences.  Raises AttributeError/KeyError/IndexError on bad paths.
    """
    obj = component
    for segment in path.split("."):
        if "[" in segment:
            base, rest = segment.split("[", 1)
            if base:
                obj = getattr(obj, base)
            for index in rest.rstrip("]").split("]["):
                obj = obj[int(index)]
        else:
            obj = getattr(obj, segment)
    return obj


def numeric_value(value: Any) -> Optional[float]:
    """Reduce a monitored value to the number the time chart plots.

    Numbers plot as themselves; containers (and buffers) plot as their
    size, as described in §IV-C ("the plot shows the container sizes").
    Non-numeric leaves return None.
    """
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Buffer):
        return float(value.size)
    if isinstance(value, (str, bytes)):
        return None  # text length is not a meaningful hardware metric
    try:
        return float(len(value))
    except TypeError:
        return None


def watchable_paths(component: Any) -> List[str]:
    """Paths on *component* whose values can be plotted over time."""
    paths = []
    for name, value in _public_attrs(component):
        if numeric_value(value) is not None:
            paths.append(name)
        elif isinstance(value, Port):
            paths.append(f"{name}.buf")
        elif hasattr(value, "__dict__"):
            for sub, subval in _public_attrs(value):
                if numeric_value(subval) is not None:
                    paths.append(f"{name}.{sub}")
    return paths
