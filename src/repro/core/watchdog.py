"""The simulation watchdog: supervision on top of hang detection.

The paper keeps a human in the loop — the dashboard shows the hang, the
user clicks *Tick* and *Kick Start*, reads the buffer table, and decides
what to do.  :class:`Watchdog` automates that session so an unattended
run (CI, a batch farm) degrades gracefully instead of silently wedging:

1. **Confirm** — poll the :class:`~repro.core.hangdetect.HangDetector`
   until it returns a hang verdict.
2. **Snapshot** — persist the diagnostic state a human would have
   looked at (non-empty buffers, progress bars, profiler top-K,
   overview) to a JSON file.
3. **Recover** — automate the paper's *Tick* button: wake the suspect
   components (owners of the stuck buffers) and kick-start the run
   loop, a bounded number of times.
4. **Abort** — if the hang survives every retry, terminate the
   simulation cleanly and leave a structured post-mortem report naming
   the stalled buffers, instead of hanging forever.

The watchdog runs on its own daemon thread and talks to the simulation
only through the monitor's thread-safe surface.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from .atomicio import atomic_write_json


@dataclass
class WatchdogConfig:
    """Tunables for one :class:`Watchdog`."""

    #: Seconds between hang checks while everything is healthy.
    check_interval: float = 0.25
    #: Automated *Tick* retries before giving up on recovery.
    max_tick_retries: int = 3
    #: Wall seconds to wait after each retry for progress to resume.
    retry_wait: float = 0.5
    #: Where diagnostic snapshots / post-mortems are written
    #: (``None`` = keep them in memory only).
    snapshot_dir: Optional[str] = None
    #: Attempt tick-based recovery before aborting.
    recover: bool = True
    #: Abort the simulation when recovery fails (or is disabled).
    abort_on_failure: bool = True
    #: How many suspect components to wake per retry.
    max_suspects: int = 8
    #: Trailing trace events attached to snapshots and post-mortems
    #: when the monitor has a tracer (0 disables).
    trace_window: int = 64

    def to_dict(self) -> Dict[str, Any]:
        return {
            "check_interval": self.check_interval,
            "max_tick_retries": self.max_tick_retries,
            "retry_wait": self.retry_wait,
            "snapshot_dir": self.snapshot_dir,
            "recover": self.recover,
            "abort_on_failure": self.abort_on_failure,
            "max_suspects": self.max_suspects,
            "trace_window": self.trace_window,
        }


class Watchdog:
    """Supervises one monitored simulation (see module docstring)."""

    #: Lifecycle states, in the order they normally occur.
    STATES = ("idle", "watching", "recovering", "recovered", "aborted",
              "failed", "stopped")

    def __init__(self, monitor, config: Optional[WatchdogConfig] = None):
        self.monitor = monitor
        self.config = config or WatchdogConfig()
        self.state = "idle"
        self.report: Optional[Dict[str, Any]] = None
        self.hang_count = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start supervising (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self.state = "watching"
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="rtm-watchdog")
        self._thread.start()

    def stop(self) -> None:
        """Stop supervising.  Does not touch the simulation."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.state == "watching":
            self.state = "stopped"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "running": self.running,
            "hang_count": self.hang_count,
            "config": self.config.to_dict(),
            "report": self.report,
        }

    # ------------------------------------------------------------------
    # The supervision loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.config.check_interval):
            try:
                status = self.monitor.hang_status()
            except RuntimeError:
                continue  # no simulation registered yet
            if not status.hung:
                continue
            self.hang_count += 1
            self._handle_hang(status)
            if self.state in ("aborted", "failed"):
                return  # nothing left to supervise

    def _handle_hang(self, status) -> None:
        detected_wall = time.monotonic()
        snapshot = self._diagnostic_snapshot(status)
        snapshot_path = self._persist(snapshot, "watchdog_snapshot")

        attempts = 0
        recovered = False
        if self.config.recover:
            self.state = "recovering"
            recovered, attempts = self._try_recover(status)

        verdict = "recovered" if recovered else (
            "aborted" if self.config.abort_on_failure else "failed")
        self.report = {
            "verdict": verdict,
            "sim_time": status.sim_time,
            "stalled_wall_seconds": status.stalled_wall_seconds,
            "stuck_buffers": [b.to_dict() for b in status.stuck_buffers],
            "suspects": self._suspects(status),
            "recovery_attempts": attempts,
            "recovery_wall_seconds": round(
                time.monotonic() - detected_wall, 3),
            "snapshot_path": snapshot_path,
            "trace_window": self._trace_tail(),
        }
        if recovered:
            self.state = "recovered"
            self.report["postmortem_path"] = self._persist(
                self.report, "watchdog_recovery")
            return
        # Escalation between recovery and abort: if a checkpointer is
        # attached, persist one final snapshot of the hung state.  A
        # hung engine is quiescent, so the snapshot is consistent, and
        # restoring it revives the comatose components (the loader's
        # dry-queue kick) — the retry that follows this abort resumes
        # from here instead of repaying the whole run.
        self.report["resume_checkpoint"] = self._final_checkpoint()
        self.report["postmortem_path"] = self._persist(
            self.report, "watchdog_postmortem")
        if self.config.abort_on_failure:
            self.state = "aborted"
            simulation = getattr(self.monitor, "_simulation", None)
            if simulation is not None:
                simulation.abort()
        else:
            self.state = "failed"

    # -- recovery -------------------------------------------------------
    def _try_recover(self, status) -> tuple:
        """Automated *Tick* + *Kick Start* with bounded retries.

        Returns ``(recovered, attempts_used)``.
        """
        suspects = self._suspects(status)
        attempts = 0
        for attempt in range(self.config.max_tick_retries):
            if self._stop.is_set():
                break
            attempts = attempt + 1
            for name in suspects:
                self.monitor.tick_component(name)
            self.monitor.kick_start()
            if self._stop.wait(self.config.retry_wait):
                break
            try:
                status = self.monitor.hang_status()
            except RuntimeError:
                break
            if not status.hung:
                return True, attempts
        return False, attempts

    def _suspects(self, status) -> List[str]:
        """Components owning the stuck buffers, most loaded first.

        A buffer ``GPU[0].L2[1].TopPort.Buf`` belongs to the registered
        component whose name is its longest prefix (``GPU[0].L2[1]``).
        """
        names = self.monitor.component_names()
        ranked: List[str] = []
        for row in status.stuck_buffers:
            owner = ""
            for name in names:
                if row.name.startswith(name + ".") and \
                        len(name) > len(owner):
                    owner = name
            if owner and owner not in ranked:
                ranked.append(owner)
            if len(ranked) >= self.config.max_suspects:
                break
        return ranked

    def _final_checkpoint(self) -> Optional[str]:
        """One last restorable snapshot of the hung simulation; path on
        success, ``None`` when no checkpointer is attached or the save
        was skipped (unpicklable transients — counted by the
        checkpointer, never fatal here)."""
        checkpointer = getattr(self.monitor, "checkpointer", None)
        if checkpointer is None:
            return None
        try:
            if checkpointer.save_paused():
                return checkpointer.path
        except Exception:
            pass  # diagnostics must never take the run down
        return None

    # -- diagnostics ----------------------------------------------------
    def _diagnostic_snapshot(self, status) -> Dict[str, Any]:
        """Everything a human would have read off the dashboard."""
        monitor = self.monitor
        snapshot: Dict[str, Any] = {
            "hang": status.to_dict(),
            "overview": monitor.overview(),
            "progress": [bar.to_dict() for bar in monitor.progress_bars()],
        }
        profiler = getattr(monitor, "profiler", None)
        if profiler is not None:
            profile = profiler.report(10)
            if profile.samples:
                snapshot["profiler_top"] = [
                    f.to_dict() for f in profile.functions]
        injector = getattr(monitor, "injector", None)
        if injector is not None:
            snapshot["faults"] = injector.to_dict()
        trace_tail = self._trace_tail()
        if trace_tail:
            snapshot["trace_window"] = trace_tail
        return snapshot

    def _trace_tail(self) -> List[Dict[str, Any]]:
        """The last ``trace_window`` events before the hang — what was
        moving (and what stopped moving) right at the end."""
        tracer = getattr(self.monitor, "tracer", None)
        if tracer is None or self.config.trace_window <= 0:
            return []
        try:
            events = tracer.store.tail(self.config.trace_window)
        except Exception:
            return []  # diagnostics must never take the run down
        return [ev.to_dict() for ev in events]

    def _persist(self, payload: Dict[str, Any],
                 stem: str) -> Optional[str]:
        if self.config.snapshot_dir is None:
            return None
        directory = Path(self.config.snapshot_dir)
        try:
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{stem}_{self.hang_count}.json"
            # Atomic: a crash (or a kill -9 racing the watchdog) must
            # never leave a torn post-mortem — it is the one file an
            # operator reads after the crash.
            atomic_write_json(path, payload)
            return str(path)
        except OSError:
            return None  # diagnostics must never take the run down
