"""Alert rules: the "fail early, fail fast" automation.

The paper's motivation is terminating problematic simulations early;
its tool keeps the human in the loop.  Alert rules are the natural
automation step the discussion points toward: the user encodes the
condition they would have watched for ("this buffer pinned at capacity
for a second", "simulation hung") and the monitor watches it for them —
raising a flag on the dashboard, or aborting the run outright to free
the machine.

A rule fires when its *condition* holds continuously for *duration*
wall seconds.  Conditions are evaluated by the monitor's sampler thread
against the same resolved values the time charts plot.
"""

from __future__ import annotations

import itertools
import operator
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .inspector import numeric_value, resolve_path

_rule_ids = itertools.count(1)

#: Comparison operators accepted over the HTTP API.
OPERATORS: Dict[str, Callable[[float, float], bool]] = {
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
    "==": operator.eq,
}

#: What a fired rule does.
ACTIONS = ("notify", "abort")


@dataclass
class AlertRule:
    """One watched condition."""

    component: Any
    path: str
    op: str
    threshold: float
    duration: float = 0.0
    action: str = "notify"
    label: str = ""
    id: int = field(default_factory=lambda: next(_rule_ids))

    # runtime state — ``state`` is the dedup machine (ok | pending |
    # firing); ``fired`` stays as the "ever fired" latch the dashboard
    # and HTTP API always showed.
    state: str = "ok"
    _holding_since: Optional[float] = None
    fired: bool = False
    fired_at_sim_time: Optional[float] = None
    resolved_at_sim_time: Optional[float] = None
    last_value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValueError(f"unknown operator {self.op!r}; "
                             f"use one of {sorted(OPERATORS)}")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r}")
        if not self.label:
            name = getattr(self.component, "name",
                           type(self.component).__name__)
            self.label = (f"{name}.{self.path} {self.op} "
                          f"{self.threshold:g}")

    def evaluate(self, now_wall: float, now_sim: float) -> bool:
        """Advance the state machine; returns True only on the
        ``firing`` transition.

        A rule that keeps breaching stays silently ``firing`` — one
        transition, not one per evaluation tick.  When the condition
        clears, the rule transitions back to ``ok`` (the *resolved*
        edge, observable via :attr:`state` /
        :attr:`resolved_at_sim_time`) and re-arms: a later breach
        fires again.
        """
        try:
            raw = resolve_path(self.component, self.path)
        except (AttributeError, KeyError, IndexError, TypeError):
            raw = None
        value = numeric_value(raw) if raw is not None else None
        self.last_value = value
        breaching = (value is not None
                     and OPERATORS[self.op](value, self.threshold))
        if not breaching:
            self._holding_since = None
            if self.state == "firing":
                self.state = "ok"
                self.resolved_at_sim_time = now_sim
            else:
                self.state = "ok"
            return False
        if self.state == "firing":
            return False  # still breaching: already announced
        if self._holding_since is None:
            self._holding_since = now_wall
        if now_wall - self._holding_since >= self.duration:
            self.state = "firing"
            self.fired = True
            self.fired_at_sim_time = now_sim
            return True
        self.state = "pending"
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "label": self.label,
            "path": self.path,
            "op": self.op,
            "threshold": self.threshold,
            "duration": self.duration,
            "action": self.action,
            "state": self.state,
            "fired": self.fired,
            "fired_at_sim_time": self.fired_at_sim_time,
            "resolved_at_sim_time": self.resolved_at_sim_time,
            "last_value": self.last_value,
        }


class AlertManager:
    """Evaluates rules and performs their actions."""

    def __init__(self, abort: Optional[Callable[[], None]] = None,
                 registry=None):
        """
        Parameters
        ----------
        abort:
            Callback that terminates the simulation (wired to
            ``Simulation.abort`` by the monitor).  Rules with
            ``action="abort"`` invoke it when they fire.
        registry:
            Optional :class:`~repro.metrics.MetricRegistry`; when
            given, deduplicated transitions are counted as
            ``rtm_alerts_transitions_total{state="firing"|"resolved"}``
            (the same family the historian's fleet-level rule engine
            publishes).
        """
        self._rules: Dict[int, AlertRule] = {}
        self._abort = abort
        self.fired_log: List[AlertRule] = []
        self.resolved_log: List[AlertRule] = []
        self._transitions = None
        if registry is not None:
            self.attach_registry(registry)

    def attach_registry(self, registry) -> None:
        self._transitions = registry.counter(
            "rtm_alerts_transitions_total",
            "Deduplicated alert rule transitions.", ("state",))

    def add(self, rule: AlertRule) -> AlertRule:
        self._rules[rule.id] = rule
        return rule

    def remove(self, rule_id: int) -> bool:
        return self._rules.pop(rule_id, None) is not None

    @property
    def rules(self) -> List[AlertRule]:
        return list(self._rules.values())

    def evaluate_all(self, now_sim: float) -> List[AlertRule]:
        """One evaluation pass; returns the rules that newly fired.

        Transition dedup: a rule breaching across many passes lands in
        ``fired_log`` once per firing/resolved cycle, and each edge
        bumps ``rtm_alerts_transitions_total`` exactly once."""
        now_wall = time.monotonic()
        fired = []
        for rule in list(self._rules.values()):
            was_firing = rule.state == "firing"
            if rule.evaluate(now_wall, now_sim):
                fired.append(rule)
                self.fired_log.append(rule)
                if self._transitions is not None:
                    self._transitions.labels("firing").inc()
                if rule.action == "abort" and self._abort is not None:
                    self._abort()
            elif was_firing and rule.state != "firing":
                self.resolved_log.append(rule)
                if self._transitions is not None:
                    self._transitions.labels("resolved").inc()
        return fired

    def to_dict(self) -> List[Dict[str, Any]]:
        return [rule.to_dict() for rule in self.rules]
