"""Atomic file writes: temp file in the same directory + fsync + rename.

A crash mid-write must never leave a torn artifact on disk — watchdog
post-mortems, fleet status files, checkpoints and journal snapshots are
exactly the files an operator reads *after* a crash, so they get the
full temp-file/fsync/rename discipline.  ``os.replace`` is atomic on
POSIX (and on Windows for same-volume paths), so readers observe either
the old complete file or the new complete file, never a mixture.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: Any, data: bytes, fsync: bool = True) -> None:
    """Write *data* to *path* so that a crash can never tear it.

    The temp file lives in the target's directory (rename is only atomic
    within one filesystem).  With *fsync* (default) the data is on disk
    before the rename, so even a power loss leaves the old or the new
    file, complete.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Any, text: str, encoding: str = "utf-8",
                      fsync: bool = True) -> None:
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(path: Any, obj: Any, indent: int = 2,
                      fsync: bool = True, default=str) -> None:
    atomic_write_text(path,
                      json.dumps(obj, indent=indent, default=default)
                      + "\n",
                      fsync=fsync)
