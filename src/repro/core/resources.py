"""Resource-utilization monitoring (task **T2**, paper Figure 2 A).

Replaces the architects' `top` workflow: CPU utilization and resident
memory of *this* simulation process, plus simulator-specific throughput
(events per wall second) that generic tools cannot show.

CPU% is computed from ``os.times`` deltas between samples — the same
signal ``top`` derives from /proc — so a hang shows up exactly as the
paper describes: "the CPU usage falls to a level significantly less
than 100%".
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from ..metrics import MetricRegistry, rate


def _rss_bytes() -> int:
    """Resident set size of this process.

    Reads /proc on Linux; falls back to ``resource.getrusage`` (which
    reports kilobytes on Linux) elsewhere.
    """
    try:
        with open("/proc/self/statm") as f:
            pages = int(f.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        import resource
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


@dataclass
class ResourceSample:
    """One reading of the process' resource usage."""

    wall_time: float
    cpu_percent: float
    rss_bytes: int
    events_per_second: float

    def to_dict(self) -> dict:
        return {
            "cpu_percent": round(self.cpu_percent, 1),
            "rss_bytes": self.rss_bytes,
            "rss_mb": round(self.rss_bytes / (1024 * 1024), 1),
            "events_per_second": round(self.events_per_second, 1),
        }


class ResourceMonitor:
    """Delta-based sampler of CPU%, RSS and event throughput."""

    def __init__(self, engine=None,
                 registry: Optional[MetricRegistry] = None):
        self._engine = engine
        self._last_wall = time.monotonic()
        self._last_cpu = self._cpu_seconds()
        self._last_events = engine.event_count if engine else 0
        self._last_sample: Optional[ResourceSample] = None
        self._g_cpu = self._g_rss = self._g_eps = None
        if registry is not None:
            self._g_cpu = registry.gauge(
                "rtm_process_cpu_percent",
                "CPU utilization of the simulation process.")
            self._g_rss = registry.gauge(
                "rtm_process_rss_bytes",
                "Resident set size of the simulation process.")
            self._g_eps = registry.gauge(
                "rtm_sim_events_per_second",
                "Engine event throughput over the last sample window.")

    @staticmethod
    def _cpu_seconds() -> float:
        t = os.times()
        return t.user + t.system

    def sample(self) -> ResourceSample:
        """Take a new sample; guarantees a non-zero measurement window
        by reusing the previous sample for sub-millisecond re-polls."""
        now = time.monotonic()
        elapsed = now - self._last_wall
        if elapsed < 1e-2 and self._last_sample is not None:
            # Sub-10ms windows give meaningless CPU% deltas; reuse.
            return self._last_sample
        cpu = self._cpu_seconds()
        events = self._engine.event_count if self._engine else 0
        cpu_pct = 100.0 * rate(cpu - self._last_cpu, elapsed)
        eps = rate(events - self._last_events, elapsed)
        self._last_wall, self._last_cpu = now, cpu
        self._last_events = events
        self._last_sample = ResourceSample(now, cpu_pct, _rss_bytes(), eps)
        if self._g_cpu is not None:
            self._g_cpu.set(cpu_pct)
            self._g_rss.set(float(self._last_sample.rss_bytes))
            self._g_eps.set(eps)
        return self._last_sample
