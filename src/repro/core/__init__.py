"""``repro.core`` — AkitaRTM: real-time monitoring for computer
architecture simulations (the paper's primary contribution).

Typical usage::

    from repro.core import Monitor
    from repro.gpu import GPUPlatform

    platform = GPUPlatform()
    monitor = Monitor(platform.simulation)   # registers engine+components
    monitor.attach_driver(platform.driver)   # default progress bars
    url = monitor.start_server()             # open in a browser
    monitor.start_sampler()                  # feed time charts / hang det.
    platform.run(hang_wait=3600)             # debuggable if it hangs

The twelve-function plugin API lives on :class:`Monitor`; the HTTP API
(`/api/...`) is served by :class:`RTMServer` and consumed by the
dashboard under ``static/`` or programmatically via :class:`RTMClient`.
"""

from .alerts import AlertManager, AlertRule
from .bottleneck import BufferAnalyzer, BufferRow
from .client import RTMClient, RTMClientError, RTMConnectionError
from .export import (
    METRIC,
    RecordedSeries,
    SeriesRecorder,
    export_watches_csv,
    load_recorded_series,
    metric_target,
)
from .hangdetect import HangDetector, HangStatus
from .inspector import (
    discover_buffers,
    numeric_value,
    resolve_path,
    serialize_component,
    serialize_value,
    watchable_paths,
)
from .monitor import Monitor
from .profiler import FunctionStats, ProfileReport, SamplingProfiler
from .progress import ProgressBar
from .resources import ResourceMonitor, ResourceSample
from .server import BadRequest, HTTPServerThread, JSONRequestHandler, RTMServer
from .timeseries import HISTORY, MAX_WATCHES, ValueMonitor, ValueWatch
from .watchdog import Watchdog, WatchdogConfig

__all__ = [
    "AlertManager",
    "AlertRule",
    "BadRequest",
    "BufferAnalyzer",
    "BufferRow",
    "FunctionStats",
    "HangDetector",
    "HangStatus",
    "HISTORY",
    "HTTPServerThread",
    "JSONRequestHandler",
    "MAX_WATCHES",
    "METRIC",
    "Monitor",
    "ProfileReport",
    "ProgressBar",
    "RecordedSeries",
    "SeriesRecorder",
    "ResourceMonitor",
    "ResourceSample",
    "RTMClient",
    "RTMClientError",
    "RTMConnectionError",
    "RTMServer",
    "SamplingProfiler",
    "ValueMonitor",
    "ValueWatch",
    "Watchdog",
    "WatchdogConfig",
    "discover_buffers",
    "export_watches_csv",
    "load_recorded_series",
    "metric_target",
    "numeric_value",
    "resolve_path",
    "serialize_component",
    "serialize_value",
    "watchable_paths",
]
