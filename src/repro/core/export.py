"""Exporting monitored series for post-hoc analysis.

§IV-C: once real-time monitoring narrows the problem, "users can then
perform more targeted post-hoc analysis, essentially starting with a
'smaller haystack'".  This module is that hand-off: it records selected
values (through the same HTTP API the dashboard uses, or directly from
a :class:`~repro.core.timeseries.ValueMonitor`) and writes them to CSV
or JSON for offline tooling.
"""

from __future__ import annotations

import csv
import io
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .atomicio import atomic_write_text
from .client import RTMClient
from .timeseries import ValueMonitor

#: Pseudo-component marking a target as a registry metric, not a
#: component value path.
METRIC = "metric"


def metric_target(spec: str) -> Tuple[str, str]:
    """A recorder target naming a registry metric.

    *spec* is a family name, optionally with labels:
    ``"rtm_engine_events_total"`` or
    ``"rtm_cache_hits_total{component=GPU1.L2[0]}"``.  Recorded series
    and live metrics share one namespace: anything visible at
    ``/api/metrics`` can be recorded by name.
    """
    return (METRIC, spec)


def _parse_metric_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    name, sep, rest = spec.partition("{")
    labels: Dict[str, str] = {}
    if sep:
        body = rest.rstrip("}")
        for pair in filter(None, body.split(",")):
            key, _, value = pair.partition("=")
            labels[key.strip()] = value.strip().strip('"')
    return name.strip(), labels


def _resolve_metric(snapshot: Dict, spec: str) -> Optional[float]:
    """Find *spec* in a ``/api/metrics`` snapshot; None if absent.

    Label matching is by subset: every label in the spec must match,
    extra sample labels are ignored.  Histograms resolve to their
    observation count.
    """
    name, wanted = _parse_metric_spec(spec)
    family = snapshot.get(name)
    if family is None:
        return None
    for sample in family.get("samples", []):
        labels = sample.get("labels", {})
        if all(labels.get(k) == v for k, v in wanted.items()):
            if family.get("type") == "histogram":
                return float(sample.get("count", 0))
            return sample.get("value")
    return None


@dataclass
class RecordedSeries:
    """One value's recorded (sim_time, value) samples."""

    label: str
    component: str
    path: str
    points: List[Tuple[float, Optional[float]]] = field(
        default_factory=list)


class SeriesRecorder:
    """Polls a set of monitored values over HTTP and accumulates them.

    Unlike the dashboard's 300-point ring, the recorder keeps
    everything — it exists precisely to hand a complete window to
    post-hoc tools.
    """

    def __init__(self, client: RTMClient,
                 targets: Sequence[Tuple[str, str]],
                 interval: float = 0.05):
        """
        Parameters
        ----------
        client:
            Connected API client.
        targets:
            (component name, value path) pairs to record.  A pair whose
            component is :data:`METRIC` (see :func:`metric_target`)
            records a registry metric by name instead.
        interval:
            Wall-clock polling period in seconds.
        """
        self.client = client
        self.interval = interval
        self.series = [RecordedSeries(f"{component}.{path}", component,
                                      path)
                       for component, path in targets]
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Begin polling in a background thread."""
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="rtm-recorder")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def record_for(self, duration: float) -> None:
        """Convenience: record for *duration* wall seconds, blocking."""
        self.start()
        time.sleep(duration)
        self.stop()

    def sample_once(self) -> None:
        """Take one sample of every target (also usable standalone).

        Metric targets share a single ``/api/metrics`` snapshot per
        sampling round, timestamped with the simulation time the
        registry itself publishes (wall time when no simulation
        instrumentation is attached).
        """
        snapshot = None
        if any(s.component == METRIC for s in self.series):
            try:
                snapshot = self.client.metrics_snapshot()
            except Exception:
                snapshot = None
        t_metric = time.monotonic()
        if snapshot:
            family = snapshot.get("rtm_engine_sim_time_seconds")
            if family and family.get("samples"):
                t_metric = family["samples"][0]["value"]
        for series in self.series:
            if series.component == METRIC:
                if snapshot is None:
                    continue
                series.points.append(
                    (t_metric, _resolve_metric(snapshot, series.path)))
                continue
            try:
                data = self.client._get("/api/value",
                                        component=series.component,
                                        path=series.path)
            except Exception:
                continue
            series.points.append((data["time"], data["value"]))

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # -- export ------------------------------------------------------------
    def to_csv(self, path) -> Path:
        """Write a wide CSV: one time column per series pair.

        Series are polled together but may miss samples independently,
        so each series contributes its own (time, value) column pair.

        The document is built in memory and written atomically
        (temp file + rename): a recorder raising mid-dump, or a crash
        racing the write, leaves the previous artifact intact instead
        of a torn one.
        """
        target = Path(path)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        header = []
        for series in self.series:
            header += [f"{series.label}.time", f"{series.label}.value"]
        writer.writerow(header)
        length = max((len(s.points) for s in self.series), default=0)
        for i in range(length):
            row = []
            for series in self.series:
                if i < len(series.points):
                    t, v = series.points[i]
                    row += [t, v]
                else:
                    row += ["", ""]
            writer.writerow(row)
        atomic_write_text(target, buffer.getvalue())
        return target

    def to_json(self, path) -> Path:
        target = Path(path)
        payload = [{
            "label": s.label,
            "component": s.component,
            "path": s.path,
            "points": [[t, v] for t, v in s.points],
        } for s in self.series]
        atomic_write_text(target, json.dumps(payload, indent=2))
        return target


def load_recorded_series(path) -> List[RecordedSeries]:
    """Load series written by :meth:`SeriesRecorder.to_json`.

    Round-trips exactly: ``load_recorded_series(rec.to_json(p))``
    returns series equal to ``rec.series`` (points become tuples
    again; JSON ``null`` values come back as ``None``).
    """
    payload = json.loads(Path(path).read_text())
    return [RecordedSeries(
        label=entry["label"],
        component=entry["component"],
        path=entry["path"],
        points=[(t, v) for t, v in entry["points"]],
    ) for entry in payload]


def export_watches_csv(values: ValueMonitor, path) -> Path:
    """Dump a ValueMonitor's current watch histories (the dashboard's
    300-point rings) to CSV — atomically, so a watch raising mid-dump
    never leaves a torn artifact behind."""
    target = Path(path)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["label", "time", "value"])
    for watch in values.watches:
        for t, v in watch.points:
            writer.writerow([watch.label, t, v])
    atomic_write_text(target, buffer.getvalue())
    return target
