"""Exporting monitored series for post-hoc analysis.

§IV-C: once real-time monitoring narrows the problem, "users can then
perform more targeted post-hoc analysis, essentially starting with a
'smaller haystack'".  This module is that hand-off: it records selected
values (through the same HTTP API the dashboard uses, or directly from
a :class:`~repro.core.timeseries.ValueMonitor`) and writes them to CSV
or JSON for offline tooling.
"""

from __future__ import annotations

import csv
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .client import RTMClient
from .timeseries import ValueMonitor


@dataclass
class RecordedSeries:
    """One value's recorded (sim_time, value) samples."""

    label: str
    component: str
    path: str
    points: List[Tuple[float, Optional[float]]] = field(
        default_factory=list)


class SeriesRecorder:
    """Polls a set of monitored values over HTTP and accumulates them.

    Unlike the dashboard's 300-point ring, the recorder keeps
    everything — it exists precisely to hand a complete window to
    post-hoc tools.
    """

    def __init__(self, client: RTMClient,
                 targets: Sequence[Tuple[str, str]],
                 interval: float = 0.05):
        """
        Parameters
        ----------
        client:
            Connected API client.
        targets:
            (component name, value path) pairs to record.
        interval:
            Wall-clock polling period in seconds.
        """
        self.client = client
        self.interval = interval
        self.series = [RecordedSeries(f"{component}.{path}", component,
                                      path)
                       for component, path in targets]
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Begin polling in a background thread."""
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="rtm-recorder")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def record_for(self, duration: float) -> None:
        """Convenience: record for *duration* wall seconds, blocking."""
        self.start()
        time.sleep(duration)
        self.stop()

    def sample_once(self) -> None:
        """Take one sample of every target (also usable standalone)."""
        for series in self.series:
            try:
                data = self.client._get("/api/value",
                                        component=series.component,
                                        path=series.path)
            except Exception:
                continue
            series.points.append((data["time"], data["value"]))

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # -- export ------------------------------------------------------------
    def to_csv(self, path) -> Path:
        """Write a wide CSV: one time column per series pair.

        Series are polled together but may miss samples independently,
        so each series contributes its own (time, value) column pair.
        """
        target = Path(path)
        with target.open("w", newline="") as f:
            writer = csv.writer(f)
            header = []
            for series in self.series:
                header += [f"{series.label}.time", f"{series.label}.value"]
            writer.writerow(header)
            length = max((len(s.points) for s in self.series), default=0)
            for i in range(length):
                row = []
                for series in self.series:
                    if i < len(series.points):
                        t, v = series.points[i]
                        row += [t, v]
                    else:
                        row += ["", ""]
                writer.writerow(row)
        return target

    def to_json(self, path) -> Path:
        target = Path(path)
        payload = [{
            "label": s.label,
            "component": s.component,
            "path": s.path,
            "points": [[t, v] for t, v in s.points],
        } for s in self.series]
        target.write_text(json.dumps(payload, indent=2))
        return target


def load_recorded_series(path) -> List[RecordedSeries]:
    """Load series written by :meth:`SeriesRecorder.to_json`.

    Round-trips exactly: ``load_recorded_series(rec.to_json(p))``
    returns series equal to ``rec.series`` (points become tuples
    again; JSON ``null`` values come back as ``None``).
    """
    payload = json.loads(Path(path).read_text())
    return [RecordedSeries(
        label=entry["label"],
        component=entry["component"],
        path=entry["path"],
        points=[(t, v) for t, v in entry["points"]],
    ) for entry in payload]


def export_watches_csv(values: ValueMonitor, path) -> Path:
    """Dump a ValueMonitor's current watch histories (the dashboard's
    300-point rings) to CSV."""
    target = Path(path)
    with target.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["label", "time", "value"])
        for watch in values.watches:
            for t, v in watch.points:
                writer.writerow([watch.label, t, v])
    return target
