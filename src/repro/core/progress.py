"""Progress bars (paper §IV-C, "Simulation progress monitoring").

Each bar has three segments — finished (green), currently executing
(blue), and not started (gray).  Bars can hold static counts updated
through the monitor API, or be *live*: backed by a provider object such
as a :class:`~repro.gpu.kernel.KernelState` or
:class:`~repro.gpu.kernel.MemCopyState`, read at render time so the
simulation never has to call back into the monitor.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, Optional, Tuple

from ..metrics import rate as _rate

#: () -> (completed, ongoing, total)
ProgressProvider = Callable[[], Tuple[int, int, int]]

_bar_ids = itertools.count(1)


class ProgressBar:
    """One three-segment progress bar."""

    def __init__(self, name: str, total: int = 0,
                 provider: Optional[ProgressProvider] = None):
        self.id = next(_bar_ids)
        self.name = name
        self._total = total
        self._completed = 0
        self._ongoing = 0
        self._provider = provider
        self._rate_wall = time.monotonic()
        self._rate_completed = self.counts[0]

    # -- updates (static bars) ------------------------------------------
    def update(self, completed: int, ongoing: int = 0,
               total: Optional[int] = None) -> None:
        """Set the current counts (monitor API ``UpdateProgressBar``)."""
        self._completed = completed
        self._ongoing = ongoing
        if total is not None:
            self._total = total

    def increment(self, by: int = 1) -> None:
        self._completed += by

    # -- reads -----------------------------------------------------------
    @property
    def counts(self) -> Tuple[int, int, int]:
        """(completed, ongoing, total), from the provider if live."""
        if self._provider is not None:
            return self._provider()
        return self._completed, self._ongoing, self._total

    @property
    def completed(self) -> int:
        return self.counts[0]

    @property
    def ongoing(self) -> int:
        return self.counts[1]

    @property
    def total(self) -> int:
        return self.counts[2]

    @property
    def not_started(self) -> int:
        completed, ongoing, total = self.counts
        return max(0, total - completed - ongoing)

    @property
    def fraction(self) -> float:
        completed, _, total = self.counts
        return completed / total if total else 0.0

    def rate(self, now: Optional[float] = None) -> float:
        """Completed items per wall second since the previous call
        (or bar creation).  Shares :func:`repro.metrics.rate` with the
        resource monitor and the CLI so every throughput number in the
        system means the same thing."""
        wall = time.monotonic() if now is None else now
        completed = self.counts[0]
        value = _rate(completed - self._rate_completed,
                      wall - self._rate_wall)
        self._rate_wall = wall
        self._rate_completed = completed
        return value

    def to_dict(self) -> Dict:
        completed, ongoing, total = self.counts
        return {
            "id": self.id,
            "name": self.name,
            "completed": completed,
            "ongoing": ongoing,
            "not_started": max(0, total - completed - ongoing),
            "total": total,
        }

    @classmethod
    def for_kernel(cls, kernel_state) -> "ProgressBar":
        """The paper's default bar: kernel progress in thread blocks."""
        name = f"kernel:{kernel_state.descriptor.name}"
        return cls(name, provider=lambda: (kernel_state.completed,
                                           kernel_state.ongoing,
                                           kernel_state.total))

    @classmethod
    def for_memcopy(cls, copy_state) -> "ProgressBar":
        """Bytes-copied bar for a DMA transfer."""
        name = f"memcopy:{copy_state.direction}"
        return cls(name, provider=lambda: (copy_state.copied_bytes, 0,
                                           copy_state.total_bytes))
