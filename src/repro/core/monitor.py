"""The AkitaRTM monitor — the plugin a simulation registers itself with.

This is the Python equivalent of the paper's Go API.  §IV-B: "The Go API
is small and lightweight … Implementing the Go API requires only 12
functions."  The twelve, as reproduced here:

==============================  =========================================
Paper (Go)                      This module
==============================  =========================================
RegisterEngine                  :meth:`Monitor.register_engine`
RegisterComponent               :meth:`Monitor.register_component`
CreateProgressBar               :meth:`Monitor.create_progress_bar`
UpdateProgressBar               :meth:`Monitor.update_progress_bar`
DestroyProgressBar              :meth:`Monitor.destroy_progress_bar`
StartServer                     :meth:`Monitor.start_server`
StopServer                      :meth:`Monitor.stop_server`
Pause                           :meth:`Monitor.pause`
Continue                        :meth:`Monitor.continue_`
CurrentTime                     :meth:`Monitor.now`
Tick (component wake)           :meth:`Monitor.tick_component`
KickStart                       :meth:`Monitor.kick_start`
==============================  =========================================

plus convenience sugar (``register_simulation``, ``attach_driver``,
``watch_value``) that simulators are free to ignore.

The monitor performs work **on demand**: nothing runs when no request
arrives (the first of the three §VII design choices credited for the
negligible overhead).  The only persistent activity is an optional
low-frequency sampler thread that feeds the time-series watches and the
hang detector.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from ..akita.component import Component, TickingComponent
from ..akita.engine import Engine
from ..akita.simulation import Simulation
from ..metrics import MetricRegistry, SimMetrics
from ..profile.threads import sim_thread_id
from .alerts import AlertManager, AlertRule
from .bottleneck import BufferAnalyzer
from .hangdetect import HangDetector, HangStatus
from .inspector import serialize_component, watchable_paths
from .profiler import SamplingProfiler
from .progress import ProgressBar
from .resources import ResourceMonitor
from .timeseries import ValueMonitor, ValueWatch


class Monitor:
    """Real-time monitor for one simulation."""

    def __init__(self, simulation: Optional[Simulation] = None,
                 sample_interval: float = 0.1):
        self._engine: Optional[Engine] = None
        self._simulation: Optional[Simulation] = None
        self._components: Dict[str, Any] = {}
        self._bars: Dict[int, ProgressBar] = {}
        self.analyzer = BufferAnalyzer()
        # The unified registry: every number the monitor publishes —
        # watches, resources, hang state, HTTP latency, simulation
        # vitals — lives here, scrapeable at /metrics.  Always present;
        # it costs nothing until something records into it.
        self.metrics = MetricRegistry()
        self.values = ValueMonitor(registry=self.metrics)
        self.alerts = AlertManager(registry=self.metrics)
        # Pinned to the simulation thread: the target is late-bound
        # (the sim thread is whichever thread calls Engine.run, which
        # registers itself), so server/SSE/watchdog threads are never
        # attributed into the simulation profile.
        self.profiler = SamplingProfiler(target_thread_id=sim_thread_id)
        self.continuous = None  # set by attach/ensure_continuous_profiler
        self._abort_on_hang = False
        self.resources: Optional[ResourceMonitor] = None
        self.hang: Optional[HangDetector] = None
        self.injector = None  # set by attach_injector / ensure_injector
        self.watchdog = None  # set by attach_watchdog / enable_watchdog
        self.checkpointer = None  # set by attach_checkpointer
        self.tracer = None  # set by attach_tracer / ensure_tracer
        self.sim_metrics: Optional[SimMetrics] = None
        self._server = None  # set by start_server
        self._driver = None
        self.sample_interval = sample_interval
        self._sampler: Optional[threading.Thread] = None
        self._sampler_stop = threading.Event()
        if simulation is not None:
            self.register_simulation(simulation)

    # ------------------------------------------------------------------
    # Registration (Go API #1, #2 + sugar)
    # ------------------------------------------------------------------
    def register_engine(self, engine: Engine) -> None:
        """Link the engine that manages simulation progress."""
        self._engine = engine
        self.resources = ResourceMonitor(engine, registry=self.metrics)

    def register_component(self, component: Any) -> None:
        """Start monitoring *component*: its fields become inspectable
        and its buffers join the bottleneck analyzer — no modification
        of the component required (reflection does the discovery)."""
        name = getattr(component, "name", None)
        if not name:
            raise ValueError("component needs a 'name' to be monitored")
        self._components[name] = component
        self.analyzer.register_component(component)

    def register_simulation(self, simulation: Simulation) -> None:
        """Register the engine and every component of *simulation*."""
        self._simulation = simulation
        self.register_engine(simulation.engine)
        for component in simulation.components:
            self.register_component(component)
        self.hang = HangDetector(simulation, self.analyzer,
                                 registry=self.metrics)
        self.alerts = AlertManager(abort=simulation.abort,
                                   registry=self.metrics)

    def attach_driver(self, driver) -> None:
        """Auto-create the default progress bars: kernel block progress
        and memcopy byte progress (paper §IV-A)."""
        self._driver = driver

    # ------------------------------------------------------------------
    # Fault injection & supervision
    # ------------------------------------------------------------------
    def attach_injector(self, injector) -> None:
        """Expose *injector* over ``/api/faults`` and in diagnostics."""
        self.injector = injector

    def ensure_injector(self, seed: int = 0):
        """Return the attached injector, creating one on first use.

        Imported lazily so simulations that never inject faults never
        load the faults package."""
        if self.injector is None:
            if self._simulation is None:
                raise RuntimeError(
                    "fault injection needs a registered simulation")
            from ..faults.injector import FaultInjector
            self.injector = FaultInjector(self._simulation, seed=seed)
        return self.injector

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Expose *tracer* over ``/api/trace`` and in diagnostics;
        replaces (and closes) any previous one."""
        if self.tracer is not None and self.tracer is not tracer:
            self.tracer.close()
        self.tracer = tracer

    def ensure_tracer(self, backend: str = "ring", capacity: int = 65536,
                      db_path: Optional[str] = None,
                      include: Optional[str] = None):
        """Return the attached tracer, creating one on first use.

        Imported lazily so simulations that never trace never load the
        trace package.  ``backend`` is ``"ring"`` (bounded in-memory,
        default) or ``"sqlite"`` (durable; needs ``db_path``).
        """
        if self.tracer is None:
            if self._simulation is None:
                raise RuntimeError("tracing needs a registered simulation")
            from ..trace import RingStore, SQLiteStore, Tracer
            if backend == "sqlite":
                if not db_path:
                    raise ValueError(
                        "sqlite trace backend needs a db_path")
                store = SQLiteStore(db_path)
            elif backend == "ring":
                store = RingStore(capacity)
            else:
                raise ValueError(
                    f"backend must be 'ring' or 'sqlite', got {backend!r}")
            self.tracer = Tracer(self._simulation, store, include=include)
        return self.tracer

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def attach_sim_metrics(self, sim_metrics: SimMetrics) -> None:
        """Expose *sim_metrics* over ``/metrics``; replaces (and stops)
        any previous instrumentation."""
        if self.sim_metrics is not None \
                and self.sim_metrics is not sim_metrics:
            self.sim_metrics.stop()
        self.sim_metrics = sim_metrics

    def ensure_sim_metrics(self) -> SimMetrics:
        """Return the simulation instrumentation, creating (but not
        starting) it on first use.  The registry is the monitor's own,
        so simulation vitals and monitor-side families share one
        namespace."""
        if self.sim_metrics is None:
            if self._simulation is None:
                raise RuntimeError(
                    "simulation metrics need a registered simulation")
            self.sim_metrics = SimMetrics(self._simulation, self.metrics)
        return self.sim_metrics

    # ------------------------------------------------------------------
    # Continuous profiling (the overhead-attribution plane)
    # ------------------------------------------------------------------
    def attach_continuous_profiler(self, profiler) -> None:
        """Expose *profiler* over ``/api/profile/*``; its cumulative
        layer attribution is published into the monitor's registry as
        ``rtm_profile_layer_seconds_total``.  Replaces (and stops) any
        previous one."""
        if self.continuous is not None and self.continuous is not profiler:
            self.continuous.stop()
        self.continuous = profiler
        profiler.bind_registry(self.metrics)

    def ensure_continuous_profiler(self, **config):
        """Return the continuous profiler, creating (but not starting)
        it on first use.  Imported lazily so simulations that never
        profile never load the profile package's machinery."""
        if self.continuous is None:
            from ..profile import ContinuousProfiler
            self.attach_continuous_profiler(ContinuousProfiler(**config))
        return self.continuous

    def start_continuous_profiling(self, **config):
        """Create (if needed) and start the always-on rolling
        profiler; returns it."""
        profiler = self.ensure_continuous_profiler(**config)
        profiler.start()
        return profiler

    def attach_checkpointer(self, checkpointer) -> None:
        """Expose *checkpointer* over ``/api/checkpoint`` and give the
        watchdog its restore escalation: on an unrecoverable hang the
        watchdog persists one final (restorable) snapshot of the hung
        state before aborting, so the retry can resume instead of
        cold-starting.  Replaces (and stops) any previous one."""
        if self.checkpointer is not None \
                and self.checkpointer is not checkpointer:
            self.checkpointer.stop()
        self.checkpointer = checkpointer

    def attach_watchdog(self, watchdog) -> None:
        """Expose *watchdog* over ``/api/watchdog``; replaces (and
        stops) any previous one."""
        if self.watchdog is not None and self.watchdog is not watchdog:
            self.watchdog.stop()
        self.watchdog = watchdog

    def enable_watchdog(self, **config):
        """Create, attach and start a :class:`~repro.core.watchdog.
        Watchdog`; keyword arguments populate its
        :class:`~repro.core.watchdog.WatchdogConfig`."""
        from .watchdog import Watchdog, WatchdogConfig
        self.attach_watchdog(Watchdog(self, WatchdogConfig(**config)))
        self.watchdog.start()
        return self.watchdog

    # ------------------------------------------------------------------
    # Progress bars (Go API #3, #4, #5)
    # ------------------------------------------------------------------
    def create_progress_bar(self, name: str, total: int = 0,
                            provider=None) -> ProgressBar:
        bar = ProgressBar(name, total, provider)
        self._bars[bar.id] = bar
        return bar

    def update_progress_bar(self, bar: ProgressBar, completed: int,
                            ongoing: int = 0,
                            total: Optional[int] = None) -> None:
        bar.update(completed, ongoing, total)

    def destroy_progress_bar(self, bar: ProgressBar) -> None:
        self._bars.pop(bar.id, None)

    def progress_bars(self) -> List[ProgressBar]:
        """All bars: explicitly created ones plus live bars for every
        kernel/memcopy the attached driver knows about."""
        bars = list(self._bars.values())
        if self._driver is not None:
            for kernel in self._driver.kernels:
                bars.append(ProgressBar.for_kernel(kernel))
            for copy in self._driver.memcopies:
                bars.append(ProgressBar.for_memcopy(copy))
        return bars

    # ------------------------------------------------------------------
    # Simulation control (Go API #8, #9, #11, #12)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Park the simulation thread at the next event boundary."""
        self._require_engine().pause()

    def continue_(self) -> None:
        self._require_engine().continue_()

    @property
    def paused(self) -> bool:
        return self._require_engine().paused

    def now(self) -> float:
        """Current simulation time (Go API ``CurrentTime``)."""
        return self._require_engine().now

    def tick_component(self, name: str) -> bool:
        """The *Tick* button: schedule a wake-up tick for a (possibly
        sleeping) component so its state machine can be stepped during
        hang debugging.  Returns False for unknown/non-ticking
        components."""
        component = self._components.get(name)
        if not isinstance(component, TickingComponent):
            return False
        component.tick_later()
        return True

    def kick_start(self) -> None:
        """The *Kick Start* button: resume a run loop parked on a dry
        event queue (used together with :meth:`tick_component`)."""
        if self._simulation is not None:
            self._simulation.kickstart()

    def set_throttle(self, events_per_second: float = 0.0) -> None:
        """Slow the simulation to human speed ("slowing down time",
        §V-C) so individual component ticks can be caught live.
        0 restores full speed."""
        self._require_engine().set_throttle(events_per_second)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def component_names(self) -> List[str]:
        return list(self._components.keys())

    def component(self, name: str) -> Any:
        return self._components[name]

    def has_component(self, name: str) -> bool:
        return name in self._components

    def component_detail(self, name: str) -> Dict[str, Any]:
        """Serialize one component (one component per request — the
        fine-granularity rule of §VII)."""
        detail = serialize_component(self._components[name])
        detail["watchable"] = watchable_paths(self._components[name])
        detail["ticking"] = isinstance(self._components[name],
                                       TickingComponent)
        return detail

    def component_tree(self) -> Dict[str, Any]:
        """The hierarchical component view (paper Fig. 2 B/D)."""
        root: Dict[str, Any] = {}
        for name in self._components:
            node = root
            for segment in name.split("."):
                node = node.setdefault(segment, {})
        return root

    # ------------------------------------------------------------------
    # §VIII extensions: topology map and port throughput
    # ------------------------------------------------------------------
    def topology(self) -> Dict[str, Any]:
        """A graph view of how components are connected (the "map of
        how components are connected" the paper proposes in §VIII to
        flatten the learning curve)."""
        if self._simulation is None:
            return {"connections": []}
        return {"connections": [
            {"name": conn.name,
             "latency": conn.latency,
             "messages": conn.msg_count,
             "ports": [p.name for p in conn.ports]}
            for conn in self._simulation.connections]}

    def port_throughput(self, component_name: str) -> List[Dict[str, Any]]:
        """Cumulative sent/delivered counts per port of one component
        ("real-time achieved throughput of ports", §VIII).  Clients
        compute rates from deltas between polls."""
        component = self._components[component_name]
        ports = getattr(component, "ports", [])
        return [{"port": p.name, "sent": p.num_sent,
                 "delivered": p.num_delivered,
                 "buffered": p.buf.size} for p in ports]

    # ------------------------------------------------------------------
    # Value monitoring
    # ------------------------------------------------------------------
    def watch_value(self, component_name: str, path: str,
                    label: Optional[str] = None) -> ValueWatch:
        """Start a time chart for ``component.path`` (the flag icon)."""
        component = self._components[component_name]
        return self.values.watch(component, path, label)

    # ------------------------------------------------------------------
    # Alerts ("fail early, fail fast" automation)
    # ------------------------------------------------------------------
    def add_alert(self, component_name: str, path: str, op: str,
                  threshold: float, duration: float = 0.0,
                  action: str = "notify") -> AlertRule:
        """Watch ``component.path <op> threshold`` for *duration* wall
        seconds; on firing, flag it (``notify``) or terminate the run
        (``abort``).  Requires the sampler thread (or manual
        :meth:`check_alerts` calls) to evaluate."""
        rule = AlertRule(self._components[component_name], path, op,
                         threshold, duration, action)
        return self.alerts.add(rule)

    def abort_on_hang(self, enable: bool = True) -> None:
        """Terminate the simulation automatically when the hang
        heuristic fires — the fully automated 'fail fast' mode."""
        self._abort_on_hang = enable

    def check_alerts(self) -> List[AlertRule]:
        """One evaluation pass over all rules (sampler calls this)."""
        engine = self._require_engine()
        fired = self.alerts.evaluate_all(engine.now)
        if self._abort_on_hang and self.hang is not None \
                and self._simulation is not None:
            cpu = self.resources.sample().cpu_percent \
                if self.resources else 0.0
            if self.hang.check(cpu).hung:
                self._simulation.abort()
        return fired

    # ------------------------------------------------------------------
    # Status aggregates
    # ------------------------------------------------------------------
    def overview(self) -> Dict[str, Any]:
        engine = self._require_engine()
        state = (self._simulation.run_state if self._simulation
                 else engine.run_state.value)
        return {
            "now": engine.now,
            "run_state": state,
            "paused": engine.paused,
            "event_count": engine.event_count,
            "pending_events": engine.pending_event_count,
            "num_components": len(self._components),
            "num_buffers": self.analyzer.buffer_count,
        }

    def hang_status(self) -> HangStatus:
        if self.hang is None:
            raise RuntimeError("no simulation registered")
        cpu = self.resources.sample().cpu_percent if self.resources \
            else None
        return self.hang.check(cpu)

    # ------------------------------------------------------------------
    # Sampler thread (feeds time charts + hang history)
    # ------------------------------------------------------------------
    def start_sampler(self) -> None:
        """Start the background sampler.  Optional: a polling client
        (like the web frontend) can drive sampling itself instead."""
        if self._sampler is not None and self._sampler.is_alive():
            return
        self._sampler_stop.clear()
        self._sampler = threading.Thread(target=self._sample_loop,
                                         daemon=True, name="rtm-sampler")
        self._sampler.start()

    def stop_sampler(self) -> None:
        self._sampler_stop.set()
        if self._sampler is not None:
            self._sampler.join(timeout=2.0)
            self._sampler = None

    def _sample_loop(self) -> None:
        while not self._sampler_stop.wait(self.sample_interval):
            engine = self._engine
            if engine is None:
                continue
            self.values.sample_all(engine.now)
            if self.hang is not None:
                cpu = self.resources.sample().cpu_percent \
                    if self.resources else 0.0
                self.hang.record(cpu)
            self.check_alerts()

    # ------------------------------------------------------------------
    # Server lifecycle (Go API #6, #7)
    # ------------------------------------------------------------------
    def start_server(self, port: int = 0, host: str = "127.0.0.1",
                     announce: bool = False) -> str:
        """Start the HTTP backend; returns the URL (printed to the
        terminal in the paper's workflow)."""
        from .server import RTMServer
        if self._server is not None:
            return self._server.url
        self._server = RTMServer(self, host=host, port=port)
        self._server.start()
        if announce:  # pragma: no cover - cosmetic
            print(f"AkitaRTM listening on {self._server.url}")
        return self._server.url

    def stop_server(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
        self.stop_sampler()
        if self.watchdog is not None:
            self.watchdog.stop()
        if self.checkpointer is not None:
            self.checkpointer.stop()
        if self.tracer is not None:
            self.tracer.stop()
        if self.sim_metrics is not None:
            self.sim_metrics.stop()
        if self.profiler.running:
            self.profiler.stop()
        if self.continuous is not None and self.continuous.running:
            self.continuous.stop()

    @property
    def url(self) -> Optional[str]:
        return self._server.url if self._server is not None else None

    # ------------------------------------------------------------------
    def _require_engine(self) -> Engine:
        if self._engine is None:
            raise RuntimeError(
                "no engine registered; call register_engine or "
                "register_simulation first")
        return self._engine
