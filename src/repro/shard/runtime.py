"""Per-process shard runtime: build, prune, rewire, run in windows.

Every shard process builds the **full** platform from the same config
and enqueues the same workload, so component names, port names and the
kernel launch list are identical everywhere.  It then

1. captures the name → port registry (the address book boundary
   messages are resolved against),
2. *prunes*: deregisters every component another shard owns from the
   monitored simulation — the objects survive as dormant replicas
   (never ticked, never seeded) whose ports anchor wire addresses,
3. *rewires*: replaces each boundary edge's connection with a
   :class:`~repro.shard.boundary.ShardConnection` that adopts only the
   locally-owned endpoints and exports sends to remote ones.

Only shard 0 seeds the driver's first tick; on every other shard the
driver replica holds the enqueued workload (for the kernel index
space) but never runs.  Execution then proceeds in coordinator-granted
windows: run every event strictly before the horizon, hand the outbox
(exported boundary messages) back, receive injections, repeat.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from ..akita.connection import DirectConnection
from ..gpu.cu import ComputeUnit
from ..gpu.platform import GPUPlatform, GPUPlatformConfig
from ..workloads import SUITE, StoreStorm, Workload
from .boundary import (
    BoundaryCodec,
    BoundaryInjector,
    ShardConnection,
    build_port_registry,
)
from .partition import chiplet_owners, owner_of_name

__all__ = ["ShardRuntime", "workload_spec", "resolve_workload"]

#: Wire name → workload class, for reconstructing the coordinator's
#: workload identically in every shard process.
_WORKLOAD_CLASSES = {"storestorm": StoreStorm, **SUITE}


def workload_spec(workload: Workload) -> Dict[str, Any]:
    """Serialize *workload* for the shard-worker ``init`` command."""
    for name, cls in _WORKLOAD_CLASSES.items():
        if type(workload) is cls:
            return {"name": name,
                    "params": dataclasses.asdict(workload)}
    raise ValueError(
        f"{type(workload).__name__} is not a shardable workload")


def resolve_workload(spec: Dict[str, Any]) -> Workload:
    """Reconstruct the workload a shard-worker ``init`` describes."""
    name = spec["name"]
    try:
        cls = _WORKLOAD_CLASSES[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}") from None
    return cls(**(spec.get("params") or {}))


class ShardRuntime:
    """One shard's half-open platform plus its windowed execution."""

    def __init__(self, config: GPUPlatformConfig, workload: Workload,
                 shard: int, num_shards: int):
        self.config = config
        self.shard = shard
        self.num_shards = num_shards
        self.blocks = config.partition_chiplets(num_shards)
        self.owners = chiplet_owners(self.blocks)
        self.platform = GPUPlatform(config, name=f"shard{shard}")
        self.simulation = self.platform.simulation
        self.engine = self.platform.engine
        self.workload_run = workload.enqueue(self.platform.driver)
        # The registry must see the full component set — see
        # build_port_registry.
        self.registry = build_port_registry(self.simulation)
        self.codec = BoundaryCodec(self.registry, self.platform.driver)
        self.injector = BoundaryInjector(self.engine)
        self._outbox: List[Dict[str, Any]] = []
        self._shard_conns: List[ShardConnection] = []
        if num_shards > 1:
            self._prune()
            self._rewire()
        if shard == 0:
            # Only the hub's driver runs; dormant replicas keep their
            # queued commands forever un-ticked.
            self.platform.start()

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def owns(self, name: str) -> bool:
        return owner_of_name(name, self.owners) == self.shard

    def _prune(self) -> None:
        for name in self.simulation.component_names:
            if not self.owns(name):
                self.simulation.deregister_component(name)

    def _rewire(self) -> None:
        cfg = self.config
        platform = self.platform

        # Driver ↔ command processors: one shared link whose endpoints
        # span shards.  Adopt the locally-owned ones.
        driver_conn = self._new_conn(
            "ShardDriverConn", cfg.driver_conn_latency_cycles / cfg.freq)
        if self.shard == 0:
            driver_conn.adopt(platform.driver.gpu_port)
        for chiplet in platform.chiplets:
            if self.owners[chiplet.id] == self.shard:
                driver_conn.adopt(chiplet.command_processor.driver_port)

        # Chiplet ↔ switch: per-chiplet point-to-point links.  A link
        # whose two endpoints are both local (chiplet owned by the hub)
        # keeps its original DirectConnection; a link with exactly one
        # local endpoint gets a proxy adopting that endpoint; a fully
        # remote link needs nothing here.
        for chiplet in platform.chiplets:
            owner = self.owners[chiplet.id]
            if owner == 0 and self.shard == 0:
                continue  # both endpoints local to the hub
            link_latency = cfg.net_link_latency_cycles / cfg.freq
            if self.shard == 0:
                conn = self._new_conn(
                    f"ShardNetLink[{chiplet.id}]", link_latency)
                conn.adopt(platform.switch.switch_port(chiplet.id))
            elif owner == self.shard:
                conn = self._new_conn(
                    f"ShardNetLink[{chiplet.id}]", link_latency)
                conn.adopt(chiplet.rdma.net_port)

    def _new_conn(self, name: str, latency: float) -> ShardConnection:
        conn = ShardConnection(name, self.engine, latency, self._export)
        self._shard_conns.append(conn)
        self.simulation.register_connection(conn)
        return conn

    def _export(self, msg, deliver_at: float) -> None:
        self._outbox.append({"deliver_at": deliver_at,
                             "msg": self.codec.encode(msg)})

    # ------------------------------------------------------------------
    # Window protocol
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.engine.now

    @property
    def next_time(self) -> Optional[float]:
        return self.engine.next_event_time

    @property
    def done(self) -> bool:
        """Workload completion, meaningful on the hub shard only (the
        driver replica elsewhere never processes its queue)."""
        return self.platform.driver.all_done if self.shard == 0 else False

    def inject(self, items: List[Dict[str, Any]]) -> int:
        """Schedule ferried boundary messages for local delivery."""
        for item in items:
            self.injector.inject(self.codec.decode(item["msg"]),
                                 item["deliver_at"])
        return len(items)

    def run_window(self, horizon: float,
                   chunk_seconds: Optional[float] = None) -> int:
        """Run every event strictly before *horizon*.

        With *chunk_seconds* set (solo fast-forward grants), execution
        stops within one chunk of the first boundary export: a long
        horizon is only safe while nothing crosses the boundary, so
        the first export ends the shard's claim to it.  The coordinator
        passes the sync window W as the chunk, which bounds the
        overshoot past an export at ``s`` to events before ``s + W`` —
        inside the horizon any reaction to the export could demand.
        """
        for conn in self._shard_conns:
            conn.begin_window()
        engine = self.engine
        events = 0
        if chunk_seconds is None or not self._shard_conns:
            return engine.run_window(horizon)
        while engine.now < horizon:
            nxt = engine.next_event_time
            if nxt is None or nxt >= horizon:
                # Nothing (relevant) left: jump the clock to the
                # horizon in one step instead of chunking empty time.
                events += engine.run_window(horizon)
                break
            events += engine.run_window(min(horizon,
                                            nxt + chunk_seconds))
            if self._outbox:
                break
        return events

    def drain_outbox(self) -> List[Dict[str, Any]]:
        outbox, self._outbox = self._outbox, []
        return outbox

    def stop(self, completed: bool) -> None:
        """Global termination: the coordinator decided the whole run is
        over (every shard dry)."""
        if completed:
            self.simulation.mark_completed()
        self.engine.finish_windows()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Timing-independent committed work on this shard's owned
        components — the anchors of the sharded-vs-monolithic
        equivalence check (instruction totals must match exactly)."""
        instructions = wgs = mem_reqs = 0
        for comp in self.simulation.components:
            if isinstance(comp, ComputeUnit):
                instructions += comp.num_instructions
                wgs += comp.num_wgs_completed
                mem_reqs += comp.num_mem_reqs
        return {"instructions": instructions, "wgs": wgs,
                "mem_reqs": mem_reqs}

    def progress(self) -> List[Dict[str, Any]]:
        """Per-kernel progress of this shard's local share.  Each
        workgroup executes on exactly one shard, so summing
        ``completed``/``ongoing`` across shards is exact; ``total`` is
        the global grid size (identical replica everywhere)."""
        return [{"name": k.descriptor.name, "completed": k.completed,
                 "ongoing": k.ongoing, "total": k.total}
                for k in self.platform.driver.kernels]
