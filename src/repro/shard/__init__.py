"""Sharded simulation: one platform, many processes.

Python's GIL caps a monolithic simulation at one core no matter how
many threads it spawns, so the only road to parallel speedup is
*processes* — and processes mean partitioning the platform and
synchronizing virtual time conservatively across the boundary.  This
package implements that execution mode:

* :mod:`.partition` — name-based ownership: chiplet blocks per shard,
  host side (driver, switch) on the hub shard 0.
* :mod:`.boundary` — the wire codec for boundary-crossing messages,
  the proxy :class:`ShardConnection` that exports remote sends, and
  the :class:`BoundaryInjector` that lands ferried arrivals in
  timestamp order.
* :mod:`.runtime` — the per-process shard: build the full platform,
  prune to the owned slice, rewire boundary edges, run in granted
  windows.
* :mod:`.worker` — the subprocess entry point
  (``python -m repro.shard.worker``), speaking the fleet control
  framing on its pipes.
* :mod:`.coordinator` — spawns the workers, drives the conservative
  window barrier, routes boundary traffic, and federates the shards'
  AkitaRTM dashboards behind one gateway.
"""

from .boundary import (
    BoundaryCodec,
    BoundaryInjector,
    ShardConnection,
    build_port_registry,
)
from .coordinator import (
    ShardCoordinator,
    ShardGateway,
    ShardResult,
    ShardWorkerError,
    run_sharded,
)
from .partition import chiplet_owners, owner_of_name
from .runtime import ShardRuntime, resolve_workload, workload_spec

__all__ = [
    "BoundaryCodec",
    "BoundaryInjector",
    "ShardConnection",
    "ShardCoordinator",
    "ShardGateway",
    "ShardResult",
    "ShardRuntime",
    "ShardWorkerError",
    "build_port_registry",
    "chiplet_owners",
    "owner_of_name",
    "resolve_workload",
    "run_sharded",
    "workload_spec",
]
