"""Shard worker process: ``python -m repro.shard.worker``.

Speaks the fleet control framing (bare JSON command lines on stdin,
``@fleet``-prefixed event lines on stdout — see
:mod:`repro.fleet.protocol`) with the :class:`ShardCoordinator`:

======================  =================================================
manager → worker        worker → manager
======================  =================================================
``init``                ``shard-ready`` (url, window, next event time)
``inject``              —
``window``              ``shard-outbox``* then ``window-done``
``stop``                ``shard-stopped`` (final counters + exposition)
``shutdown``            —
======================  =================================================

The outbox is split into bounded batches before framing
(:func:`split_batches`) so a hot window can never trip the decoder's
line cap and silently lose boundary messages.

Monitoring is opt-in per the ``init`` flags: ``metrics`` attaches a
:class:`Monitor` with simulation instrumentation (counter families in
the final exposition), ``monitor`` additionally serves the per-shard
AkitaRTM dashboard the coordinator's gateway federates.  Both default
off so benchmark comparisons against an uninstrumented monolithic run
stay fair.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional

from ..fleet.protocol import decode_command, emit, split_batches
from ..gpu.platform import GPUPlatformConfig
from .runtime import ShardRuntime, resolve_workload


class _WorkerState:
    def __init__(self) -> None:
        self.runtime: Optional[ShardRuntime] = None
        self.monitor = None
        self.server = None
        self.shard = -1


def _handle_init(state: _WorkerState, cmd: Dict[str, Any]) -> None:
    config = GPUPlatformConfig(**cmd["config"])
    workload = resolve_workload(cmd["workload"])
    state.shard = cmd["shard"]
    state.runtime = ShardRuntime(config, workload, cmd["shard"],
                                 cmd["num_shards"])
    url = None
    if cmd.get("metrics") or cmd.get("monitor"):
        from ..core import Monitor
        # Constructed after pruning: the monitor sees (and instruments)
        # only the components this shard owns.
        state.monitor = Monitor(state.runtime.simulation)
        state.monitor.attach_driver(state.runtime.platform.driver)
        if cmd.get("metrics"):
            state.monitor.ensure_sim_metrics().start()
        if cmd.get("monitor"):
            url = state.monitor.start_server(port=cmd.get("port", 0))
            state.monitor.start_sampler()
    emit({"event": "shard-ready", "shard": state.shard, "url": url,
          "window_cycles": config.shard_window_cycles,
          "next_time": state.runtime.next_time,
          "now": state.runtime.now})


def _handle_window(state: _WorkerState, cmd: Dict[str, Any]) -> None:
    runtime = state.runtime
    events = runtime.run_window(cmd["horizon"],
                                cmd.get("chunk_seconds"))
    for batch in split_batches(runtime.drain_outbox()):
        emit({"event": "shard-outbox", "shard": state.shard,
              "msgs": batch})
    emit({"event": "window-done", "shard": state.shard,
          "next_time": runtime.next_time, "now": runtime.now,
          "events": events, "done": runtime.done,
          "progress": runtime.progress()})


def _handle_stop(state: _WorkerState, cmd: Dict[str, Any]) -> None:
    runtime = state.runtime
    runtime.stop(bool(cmd.get("completed")))
    metrics_text = None
    if state.monitor is not None:
        from ..metrics import expose
        metrics_text = expose(state.monitor.metrics)
    payload = {"event": "shard-stopped", "shard": state.shard,
               "now": runtime.now,
               "sim_time": runtime.engine.last_event_time,
               "events": runtime.engine.event_count,
               "injected": runtime.injector.injected,
               "metrics_text": metrics_text}
    payload.update(runtime.counters())
    emit(payload)
    if state.monitor is not None:
        state.monitor.stop_server()


def serve() -> int:
    """Command loop; returns the process exit code."""
    state = _WorkerState()
    for line in sys.stdin:
        cmd = decode_command(line)
        if cmd is None:
            continue
        op = cmd.get("cmd")
        try:
            if op == "init":
                _handle_init(state, cmd)
            elif op == "inject":
                state.runtime.inject(cmd["msgs"])
            elif op == "window":
                _handle_window(state, cmd)
            elif op == "stop":
                _handle_stop(state, cmd)
                return 0
            elif op == "shutdown":
                return 0
        except Exception as exc:  # noqa: BLE001 - reported, not fatal here
            emit({"event": "shard-error", "shard": state.shard,
                  "op": op, "error": f"{type(exc).__name__}: {exc}"})
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(serve())
