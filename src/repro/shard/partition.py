"""Partitioning the platform's component namespace across shards.

A sharded run splits one multi-chiplet :class:`~repro.gpu.platform.
GPUPlatform` into ``num_shards`` processes along the chiplet boundary:
contiguous chiplet blocks (sizes differing by at most one, computed by
:meth:`GPUPlatformConfig.partition_chiplets`), with shard 0 — the *hub*
— additionally owning the host side (``Driver``) and the shared
``InterChipletSwitch``.

Ownership is decidable from a component or port *name* alone, which is
what makes cross-process message routing a pure function: every port
name starts with its root component's segment (``GPU[2].RDMA.NetPort``,
``Driver.ToGPU``, ``InterChipletSwitch.Port1``), so the coordinator can
route a wire message to its destination shard without any knowledge of
the object graph.
"""

from __future__ import annotations

from typing import Dict, List

from ..akita.naming import split_indexed

__all__ = ["chiplet_owners", "owner_of_name"]


def chiplet_owners(blocks: List[List[int]]) -> Dict[int, int]:
    """Invert a partition (shard → chiplets) into chiplet → shard."""
    owners: Dict[int, int] = {}
    for shard, chiplets in enumerate(blocks):
        for c in chiplets:
            owners[c] = shard
    return owners


def owner_of_name(name: str, owners: Dict[int, int]) -> int:
    """Shard owning the component/port with hierarchical *name*.

    ``GPU[c].*`` belongs to chiplet *c*'s owner; everything else
    (``Driver``, ``InterChipletSwitch``) belongs to the hub shard 0.
    """
    root = name.split(".", 1)[0]
    base, indices = split_indexed(root)
    if base == "GPU" and indices:
        return owners[indices[0]]
    return 0
