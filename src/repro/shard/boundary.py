"""The shard boundary: wire codec, proxy connections, and injection.

Three pieces turn an intra-process link into a cross-process one:

* :class:`BoundaryCodec` — translates the messages that can legally
  cross a shard boundary (kernel launches and completions on the
  driver↔CP link; :class:`~repro.gpu.mem.NetMsg` envelopes on the
  chiplet↔switch links) to and from JSON.  Ports travel as names and
  are resolved against the receiving shard's registry — every shard
  builds the *full* platform, so a dormant replica port exists for
  every name and acts as a stable address anchor.

* :class:`ShardConnection` — a :class:`DirectConnection` that *adopts*
  the locally-owned endpoints of a boundary edge.  Sends whose
  destination is local behave exactly as on the original link
  (reserved slot, latency, delivery event).  Sends to a non-adopted
  (remote) port are exported to the outbox with their arrival time
  ``now + latency``; the coordinator ferries them to the owning shard.
  Remote destinations have no slot to reserve, so backpressure is
  approximated with a per-window export quota per destination —
  senders denied by the quota are woken at the next window barrier.

* :class:`BoundaryInjector` — schedules a decoded inbound message for
  delivery at its arrival time via an engine event, so cross-shard
  deliveries interleave with local events in timestamp order exactly
  like a local :class:`DeliveryEvent` would.

The conservative window invariant makes all of this safe: a boundary
message sent at time *t* arrives at ``t + latency ≥ t + W``, and no
shard ever runs more than ``W`` past the global minimum next-event
time, so an injected arrival is never in the receiving shard's past.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from ..akita.connection import DirectConnection
from ..akita.engine import Engine
from ..akita.errors import PortError
from ..akita.event import Event
from ..akita.message import Msg
from ..akita.port import Port
from ..gpu.driver import Driver
from ..gpu.mem import (
    DataReadyRsp,
    MemReq,
    MemRsp,
    NetMsg,
    ReadReq,
    WriteDoneRsp,
    WriteReq,
)
from ..gpu.protocol import KernelCompleteMsg, LaunchKernelMsg

__all__ = ["build_port_registry", "BoundaryCodec", "ShardConnection",
           "BoundaryInjector"]


def build_port_registry(simulation) -> Dict[str, Port]:
    """Name → port map over *every* component of *simulation*.

    Must be captured **before** pruning: boundary messages address
    ports of components the local shard does not own (the dormant
    replicas), and those must stay resolvable after the components
    leave the monitored registry.
    """
    registry: Dict[str, Port] = {}
    for comp in simulation.components:
        for port in comp.ports:
            registry[port.name] = port
    return registry


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class BoundaryCodec:
    """Encode/decode the boundary-crossing message vocabulary.

    Identity rules the codec must preserve:

    * A :class:`MemReq` keeps its ``id`` across the wire — the origin
      RDMA's outstanding-request table is keyed by it, and the remote
      side's eventual response carries it back in ``respond_to``.
    * ``LaunchKernelMsg.kernel`` travels as an *index* into the
      driver's launch list.  Every shard enqueues the identical
      workload into its (possibly dormant) driver replica, so the
      index resolves to the congruent local :class:`KernelState`.
    * ``src`` travels as a port name: the command processor records
      ``msg.src`` of a launch as its reply-to address, and routing the
      completion back over the wire requires that address to be the
      (dormant) driver port replica, not ``None``.
    """

    def __init__(self, registry: Dict[str, Port], driver: Driver):
        self._registry = registry
        self._driver = driver

    # -- encode ---------------------------------------------------------
    def encode(self, msg: Msg) -> Dict[str, Any]:
        if isinstance(msg, LaunchKernelMsg):
            return {
                "kind": "launch",
                "dst": msg.dst.name,
                "src": msg.src.name if msg.src is not None else None,
                "kernel": self._kernel_index(msg),
                "wg_ids": list(msg.wg_ids),
            }
        if isinstance(msg, KernelCompleteMsg):
            return {
                "kind": "kernel_complete",
                "dst": msg.dst.name,
                "src": msg.src.name if msg.src is not None else None,
                "launch_id": msg.launch_id,
            }
        if isinstance(msg, NetMsg):
            return {
                "kind": "net",
                "dst": msg.dst.name,
                "src": msg.src.name if msg.src is not None else None,
                "final_dst": msg.final_dst.name,
                "origin": msg.origin.name,
                "payload": self._encode_payload(msg.payload),
            }
        raise TypeError(
            f"{type(msg).__name__} cannot cross a shard boundary")

    def _kernel_index(self, msg: LaunchKernelMsg) -> int:
        for i, state in enumerate(self._driver.kernels):
            if state is msg.kernel:
                return i
        raise ValueError(
            f"launch references a kernel unknown to the driver: {msg!r}")

    @staticmethod
    def _encode_payload(payload: Msg) -> Dict[str, Any]:
        if isinstance(payload, MemReq):
            kind = "write" if isinstance(payload, WriteReq) else "read"
            return {"kind": kind, "id": payload.id,
                    "address": payload.address,
                    "access_bytes": payload.access_bytes,
                    "pid": payload.pid}
        if isinstance(payload, DataReadyRsp):
            return {"kind": "data_ready", "respond_to": payload.respond_to,
                    "size_bytes": payload.size_bytes}
        if isinstance(payload, WriteDoneRsp):
            return {"kind": "write_done", "respond_to": payload.respond_to}
        raise TypeError(
            f"{type(payload).__name__} cannot cross the network boundary")

    # -- decode ---------------------------------------------------------
    def decode(self, wire: Dict[str, Any]) -> Msg:
        kind = wire["kind"]
        dst = self._port(wire["dst"])
        if kind == "launch":
            kernel = self._driver.kernels[wire["kernel"]]
            msg: Msg = LaunchKernelMsg(dst, kernel, list(wire["wg_ids"]))
        elif kind == "kernel_complete":
            msg = KernelCompleteMsg(dst, wire["launch_id"])
        elif kind == "net":
            payload = self._decode_payload(wire["payload"])
            msg = NetMsg(dst, payload, self._port(wire["final_dst"]),
                         self._port(wire["origin"]))
        else:
            raise ValueError(f"unknown boundary message kind {kind!r}")
        src = wire.get("src")
        if src is not None:
            msg.src = self._port(src)
        return msg

    def _decode_payload(self, wire: Dict[str, Any]) -> Msg:
        kind = wire["kind"]
        if kind in ("read", "write"):
            cls = WriteReq if kind == "write" else ReadReq
            payload = cls(None, wire["address"], wire["access_bytes"],
                          wire["pid"])
            # Preserve the origin shard's request id: the response the
            # remote side builds answers *this* id, and the origin's
            # transaction table is keyed by it.
            payload.id = wire["id"]
            return payload
        if kind == "data_ready":
            return DataReadyRsp(None, wire["respond_to"],
                                data_bytes=wire["size_bytes"] - 16)
        if kind == "write_done":
            return WriteDoneRsp(None, wire["respond_to"])
        raise ValueError(f"unknown payload kind {kind!r}")

    def _port(self, name: str) -> Port:
        try:
            return self._registry[name]
        except KeyError:
            raise ValueError(f"unknown boundary port {name!r}") from None


# ----------------------------------------------------------------------
# Proxy connection
# ----------------------------------------------------------------------
class ShardConnection(DirectConnection):
    """Boundary edge of a sharded platform.

    Locally-owned endpoints of the original link are *adopted*
    (rebound to this connection); sends between adopted ports follow
    the inherited fixed-latency path unchanged.  Sends addressed to a
    port that was **not** adopted are exports: the message is handed
    to *export* together with its arrival time and the coordinator
    ferries it to the destination's owner.

    A remote destination's buffer lives in another process, so slot
    reservation is impossible.  Instead each remote destination gets a
    per-window export quota (a small multiple of its buffer capacity);
    the receiving side's injector absorbs any short-term excess by
    retrying full buffers cycle by cycle.  Senders denied by an
    exhausted quota are remembered and woken at the next window start.
    """

    #: Export quota per remote destination per window, as a multiple of
    #: the destination buffer's capacity.  Large enough never to stall
    #: a well-matched producer/consumer pair inside one window, small
    #: enough to bound the injector's retry backlog.
    QUOTA_FACTOR = 4

    def __init__(self, name: str, engine: Engine, latency: float,
                 export: Callable[[Msg, float], None]):
        super().__init__(name, engine, latency)
        self._export = export
        self._exported_this_window: Dict[Port, int] = {}
        self._blocked: List[Port] = []
        #: Inbound messages waiting for a free slot at their (full)
        #: destination buffer, per port.  Local sends reserve their
        #: slot at send time and never face this; ferried messages
        #: have no reservation and must wait their turn.
        self._parked: Dict[Port, Deque[Msg]] = {}
        self.exported_count = 0
        self.parked_count = 0

    def adopt(self, port: Port) -> None:
        """Take over *port* from the connection it was built with."""
        port.replace_connection(self)
        self._ports.append(port)
        self._inflight[port] = 0

    # -- sending --------------------------------------------------------
    def can_send(self, src: Port, msg: Msg) -> bool:
        dst = msg.dst
        if dst is None:
            raise PortError(
                f"message {msg!r} has no destination on connection "
                f"{self.name}")
        if dst in self._inflight:
            return super().can_send(src, msg)
        quota = dst.buf.capacity * self.QUOTA_FACTOR
        if self._exported_this_window.get(dst, 0) >= quota:
            if src not in self._blocked:
                self._blocked.append(src)
            return False
        return True

    def send(self, src: Port, msg: Msg) -> None:
        dst = msg.dst
        assert dst is not None
        if dst in self._inflight:
            super().send(src, msg)
            return
        msg.send_time = self._engine.now
        self.msg_count += 1
        self.exported_count += 1
        self._exported_this_window[dst] = \
            self._exported_this_window.get(dst, 0) + 1
        self._export(msg, self._engine.now + self._latency)

    # -- inbound delivery -----------------------------------------------
    def deliver_inbound(self, msg: Msg) -> bool:
        """Land a ferried message at its (adopted) destination port.

        A full buffer parks the message instead of failing: the next
        :meth:`notify_available` for that port — fired whenever its
        component consumes a message — drains the parked queue in FIFO
        order before any blocked sender gets the slot.  This mirrors
        the reservation local sends enjoy without retry-polling the
        buffer every cycle (which turns a deep backlog into a
        quadratic event storm).
        """
        dst = msg.dst
        parked = self._parked.get(dst)
        if not parked and dst.buf.can_push():
            dst.deliver(msg)
            return True
        if parked is None:
            parked = self._parked[dst] = deque()
        parked.append(msg)
        self.parked_count += 1
        return False

    def notify_available(self, port: Port) -> None:
        parked = self._parked.get(port)
        if parked:
            while parked and port.buf.can_push():
                port.deliver(parked.popleft())
            if parked:
                return  # still full: the slot went to a parked message
        super().notify_available(port)

    # -- window barrier -------------------------------------------------
    def begin_window(self) -> None:
        """Reset export quotas and wake quota-blocked senders."""
        self._exported_this_window.clear()
        if not self._blocked:
            return
        blocked, self._blocked = self._blocked, []
        for port in blocked:
            if port.component is not None:
                port.component.notify_available(port)


# ----------------------------------------------------------------------
# Inbound injection
# ----------------------------------------------------------------------
class _InjectionEvent(Event):
    """Lands one ferried boundary message at its arrival time.

    Secondary, like :class:`DeliveryEvent`: at equal timestamps the
    receiving component's primary tick runs first, matching the
    ordering a local delivery would have had.
    """

    __slots__ = ("msg",)

    def __init__(self, time: float, injector: "BoundaryInjector",
                 msg: Msg):
        super().__init__(time, injector, secondary=True)
        self.msg = msg


class BoundaryInjector:
    """Delivers coordinator-ferried messages into local ports."""

    def __init__(self, engine: Engine):
        self._engine = engine
        self.injected = 0
        self.retries = 0

    def inject(self, msg: Msg, deliver_at: float) -> None:
        """Schedule *msg* for delivery at *deliver_at* (clamped to now;
        the window invariant makes past arrivals impossible, but a
        same-instant clamp keeps the engine's no-past-events contract
        airtight against float rounding)."""
        at = max(deliver_at, self._engine.now)
        self._engine.schedule(_InjectionEvent(at, self, msg))

    def handle(self, event: _InjectionEvent) -> None:
        msg = event.msg
        dst = msg.dst
        conn = dst.connection
        if isinstance(conn, ShardConnection):
            # Every boundary destination is a port the local shard
            # adopted; its connection parks the message on a full
            # buffer and drains it on the component's own
            # notify_available wake — no polling.
            conn.deliver_inbound(msg)
            self.injected += 1
            return
        if not dst.buf.can_push():
            # Fallback (un-adopted destination): behave like
            # link-level backpressure and retry next cycle.
            comp = dst.component
            freq = getattr(comp, "freq", None) or 1e9
            self.retries += 1
            self._engine.schedule(
                _InjectionEvent(event.time + 1.0 / freq, self, msg))
            return
        dst.deliver(msg)
        self.injected += 1
