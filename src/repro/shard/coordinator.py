"""Conservative time-window coordinator for sharded simulation.

The :class:`ShardCoordinator` spawns one worker process per shard
(``python -m repro.shard.worker``), speaks the fleet control framing
with each over its pipes, and drives the barrier loop of conservative
parallel discrete-event simulation:

1. Every shard reports its next pending event time at the barrier.
2. The coordinator grants the horizon ``T_min + W``, where ``T_min``
   is the minimum across *active* shards and ``W`` — the sync window —
   is the minimum cross-shard link latency from the config: no
   boundary message sent at or after ``T_min`` can arrive before the
   horizon, so every shard may run all events strictly before it.
3. Shards run their window and return their outbox of exported
   boundary messages; the coordinator routes each to the destination
   shard (by port *name* — see :func:`~repro.shard.partition.
   owner_of_name`) and injects them before granting the next window.

When exactly one shard is active the lockstep window would degrade to
ping-pong with nobody to synchronize against, so the coordinator
grants a long *solo* horizon instead; the worker runs it in chunks and
yields early on its first boundary export (see
:meth:`ShardRuntime.run_window`).

The coordinator is also the monitoring front door of a sharded run:
its gateway federates every shard's AkitaRTM server into one dashboard
— ``/metrics`` merges the shards' expositions under ``shard=`` labels
together with the coordinator's own barrier metrics, ``/api/progress``
sums per-kernel progress (each workgroup runs on exactly one shard),
``/api/buffers`` concatenates buffer rows.
"""

from __future__ import annotations

import dataclasses
import os
import queue
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.request import Request, urlopen

from ..core.server import (
    BadRequest,
    HTTPServerThread,
    JSONRequestHandler,
)
from ..fleet.protocol import FrameDecoder, encode_command, split_batches
from ..gpu.platform import GPUPlatformConfig
from ..metrics import CONTENT_TYPE as _PROM_CONTENT_TYPE
from ..metrics import MetricRegistry, expose, federate
from ..workloads import Workload
from .partition import chiplet_owners, owner_of_name
from .runtime import workload_spec

__all__ = ["ShardCoordinator", "ShardGateway", "ShardResult",
           "ShardWorkerError", "run_sharded"]

#: Wall-clock budget for any single worker response.  Windows are
#: milliseconds; even a solo fast-forward grant stays far inside this.
_DEFAULT_TIMEOUT = 120.0

#: Timeout for scraping a shard's live dashboard endpoints.
_PROXY_TIMEOUT = 5.0

#: Solo-mode grant length in cycles: long enough to amortize the
#: barrier away during single-shard phases (kernel setup, memcopies,
#: drain), short enough that the dashboard's picture of a solo shard
#: stays fresh.
_SOLO_GRANT_CYCLES = 100_000

_WINDOW_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5)


class ShardWorkerError(RuntimeError):
    """A shard worker died, reported an error, or stopped responding."""


@dataclasses.dataclass
class ShardResult:
    """Outcome of one sharded run."""

    completed: bool
    num_shards: int
    sim_time: float
    windows: int
    events: int
    instructions: int
    wgs: int
    mem_reqs: int
    boundary_messages: int
    injected: int
    wall_seconds: float
    #: Spawn + full-platform build + init handshake across all shards
    #: — the fixed cost a pool-style caller excludes from throughput
    #: (a shard set boots once, then runs a long simulation).
    boot_seconds: float
    #: Final per-shard metric expositions (``None`` when run without
    #: ``metrics``/``monitor``).
    shard_metrics: Dict[int, Optional[str]]
    shard_urls: Dict[int, Optional[str]]
    dashboard_url: Optional[str]
    progress: List[Dict[str, Any]]


class _ShardProc:
    """One worker process: pipes, framing, and a reader thread.

    The reader timestamps every decoded event at arrival, so barrier
    skew can be attributed to the shard that *finished* last, not the
    one the coordinator happened to drain last.
    """

    def __init__(self, shard: int):
        self.shard = shard
        src_root = str(Path(__file__).resolve().parents[2])
        env = os.environ.copy()
        env["PYTHONPATH"] = src_root + os.pathsep + env.get(
            "PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.shard.worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env)
        self.decoder = FrameDecoder()
        self._events: "queue.Queue[Optional[Tuple[float, dict]]]" = \
            queue.Queue()
        self._reader = threading.Thread(
            target=self._read, daemon=True,
            name=f"shard-reader-{shard}")
        self._reader.start()

    def _read(self) -> None:
        stream = self.proc.stdout
        while True:
            chunk = stream.read1(65536)
            if not chunk:
                break
            for event in self.decoder.feed(chunk):
                self._events.put((time.monotonic(), event))
        self.decoder.flush()
        self._events.put(None)

    def send(self, payload: Dict[str, Any]) -> None:
        try:
            self.proc.stdin.write(encode_command(payload))
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                f"shard {self.shard}: worker pipe closed "
                f"({exc})") from None

    def recv(self, timeout: float) -> Tuple[float, Dict[str, Any]]:
        """Next event with its arrival wall-clock timestamp."""
        try:
            item = self._events.get(timeout=timeout)
        except queue.Empty:
            raise ShardWorkerError(
                f"shard {self.shard}: no response within "
                f"{timeout:.0f}s") from None
        if item is None:
            raise ShardWorkerError(
                f"shard {self.shard}: worker exited unexpectedly "
                f"(rc={self.proc.poll()})")
        wall, event = item
        if event.get("event") == "shard-error":
            raise ShardWorkerError(
                f"shard {self.shard}: {event.get('op')} failed: "
                f"{event.get('error')}")
        return wall, event

    def close(self) -> None:
        if self.proc.poll() is None:
            try:
                self.send({"cmd": "shutdown"})
            except ShardWorkerError:
                pass
            try:
                self.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        for stream in (self.proc.stdin, self.proc.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass


class ShardCoordinator:
    """Drives N shard workers through conservative sync windows."""

    def __init__(self, config: GPUPlatformConfig, workload: Workload,
                 num_shards: int, *, monitor: bool = False,
                 metrics: bool = False, port: int = 0,
                 host: str = "127.0.0.1",
                 timeout: float = _DEFAULT_TIMEOUT,
                 solo_cycles: int = _SOLO_GRANT_CYCLES):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.config = config
        self.workload = workload
        self.num_shards = num_shards
        self.owners = chiplet_owners(config.partition_chiplets(num_shards))
        self.monitor = monitor
        self.metrics = metrics
        self.timeout = timeout
        self._solo_seconds = solo_cycles / config.freq
        self._window_seconds = config.shard_window_cycles / config.freq
        self.registry = MetricRegistry()
        self._m_window = self.registry.histogram(
            "rtm_shard_window_seconds",
            "Wall-clock duration of each sync-window round "
            "(grant to last shard's barrier arrival)",
            buckets=_WINDOW_BUCKETS)
        self._m_boundary = self.registry.counter(
            "rtm_shard_boundary_messages_total",
            "Boundary messages exported by each shard", ("shard",))
        self._m_barrier = self.registry.counter(
            "rtm_shard_barrier_wait_seconds_total",
            "Wall-clock time each shard spent finished at the barrier "
            "waiting for the slowest shard (smallest total = laggard)",
            ("shard",))
        self._procs: List[_ShardProc] = []
        self.shard_urls: Dict[int, Optional[str]] = {}
        self._last_progress: Dict[int, List[Dict[str, Any]]] = {}
        self._next_times: Dict[int, Optional[float]] = {}
        self._final_metrics: Dict[int, Optional[str]] = {}
        self._windows = 0
        self._boundary_total = 0
        self._boot_seconds = 0.0
        self._gateway: Optional[ShardGateway] = None
        self._gateway_port = port
        self._gateway_host = host

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def dashboard_url(self) -> Optional[str]:
        return self._gateway.url if self._gateway is not None else None

    def run(self) -> ShardResult:
        """Spawn, synchronize to completion, collect, and report.

        The workers are reaped before return, but the federating
        gateway (``monitor=True``) stays up — serving cached final
        expositions and progress — until :meth:`close`.
        """
        start_wall = time.monotonic()
        try:
            self._spawn()
            self._boot_seconds = time.monotonic() - start_wall
            if self.monitor:
                self._gateway = ShardGateway(
                    self, host=self._gateway_host,
                    port=self._gateway_port)
                self._gateway.start()
            completed = self._barrier_loop()
            result = self._collect(completed, start_wall)
        except Exception:
            self.close()
            raise
        for proc in self._procs:
            proc.close()
        return result

    def close(self) -> None:
        for proc in self._procs:
            proc.close()
        if self._gateway is not None:
            self._gateway.stop()
            self._gateway = None

    def _spawn(self) -> None:
        spec = workload_spec(self.workload)
        config_dict = dataclasses.asdict(self.config)
        self._procs = [_ShardProc(k) for k in range(self.num_shards)]
        for k, proc in enumerate(self._procs):
            proc.send({"cmd": "init", "shard": k,
                       "num_shards": self.num_shards,
                       "config": config_dict, "workload": spec,
                       "monitor": self.monitor, "metrics": self.metrics,
                       "port": 0})
        for k, proc in enumerate(self._procs):
            _, ready = proc.recv(self.timeout)
            if ready.get("event") != "shard-ready":
                raise ShardWorkerError(
                    f"shard {k}: expected shard-ready, got {ready!r}")
            self.shard_urls[k] = ready.get("url")
            self._next_times[k] = ready.get("next_time")

    # ------------------------------------------------------------------
    # The barrier loop
    # ------------------------------------------------------------------
    def _barrier_loop(self) -> bool:
        """Window rounds until every shard is dry; returns whether the
        hub's driver saw the workload through (vs. a global hang)."""
        hub_done = False
        while True:
            active = {k: t for k, t in self._next_times.items()
                      if t is not None}
            if not active:
                return hub_done
            t_min = min(active.values())
            solo = len(active) == 1
            grant = self._solo_seconds if solo else self._window_seconds
            horizon = t_min + grant
            # Only shards with work inside the horizon run; a dry
            # shard's clock is deliberately NOT advanced — injections
            # it receives later must not be time-warped forward by a
            # `max(deliver_at, now)` clamp.
            run_set = [k for k, t in active.items() if t < horizon]
            round_start = time.monotonic()
            for k in run_set:
                self._procs[k].send({
                    "cmd": "window", "horizon": horizon,
                    "chunk_seconds":
                        self._window_seconds if solo else None})
            inboxes: Dict[int, List[Dict[str, Any]]] = {}
            arrivals: Dict[int, float] = {}
            for k in run_set:
                hub_done = self._await_window(k, inboxes, arrivals,
                                              hub_done)
            t_last = max(arrivals.values())
            self._m_window.observe(t_last - round_start)
            for k, at in arrivals.items():
                self._m_barrier.labels(str(k)).inc(t_last - at)
            for owner, items in inboxes.items():
                for batch in split_batches(items):
                    self._procs[owner].send({"cmd": "inject",
                                             "msgs": batch})
                earliest = min(i["deliver_at"] for i in items)
                t = self._next_times[owner]
                self._next_times[owner] = (
                    earliest if t is None else min(t, earliest))
            self._windows += 1

    def _await_window(self, k: int,
                      inboxes: Dict[int, List[Dict[str, Any]]],
                      arrivals: Dict[int, float],
                      hub_done: bool) -> bool:
        proc = self._procs[k]
        while True:
            wall, event = proc.recv(self.timeout)
            kind = event.get("event")
            if kind == "shard-outbox":
                msgs = event["msgs"]
                self._boundary_total += len(msgs)
                self._m_boundary.labels(str(k)).inc(len(msgs))
                for item in msgs:
                    owner = owner_of_name(item["msg"]["dst"],
                                          self.owners)
                    inboxes.setdefault(owner, []).append(item)
            elif kind == "window-done":
                arrivals[k] = wall
                self._next_times[k] = event.get("next_time")
                self._last_progress[k] = event.get("progress") or []
                if k == 0:
                    hub_done = bool(event.get("done"))
                return hub_done
            # Anything else (stray noise) is skipped.

    # ------------------------------------------------------------------
    # Shutdown & result
    # ------------------------------------------------------------------
    def _collect(self, completed: bool,
                 start_wall: float) -> ShardResult:
        for proc in self._procs:
            proc.send({"cmd": "stop", "completed": completed})
        sim_time = 0.0
        events = instructions = wgs = mem_reqs = injected = 0
        for k, proc in enumerate(self._procs):
            while True:
                _, event = proc.recv(self.timeout)
                if event.get("event") == "shard-stopped":
                    break
            sim_time = max(sim_time,
                           event.get("sim_time", event.get("now", 0.0)))
            events += event.get("events", 0)
            instructions += event.get("instructions", 0)
            wgs += event.get("wgs", 0)
            mem_reqs += event.get("mem_reqs", 0)
            injected += event.get("injected", 0)
            self._final_metrics[k] = event.get("metrics_text")
        return ShardResult(
            completed=completed, num_shards=self.num_shards,
            sim_time=sim_time, windows=self._windows, events=events,
            instructions=instructions, wgs=wgs, mem_reqs=mem_reqs,
            boundary_messages=self._boundary_total, injected=injected,
            wall_seconds=time.monotonic() - start_wall,
            boot_seconds=self._boot_seconds,
            shard_metrics=dict(self._final_metrics),
            shard_urls=dict(self.shard_urls),
            dashboard_url=self.dashboard_url,
            progress=self.merged_progress())

    # ------------------------------------------------------------------
    # Federation (gateway data plane)
    # ------------------------------------------------------------------
    def federated_metrics(self) -> str:
        """One exposition: coordinator families as preamble, every
        shard's families labelled ``shard="k"``.

        Final expositions (cached at ``stop``) win over a live scrape;
        a shard that is both unstopped and unreachable is recorded as
        a comment, never an error — monitoring must not take down the
        run it watches.
        """
        expositions: List[Tuple[Dict[str, str], str]] = []
        unreachable: List[int] = []
        for k in range(self.num_shards):
            text = self._final_metrics.get(k)
            if text is None:
                text = self._scrape(k, "/metrics")
            if text is None:
                unreachable.append(k)
                continue
            expositions.append(({"shard": str(k)}, text))
        body = federate(expositions, label="shard",
                        preamble=expose(self.registry))
        for k in unreachable:
            body += f"# shard {k} unreachable\n"
        return body

    def _scrape(self, k: int, path: str) -> Optional[str]:
        url = self.shard_urls.get(k)
        if not url:
            return None
        try:
            with urlopen(Request(url + path, method="GET"),
                         timeout=_PROXY_TIMEOUT) as rsp:
                return rsp.read().decode("utf-8", "replace")
        except OSError:
            return None

    def merged_progress(self) -> List[Dict[str, Any]]:
        """Global per-kernel progress: each workgroup executes on
        exactly one shard, so summing the shards' local counts is
        exact; ``total`` is the (replicated) global grid size."""
        merged: List[Dict[str, Any]] = []
        for progress in self._last_progress.values():
            for i, bar in enumerate(progress):
                if i >= len(merged):
                    merged.append({"id": i + 1, "name": bar["name"],
                                   "completed": 0, "ongoing": 0,
                                   "total": bar["total"]})
                merged[i]["completed"] += bar["completed"]
                merged[i]["ongoing"] += bar["ongoing"]
        for bar in merged:
            bar["not_started"] = max(
                0, bar["total"] - bar["completed"] - bar["ongoing"])
        return merged

    def merged_buffers(self, params: Dict[str, str]) -> \
            List[Dict[str, Any]]:
        """Concatenated buffer rows from every live shard dashboard,
        each tagged with its shard id."""
        import json as _json
        query = ""
        if params:
            from urllib.parse import urlencode
            query = "?" + urlencode(params)
        rows: List[Dict[str, Any]] = []
        for k in range(self.num_shards):
            text = self._scrape(k, "/api/buffers" + query)
            if text is None:
                continue
            try:
                payload = _json.loads(text)
            except ValueError:
                continue
            for row in payload.get("buffers", []):
                row["shard"] = k
                rows.append(row)
        return rows

    def shard_status(self) -> Dict[str, Any]:
        return {
            "num_shards": self.num_shards,
            "windows": self._windows,
            "shards": [
                {"shard": k, "url": self.shard_urls.get(k),
                 "next_time": self._next_times.get(k)}
                for k in range(self.num_shards)],
        }


# ----------------------------------------------------------------------
# Gateway
# ----------------------------------------------------------------------
class _ShardGatewayHandler(JSONRequestHandler):
    """Bound per-gateway via a dynamic subclass (see ShardGateway)."""

    coordinator: ShardCoordinator = None  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, params = self._query()
        try:
            if path == "/metrics":
                body = self.coordinator.federated_metrics()
                self._send_body(body.encode("utf-8"),
                                _PROM_CONTENT_TYPE)
            elif path == "/api/progress":
                self._send_json(
                    {"progress": self.coordinator.merged_progress()})
            elif path == "/api/buffers":
                self._send_json(
                    {"buffers": self.coordinator.merged_buffers(params)})
            elif path == "/api/shards":
                self._send_json(self.coordinator.shard_status())
            else:
                self._send_error_json("not found", status=404)
        except BadRequest as exc:
            self._send_error_json(str(exc), status=400)
        except Exception as exc:  # noqa: BLE001 - handler must answer
            self._send_error_json(
                f"{type(exc).__name__}: {exc}", status=500)


class ShardGateway(HTTPServerThread):
    """The single pane of glass over a sharded run's dashboards."""

    thread_name = "rtm-shard-gateway"

    def __init__(self, coordinator: ShardCoordinator,
                 host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundShardGatewayHandler",
                       (_ShardGatewayHandler,),
                       {"coordinator": coordinator})
        super().__init__(handler, host=host, port=port)


# ----------------------------------------------------------------------
# Convenience entry point
# ----------------------------------------------------------------------
def run_sharded(config: GPUPlatformConfig, workload: Workload,
                num_shards: int, *, monitor: bool = False,
                metrics: bool = False, port: int = 0,
                timeout: float = _DEFAULT_TIMEOUT) -> ShardResult:
    """Run *workload* on *config* split across *num_shards* processes
    and tear everything down afterwards.  For a gateway that outlives
    the run (interactive monitoring), drive :class:`ShardCoordinator`
    directly and :meth:`~ShardCoordinator.close` it when finished."""
    coordinator = ShardCoordinator(
        config, workload, num_shards, monitor=monitor,
        metrics=metrics, port=port, timeout=timeout)
    try:
        return coordinator.run()
    finally:
        coordinator.close()
