"""AkitaRTM reproduction (MICRO 2024).

Layers, bottom-up:

* :mod:`repro.akita` — discrete-event simulation framework (the substrate).
* :mod:`repro.gpu` — an MGPUSim-style multi-chiplet GPU simulator.
* :mod:`repro.workloads` — the six MGPUSim benchmarks as trace-driven
  kernels.
* :mod:`repro.core` — **AkitaRTM itself**: the real-time monitoring
  plugin, HTTP API, dashboard, profiler, and analyzers.
* :mod:`repro.studies` — scripted-participant reproduction of the paper's
  user study.
"""

__version__ = "1.0.0"
