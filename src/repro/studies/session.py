"""The five-part study session protocol (paper §VI-A).

1. Demonstration of AkitaRTM on the im2col benchmark.
2. A simple FIR simulation the participant explores freely.
3. A problematic im2col simulation (multiple bottlenecks); the
   participant tries to identify the issues unaided.
4. A semi-structured interview (here: theme tagging over the recorded
   behaviour, mirroring the paper's open-coding step).
5. The post-study survey.

Every part runs against a *live* simulation monitored by a *real*
AkitaRTM server — participants are scripted, the tool is not.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import Monitor
from ..core.client import RTMClient
from ..gpu import GPUPlatform, GPUPlatformConfig
from ..workloads import FIR, Im2Col
from .participants import PARTICIPANTS, Findings, ParticipantAgent, Profile
from .survey import PAPER_FIGURE6, STATEMENTS, SurveyTable, respond

#: Behaviour-derived themes (paper §VI-B's open-coding results).
THEMES = (
    "companion",
    "different perspective",
    "learning tool",
    "needs guidance for new users",
)


def problem_platform_config() -> GPUPlatformConfig:
    """The 'problematic im2col' hardware.

    The paper's part-3 simulation was deliberately problematic
    ("multiple bottlenecks and performance issues were added"): here the
    L1s are starved (tiny cache + TLB, so the gathers miss) and the
    inter-chiplet network is slow, producing the expected cascade —
    ROB top ports pinned, L1s at MSHR capacity, transactions piling in
    the RDMA engines.
    """
    # CU supply (4 resident wavefronts x 64 outstanding) well exceeds
    # the ROB capacity (128): the top port stays pinned at 8/8 while
    # the ROB's own transaction count fluctuates between ~68 and 128
    # with retirement bursts — the exact pair of signatures in the
    # paper's Figure 5(c)/(d), whose reported range is 70-130.
    # The TLB covers the workload footprint and the translation
    # pipeline is shallow: in this case study the translator must NOT
    # be a bottleneck (Figure 5(d) shows it spiking and draining); the
    # pain is engineered into the miss stream and the network instead.
    return GPUPlatformConfig.small(
        num_chiplets=4, sas_per_gpu=2, cus_per_sa=2,
        max_outstanding_per_wf=64, rob_capacity=128,
        at_tlb_capacity=2048, at_max_inflight=8,
        net_msgs_per_cycle=1, net_link_latency_cycles=50)


def problem_workload() -> Im2Col:
    """im2col with the paper's per-image shape, scaled batch.

    The batch is large enough that the congested phase comfortably
    outlasts a participant's diagnostic walk (sessions abort the
    simulation when the participant is done, so a bigger batch does not
    lengthen the study)."""
    return Im2Col(image_width=24, image_height=24, channels=6,
                  batch=192, wavefronts_per_wg=4, images_per_wg=4,
                  cols_per_wavefront=32)


class _LiveSim:
    """A monitored simulation running in a background thread."""

    def __init__(self, config: GPUPlatformConfig, workload):
        self.platform = GPUPlatform(config)
        self.monitor = Monitor(self.platform.simulation)
        self.monitor.attach_driver(self.platform.driver)
        workload.enqueue(self.platform.driver)
        self.url = self.monitor.start_server()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> RTMClient:
        self._thread = threading.Thread(
            target=lambda: self.platform.run(hang_wait=10.0), daemon=True)
        self._thread.start()
        return RTMClient(self.url)

    def warm_up(self, timeout: float = 60.0) -> None:
        """Wait until the kernel is running and backpressure developed
        (some buffer pinned at capacity) before the participant looks.

        The enqueued H2D copy runs first; inspecting during the copy
        would show an idle memory hierarchy.
        """
        deadline = time.monotonic() + timeout
        analyzer = self.monitor.analyzer
        driver = self.platform.driver
        while (not self.platform.simulation.done
               and time.monotonic() < deadline):
            kernel_running = any(k.ongoing > 0 for k in driver.kernels)
            pinned = any(row.percent >= 1.0
                         for row in analyzer.snapshot(top=5))
            if kernel_running and pinned:
                return
            time.sleep(0.02)

    def stop(self) -> None:
        self.platform.simulation.abort()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self.monitor.stop_server()


@dataclass
class SessionResult:
    """Everything recorded about one participant's session."""

    profile: Profile
    warmup: Findings
    findings: Findings
    responses: List[int]
    themes: List[str] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.findings.success


@dataclass
class StudyResult:
    """The aggregated study (paper §VI-B/C)."""

    sessions: List[SessionResult]
    survey: SurveyTable

    @property
    def successful_participants(self) -> List[str]:
        return [s.profile.code for s in self.sessions if s.success]

    @property
    def feature_usage(self) -> Dict[str, int]:
        usage: Dict[str, int] = {}
        for s in self.sessions:
            for source in (s.warmup, s.findings):
                for feature, count in source.feature_usage.items():
                    usage[feature] = usage.get(feature, 0) + count
        return usage

    @property
    def most_used_feature(self) -> str:
        # Per the paper: bottleneck analyzer; compare part-3 usage only.
        usage: Dict[str, int] = {}
        for s in self.sessions:
            for feature, count in s.findings.feature_usage.items():
                usage[feature] = usage.get(feature, 0) + count
        return max(usage, key=lambda f: usage[f])

    @property
    def least_used_feature(self) -> str:
        usage = self.feature_usage
        return min(usage, key=lambda f: usage[f])

    def matches_paper_figure6(self) -> bool:
        return self.survey.matches(PAPER_FIGURE6)

    def format_report(self) -> str:
        """A human-readable study report (sessions, themes, survey)."""
        lines = ["# User study report", ""]
        lines.append("## Sessions")
        for s in self.sessions:
            profile = s.profile
            lines.append(
                f"* **{profile.code}** ({profile.level}, "
                f"{'prior' if profile.prior_experience else 'no prior'}"
                f" experience) — "
                f"{'SUCCESS' if s.success else 'did not complete'}"
                f" — bottlenecks: "
                f"{', '.join(sorted(s.findings.bottlenecks)) or 'none'}")
            for observation in s.findings.observations:
                lines.append(f"    * {observation}")
            if s.themes:
                lines.append(f"    * themes: {', '.join(s.themes)}")
        lines.append("")
        lines.append("## Feature usage (all parts)")
        for feature, count in sorted(self.feature_usage.items(),
                                     key=lambda kv: -kv[1]):
            lines.append(f"* {feature}: {count}")
        lines.append("")
        lines.append("## Survey")
        lines.append("```")
        lines.append(self.survey.format())
        lines.append("```")
        lines.append("")
        lines.append(f"Matches the paper's Figure 6: "
                     f"{self.matches_paper_figure6()}")
        return "\n".join(lines)


def _derive_themes(result: SessionResult) -> List[str]:
    """Open-coding emulation: behaviour → themes (paper §VI-B)."""
    themes = []
    if result.findings.feature_usage.get("component_detail", 0) > 0:
        themes.append("companion")          # fluid unaided navigation
    if result.success:
        themes.append("different perspective")  # real-time bottleneck id
    if (result.profile.level == "undergrad"
            and not result.success):
        themes.append("learning tool")      # PT1/PT6's learning outcome
    if not result.profile.prior_experience:
        themes.append("needs guidance for new users")
    return themes


def run_session(profile: Profile,
                think_time: float = 0.01) -> SessionResult:
    """Run one participant through parts 2–5.

    (Part 1, the demonstration, is the same simulation as part 3 driven
    by the experimenter; it exercises no additional tool surface, so the
    harness folds it into part 3's setup.)
    """
    # Part 2: FIR warm-up.
    fir_sim = _LiveSim(GPUPlatformConfig.small(num_chiplets=1),
                       FIR(num_samples=8192))
    client = fir_sim.start()
    agent = ParticipantAgent(profile, client, think_time)
    warmup = agent.explore()
    fir_sim.stop()

    # Part 3: problematic im2col.
    problem = _LiveSim(problem_platform_config(), problem_workload())
    client = problem.start()
    problem.warm_up()
    agent = ParticipantAgent(profile, client, think_time)
    findings = agent.find_bottlenecks()
    agent.maybe_profile(findings)
    problem.stop()

    # Part 5: survey (part 4's themes are derived below).
    responses = respond(profile, findings)
    result = SessionResult(profile, warmup, findings, responses)
    result.themes = _derive_themes(result)
    return result


def run_study(participants: Optional[List[Profile]] = None,
              think_time: float = 0.01) -> StudyResult:
    """Run the full six-participant study and aggregate Figure 6."""
    sessions = [run_session(p, think_time)
                for p in (participants or PARTICIPANTS)]
    survey = SurveyTable.from_responses([s.responses for s in sessions])
    return StudyResult(sessions, survey)
