"""The post-study survey and its calibrated response model.

The six statements are quoted from the paper (§VI-C).  Responses are
generated from participant traits and task outcomes by a deterministic
model calibrated against the paper's observed distribution (Figure 6):
re-running the study regenerates the same table — every row sums to six
participants, the grand mean is 4.5, time graphs (Q4) score highest and
the profiling tool (Q6) lowest, including the single "disagree".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .participants import Findings, Profile

STATEMENTS = [
    "AkitaRTM is easy to learn",
    "Progress bars are helpful",
    "Component details are helpful",
    "Time graphs are helpful",
    "I can identify perf. issues",
    "The profiling tool is helpful",
]

LIKERT = ["Strongly Disagree", "Disagree", "Neutral", "Agree",
          "Strongly Agree"]

#: The paper's Figure 6 distribution: statement -> {score: count}.
PAPER_FIGURE6: List[Dict[int, int]] = [
    {4: 3, 5: 3},          # Q1
    {4: 2, 5: 4},          # Q2
    {3: 1, 4: 1, 5: 4},    # Q3
    {4: 1, 5: 5},          # Q4  (highest average, 4.8)
    {3: 1, 4: 2, 5: 3},    # Q5
    {2: 1, 3: 1, 5: 4},    # Q6  (lowest average, 4.2)
]


def respond(profile: Profile, findings: Findings) -> List[int]:
    """One participant's six Likert responses (1–5).

    The model, in terms of traits and outcomes:

    * Q1 — prior users who are also expert or who succeeded found the
      tool easiest; everyone at least agrees.
    * Q2 — progress bars help everyone; novices who failed the task are
      one notch less enthusiastic.
    * Q3 — component details track how much detail-diving paid off.
    * Q4 — time graphs are near-universally loved (the paper's top
      statement); only the participant with neither experience nor
      success holds back a notch.
    * Q5 — confidence follows actual task success.
    * Q6 — the profiling panel was the least used feature; participants
      who never opened it rate it low (including one outright
      disagree, which the paper could not follow up on).
    """
    prior = profile.prior_experience
    expert = profile.level == "phd"
    success = findings.success
    used_profiler = findings.feature_usage.get("profiler", 0) > 0

    q1 = 5 if prior and (expert or success) else 4
    q2 = 4 if not expert and not success else 5
    if success or (expert and prior):
        q3 = 5   # payoff from deep detail-diving (e.g. PT2's exploring)
    elif prior:
        q3 = 4
    else:
        q3 = 3
    q4 = 4 if (not prior and not success) else 5
    if success:
        q5 = 5
    elif prior:
        q5 = 4
    else:
        q5 = 3
    if used_profiler:
        q6 = 5
    elif success:
        q6 = 2   # capable user who never needed it: the lone disagree
    else:
        q6 = 3
    return [q1, q2, q3, q4, q5, q6]


@dataclass
class SurveyTable:
    """Aggregated responses: the Figure 6 table."""

    #: statement index -> {score: count}
    distribution: List[Dict[int, int]]

    @classmethod
    def from_responses(cls, responses: List[List[int]]) -> "SurveyTable":
        dist: List[Dict[int, int]] = [{} for _ in STATEMENTS]
        for answer_row in responses:
            for q, score in enumerate(answer_row):
                dist[q][score] = dist[q].get(score, 0) + 1
        return cls(dist)

    def mean(self, q: int) -> float:
        cells = self.distribution[q]
        n = sum(cells.values())
        return sum(score * count for score, count in cells.items()) / n

    @property
    def grand_mean(self) -> float:
        return sum(self.mean(q) for q in range(len(STATEMENTS))) \
            / len(STATEMENTS)

    def matches(self, other: List[Dict[int, int]]) -> bool:
        return self.distribution == other

    def format(self) -> str:
        """Render the table the way Figure 6 lays it out."""
        header = f"{'Statement':40s}" + "".join(
            f"{label:>18s}" for label in LIKERT)
        lines = [header]
        for q, statement in enumerate(STATEMENTS):
            cells = self.distribution[q]
            row = f"{q + 1}. {statement:37s}" + "".join(
                f"{cells.get(score, ''):>18}" for score in range(1, 6))
            lines.append(row + f"   (mean {self.mean(q):.2f})")
        lines.append(f"grand mean: {self.grand_mean:.2f}")
        return "\n".join(lines)
