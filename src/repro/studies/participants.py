"""Scripted study participants.

We obviously cannot re-run an IRB-approved human study; what we *can*
reproduce is the study's mechanics: six participants with the paper's
stated profiles interacting with the real AkitaRTM HTTP API on a live
problematic simulation, exhibiting behaviour consistent with what the
paper reports (who used which features, who identified which
bottlenecks), so that the whole tool surface is exercised end to end and
Figure 6 can be regenerated.

Participant profiles (paper §VI-A):

* PT2, PT3, PT4 — Ph.D. students; PT1, PT5, PT6 — undergraduates.
* PT2, PT3, PT5, PT6 had prior AkitaRTM experience.
* PT3, PT4, PT5 successfully identified the ROB/RDMA bottlenecks.

The ``analysis_depth`` trait (deep / medium / shallow) encodes how far
each participant pushed the bottleneck walk — the one behavioural
calibration needed to match the paper's reported outcomes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..core.client import RTMClient, RTMClientError


@dataclass(frozen=True)
class Profile:
    """Static traits of one participant."""

    code: str                 # "PT1" .. "PT6"
    level: str                # "phd" | "undergrad"
    prior_experience: bool
    analysis_depth: str       # "deep" | "medium" | "shallow"


#: The paper's six participants.
PARTICIPANTS: List[Profile] = [
    Profile("PT1", "undergrad", False, "shallow"),
    Profile("PT2", "phd", True, "medium"),
    Profile("PT3", "phd", True, "deep"),
    Profile("PT4", "phd", False, "deep"),
    Profile("PT5", "undergrad", True, "deep"),
    Profile("PT6", "undergrad", True, "shallow"),
]


@dataclass
class Findings:
    """What a participant did and concluded during part 3."""

    bottlenecks: Set[str] = field(default_factory=set)
    feature_usage: Dict[str, int] = field(default_factory=dict)
    observations: List[str] = field(default_factory=list)

    def used(self, feature: str) -> None:
        self.feature_usage[feature] = self.feature_usage.get(feature, 0) + 1

    @property
    def success(self) -> bool:
        """The paper's success criterion: problems identified at the
        ROB *and* the RDMA engine."""
        return {"ROB", "RDMA"} <= self.bottlenecks


class ParticipantAgent:
    """Drives the RTM HTTP API the way one participant did."""

    def __init__(self, profile: Profile, client: RTMClient,
                 think_time: float = 0.02):
        self.profile = profile
        self.client = client
        self.think_time = think_time

    def _think(self) -> None:
        time.sleep(self.think_time)

    # ------------------------------------------------------------------
    # Part 2: FIR warm-up — get comfortable, no problems to find.
    # ------------------------------------------------------------------
    def explore(self) -> Findings:
        findings = Findings()
        findings.used("overview")
        self.client.overview()
        findings.used("progress")
        self.client.progress()
        self._think()
        names = self.client.components()
        findings.used("component_tree")
        # Everyone clicks around the tree; the curious click more.
        clicks = {"deep": 6, "medium": 4, "shallow": 2}[
            self.profile.analysis_depth]
        for name in names[:clicks]:
            try:
                self.client.component(name)
                findings.used("component_detail")
            except RTMClientError:
                pass
            self._think()
        if not self.profile.prior_experience:
            findings.observations.append(
                f"{self.profile.code} asked questions about the "
                "component hierarchy")
        return findings

    # ------------------------------------------------------------------
    # Part 3: problematic im2col — find the bottlenecks, unaided.
    # ------------------------------------------------------------------
    def find_bottlenecks(self) -> Findings:
        findings = Findings()
        findings.used("overview")
        self.client.overview()
        findings.used("progress")
        self.client.progress()
        self._think()

        # Everyone opens the bottleneck analyzer first (the most used
        # feature in the study) and refreshes it repeatedly — a buffer
        # "being repeatedly placed at the top of the list strongly
        # suggests that a component is a bottleneck" (§IV-C).
        refreshes = {"deep": 8, "medium": 6, "shallow": 3}[
            self.profile.analysis_depth]
        full_rob = []
        rob_hits = 0
        for _ in range(refreshes):
            rows = self.client.buffers(sort="percent", top=12)
            findings.used("bottleneck_analyzer")
            pinned = [r for r in rows
                      if "L1VROB" in r["buffer"] and r["percent"] >= 1.0]
            if pinned:
                rob_hits += 1
                full_rob = pinned
            self._think()

        if self.profile.analysis_depth == "shallow":
            # Novices browse details and learn, but do not complete the
            # diagnostic walk.
            for row in rows[:2]:
                component = row["buffer"].rsplit(".", 2)[0]
                try:
                    self.client.component(component)
                    findings.used("component_detail")
                except RTMClientError:
                    pass
            findings.observations.append(
                f"{self.profile.code} explored component values and drew "
                "hierarchy connections (learning)")
            return findings

        if not full_rob:
            # No saturated buffer evidence: nothing to walk down from.
            findings.observations.append(
                "analyzer showed no saturated buffers")
            return findings

        if full_rob:
            findings.bottlenecks.add("ROB")
            findings.observations.append(
                "ROB top-port buffers persistently at capacity")
            rob_component = full_rob[0]["buffer"].rsplit(".", 2)[0]
            findings.used("component_detail")
            detail = self.client.component(rob_component)
            # Flag the ROB size for a time chart (Figure 5's workflow).
            if "size" in detail["watchable"]:
                findings.used("time_chart")
                self.client.watch(rob_component, "size")
                for _ in range(4):
                    self.client.watches()
                    self._think()

        if self.profile.analysis_depth == "medium":
            # Stops after the first-level diagnosis.
            return findings

        # Deep analysis: walk the hierarchy below the ROB.
        sa_prefix = full_rob[0]["buffer"].rsplit(".", 3)[0] if full_rob \
            else None
        names = self.client.components()
        l1 = next((n for n in names
                   if sa_prefix and n.startswith(sa_prefix)
                   and "L1VCache" in n), None)
        if l1:
            findings.used("component_detail")
            detail = self.client.component(l1)
            mshr = detail["fields"].get("mshr", {})
            capacity = mshr.get("fields", {}).get("capacity") \
                if isinstance(mshr, dict) else None
            findings.used("time_chart")
            self.client.watch(l1, "transactions")
            peak = self._peak_value(l1, "transactions",
                                    target=capacity or float("inf"))
            if capacity and peak >= capacity:
                findings.bottlenecks.add("L1")
                findings.observations.append(
                    "L1 transactions pinned at MSHR capacity")
        gpu_prefix = sa_prefix.split(".")[0] if sa_prefix else "GPU[0]"
        rdma = next((n for n in names
                     if n == f"{gpu_prefix}.RDMA"), None)
        if rdma:
            findings.used("component_detail")
            self.client.component(rdma)
            findings.used("time_chart")
            self.client.watch(rdma, "transactions")
            peak = self._peak_value(rdma, "transactions", target=51)
            if peak > 50:
                findings.bottlenecks.add("RDMA")
                findings.observations.append(
                    f"RDMA holds {int(peak)} in-flight transactions: "
                    "the network is the root cause")
        return findings

    def _peak_value(self, component: str, path: str,
                    polls: int = 40,
                    target: float = float("inf")) -> float:
        """Watch a value over a window, as the time charts do, and
        report the peak level observed.  The burst-and-drain dynamics of
        a congested hierarchy mean a meaningful verdict needs a window,
        not an instant — the same reason the paper uses time charts.
        Stops early once *target* is reached (the human stops watching
        once the pattern is clear)."""
        peak = 0.0
        for _ in range(polls):
            value = self.client.value(component, path)
            if value is not None:
                peak = max(peak, value)
            if peak >= target:
                break
            time.sleep(max(self.think_time, 0.02))
        return peak

    # ------------------------------------------------------------------
    def maybe_profile(self, findings: Findings) -> None:
        """Only experienced participants poked the profiling panel (it
        was the least-used feature in the study)."""
        if not self.profile.prior_experience:
            return
        findings.used("profiler")
        self.client.profile_start()
        self._think()
        self.client.profile_stop()
        self.client.profile(top=5)
