"""``repro.faults`` — deterministic fault injection and campaigns.

The diagnostics layer (``repro.core``) can only be trusted if it is
exercised against the failures it claims to catch.  This package
induces those failures on demand, entirely through framework hooks:

* :class:`FaultInjector` / :class:`FaultSpec` — drop, delay, stall,
  pin and kill primitives with seeded determinism, component-name
  patterns and virtual-time windows.
* :class:`FaultScenario` / :class:`Expectation` — declarative
  (fault, expected-verdict) bundles, with a prebuilt :data:`LIBRARY`
  that reproduces the paper's case-study failure classes.
* :class:`CampaignRunner` / :class:`CampaignResult` — executes
  scenarios against workloads and asserts the monitor's verdict, under
  :class:`~repro.core.watchdog.Watchdog` supervision so nothing ever
  wedges CI.

Typical usage::

    from repro.faults import CampaignRunner, write_buffer_stall
    from repro.gpu import GPUPlatform
    from repro.workloads import FIR

    runner = CampaignRunner(GPUPlatform, FIR)
    result = runner.run(write_buffer_stall())
    print(result.summary())
"""

from .campaign import CampaignResult, CampaignRunner
from .injector import FaultInjector, FaultKind, FaultSpec
from .scenarios import (
    LIBRARY,
    Expectation,
    FaultScenario,
    cycles,
    l2_intake_pinned,
    rdma_message_loss,
    slow_network,
    write_buffer_stall,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "Expectation",
    "FaultInjector",
    "FaultKind",
    "FaultScenario",
    "FaultSpec",
    "LIBRARY",
    "cycles",
    "l2_intake_pinned",
    "rdma_message_loss",
    "slow_network",
    "write_buffer_stall",
]
