"""The fault-injection campaign runner.

A *campaign* executes :class:`~repro.faults.scenarios.FaultScenario`
objects against a workload and checks that AkitaRTM reaches the
expected verdict — hang flagged within a wall-time bound, the right
buffer fingered, alerts fired, or (for benign faults) the run still
completing.  It is how this repository proves the monitor's diagnostics
against *induced* failures instead of waiting for organic bugs.

The runner drives everything through the same surfaces a user would:
the :class:`~repro.core.monitor.Monitor` plugin API and (indirectly)
the :class:`~repro.core.watchdog.Watchdog`, which snapshots
diagnostics, retries the automated *Tick* button, and cleanly aborts
hung runs so a campaign can never wedge CI.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.monitor import Monitor
from ..core.watchdog import Watchdog, WatchdogConfig
from .injector import FaultInjector
from .scenarios import FaultScenario


@dataclass
class CampaignResult:
    """The outcome of one scenario run."""

    scenario: str
    passed: bool
    #: check name -> {"expected": ..., "observed": ..., "ok": bool}
    verdicts: Dict[str, Dict[str, Any]]
    elapsed_wall: float
    completed: bool
    final_state: str
    fault_stats: Dict[str, Any] = field(default_factory=dict)
    watchdog_report: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "passed": self.passed,
            "verdicts": self.verdicts,
            "elapsed_wall": round(self.elapsed_wall, 3),
            "completed": self.completed,
            "final_state": self.final_state,
            "fault_stats": self.fault_stats,
            "watchdog_report": self.watchdog_report,
        }

    def summary(self) -> str:
        """A terse human-readable verdict table."""
        lines = [f"[{'PASS' if self.passed else 'FAIL'}] "
                 f"{self.scenario} ({self.elapsed_wall:.1f}s wall, "
                 f"final state: {self.final_state})"]
        for check, verdict in self.verdicts.items():
            mark = "ok" if verdict["ok"] else "FAIL"
            lines.append(f"  {check:16s} {mark:4s} "
                         f"expected={verdict['expected']!r} "
                         f"observed={verdict['observed']!r}")
        return "\n".join(lines)


class CampaignRunner:
    """Runs scenarios against freshly-built platforms.

    Parameters
    ----------
    platform_factory:
        Zero-argument callable building a platform object exposing
        ``simulation``, ``driver`` and ``run(hang_wait=...)`` (a
        :class:`~repro.gpu.platform.GPUPlatform` fits).
    workload_factory:
        Zero-argument callable returning a workload with an
        ``enqueue(driver)`` method, or ``None`` for pre-loaded
        platforms.
    wall_timeout:
        Hard wall-clock bound per scenario; the runner aborts the
        simulation when it trips, so a campaign can never hang.
    stall_threshold:
        Passed through to the hang detector (small values make
        campaigns snappy; the default mirrors interactive use).
    watchdog_config:
        Supervision settings; by default the watchdog snapshots, tries
        bounded recovery, and aborts on failure.
    """

    def __init__(self, platform_factory: Callable[[], Any],
                 workload_factory: Optional[Callable[[], Any]] = None,
                 wall_timeout: float = 60.0,
                 stall_threshold: float = 2.0,
                 watchdog_config: Optional[WatchdogConfig] = None,
                 poll_interval: float = 0.05):
        self.platform_factory = platform_factory
        self.workload_factory = workload_factory
        self.wall_timeout = wall_timeout
        self.stall_threshold = stall_threshold
        self.watchdog_config = watchdog_config
        self.poll_interval = poll_interval

    # ------------------------------------------------------------------
    def run(self, scenario: FaultScenario) -> CampaignResult:
        """Execute one scenario and evaluate its expectation."""
        platform = self.platform_factory()
        monitor = Monitor(platform.simulation)
        if getattr(platform, "driver", None) is not None:
            monitor.attach_driver(platform.driver)
        if monitor.hang is not None:
            monitor.hang.stall_threshold = self.stall_threshold

        injector = FaultInjector(platform.simulation, seed=scenario.seed)
        monitor.attach_injector(injector)
        scenario.arm(injector)

        if self.workload_factory is not None:
            self.workload_factory().enqueue(platform.driver)

        watchdog = Watchdog(monitor, self.watchdog_config)
        monitor.attach_watchdog(watchdog)
        watchdog.start()

        completed: List[bool] = []
        thread = threading.Thread(
            target=lambda: completed.append(
                platform.run(hang_wait=self.wall_timeout)),
            daemon=True, name=f"campaign-{scenario.name}")

        start = time.monotonic()
        hang_detected_at: Optional[float] = None
        thread.start()
        try:
            while thread.is_alive():
                if time.monotonic() - start > self.wall_timeout:
                    platform.simulation.abort()
                    break
                status = monitor.hang_status()
                if (status.hung or watchdog.hang_count > 0) \
                        and hang_detected_at is None:
                    hang_detected_at = time.monotonic() - start
                    if scenario.expect.completes is not True:
                        # Verdict reached; give the watchdog the rest of
                        # the budget to snapshot/recover/abort, then stop.
                        self._await_watchdog(watchdog, start)
                        break
                time.sleep(self.poll_interval)
            thread.join(timeout=self.wall_timeout)
        finally:
            watchdog.stop()
            if thread.is_alive():  # don't overwrite a completed state
                platform.simulation.abort()
                thread.join(timeout=10.0)
            monitor.stop_server()

        elapsed = time.monotonic() - start
        return self._evaluate(scenario, monitor, injector, watchdog,
                              bool(completed and completed[0]),
                              platform.simulation.run_state,
                              hang_detected_at, elapsed)

    def run_all(self, scenarios: List[FaultScenario]
                ) -> List[CampaignResult]:
        return [self.run(scenario) for scenario in scenarios]

    def _await_watchdog(self, watchdog: Watchdog, start: float) -> None:
        """Wait (within the wall budget) for the watchdog's verdict."""
        while (watchdog.running and watchdog.report is None
               and time.monotonic() - start < self.wall_timeout):
            time.sleep(self.poll_interval)

    # ------------------------------------------------------------------
    def _evaluate(self, scenario, monitor, injector, watchdog,
                  completed: bool, final_state: str,
                  hang_detected_at: Optional[float],
                  elapsed: float) -> CampaignResult:
        expect = scenario.expect
        verdicts: Dict[str, Dict[str, Any]] = {}

        if expect.hang_within is not None:
            verdicts["hang_within"] = {
                "expected": f"<= {expect.hang_within:g}s",
                "observed": hang_detected_at,
                "ok": (hang_detected_at is not None
                       and hang_detected_at <= expect.hang_within),
            }
        if expect.completes is not None:
            verdicts["completes"] = {
                "expected": expect.completes,
                "observed": completed,
                "ok": completed == expect.completes,
            }
        if expect.buffer_pattern is not None:
            rows = monitor.analyzer.snapshot(sort="size")
            glob = expect.buffer_pattern.replace("[", "[[]")  # literal [
            matching = [row.name for row in rows
                        if fnmatch.fnmatchcase(row.name, glob)]
            verdicts["buffer_pattern"] = {
                "expected": expect.buffer_pattern,
                "observed": matching[:5],
                "ok": bool(matching),
            }
        if expect.alert_fired is not None:
            fired = bool(monitor.alerts.fired_log)
            verdicts["alert_fired"] = {
                "expected": expect.alert_fired,
                "observed": fired,
                "ok": fired == expect.alert_fired,
            }

        return CampaignResult(
            scenario=scenario.name,
            passed=all(v["ok"] for v in verdicts.values()),
            verdicts=verdicts,
            elapsed_wall=elapsed,
            completed=completed,
            final_state=final_state,
            fault_stats=injector.stats(),
            watchdog_report=watchdog.report,
        )
