"""Deterministic fault-injection primitives (framework layer).

AkitaRTM's diagnostics — the hang heuristic, the fail-fast alerts, the
bottleneck analyzer — exist to catch misbehaving simulations, yet a
healthy repository only ever exercises them against organically-arising
bugs.  :class:`FaultInjector` closes that gap: it induces the paper's
failure classes *on demand*, deterministically, without modifying a
single simulator component.

Every fault is expressed through the framework's hook system:

* **drop / delay / kill_port** attach one ``CONN_TRANSFER`` hook per
  connection and rewrite the :class:`~repro.akita.connection.Transfer`
  plan (lose the message, or push its delivery later);
* **stall** attaches one ``BEFORE_EVENT`` hook to the engine and
  suppresses matching components' tick events (the component appears to
  freeze mid-simulation — the write-buffer hang of case study 2);
* **pin_buffer** schedules virtual-time events that hold matching
  buffers at capacity, so every sender sees permanent backpressure.

Determinism: fault decisions consume a private seeded
:class:`random.Random`, and are made in event order — which the engine
already guarantees is reproducible — so two runs with the same seed
inject the identical fault sequence.

Zero overhead when idle: with no injector registered, no hooks exist,
and the engine/connection fast paths skip hook-context construction
entirely.
"""

from __future__ import annotations

import fnmatch
import itertools
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from ..akita.buffer import Buffer
from ..akita.component import TickingComponent
from ..akita.errors import SchedulingError
from ..akita.event import CallbackEvent, TickEvent
from ..akita.hooks import HookCtx, HookPos
from ..akita.simulation import Simulation


class FaultKind(str, Enum):
    """The failure classes the injector can induce."""

    DROP = "drop"              #: lose matching messages in transit
    DELAY = "delay"            #: deliver matching messages late
    STALL = "stall"            #: suppress a component's tick handler
    PIN_BUFFER = "pin_buffer"  #: hold a buffer at capacity
    KILL_PORT = "kill_port"    #: drop all traffic touching a port


_spec_ids = itertools.count(1)

#: Kinds that act on messages in transit (connection hook).
_MESSAGE_KINDS = (FaultKind.DROP, FaultKind.DELAY, FaultKind.KILL_PORT)


@dataclass
class FaultSpec:
    """One declarative fault.

    Parameters
    ----------
    kind:
        What to break (:class:`FaultKind`).
    target:
        Glob pattern (``*``/``?``) over hierarchical names — port names
        for message faults, component names for stalls, buffer names
        for pins (e.g. ``"GPU[0].RDMA*"``, ``"*WriteBuffer*"``).
        Square brackets match literally, since the simulator's names
        use them for array indices.
    start, end:
        Virtual-time window in which the fault is live.  ``end=None``
        means forever.
    probability:
        For ``drop``: per-message loss probability.  Other kinds apply
        unconditionally.
    delay:
        For ``delay``: extra in-transit latency in virtual seconds.
    """

    kind: FaultKind
    target: str
    start: float = 0.0
    end: Optional[float] = None
    probability: float = 1.0
    delay: float = 0.0
    label: str = ""
    id: int = field(default_factory=lambda: next(_spec_ids))
    #: Runtime counter: how many times this fault actually bit.
    applied_count: int = 0

    def __post_init__(self) -> None:
        self.kind = FaultKind(self.kind)
        if not self.target:
            raise ValueError("fault needs a target pattern")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.end is not None and self.end < self.start:
            raise ValueError(
                f"fault window ends ({self.end}) before it starts "
                f"({self.start})")
        if not self.label:
            window = f"t>={self.start:g}" if self.end is None \
                else f"{self.start:g}<=t<{self.end:g}"
            self.label = f"{self.kind.value}({self.target}) {window}"
        # "[" opens an fnmatch character class, but simulator names use
        # brackets for array indices — make them match literally.
        self._glob = self.target.replace("[", "[[]")

    def active(self, now: float) -> bool:
        """True while *now* falls inside the fault window."""
        return now >= self.start and (self.end is None or now < self.end)

    def matches(self, name: str) -> bool:
        return fnmatch.fnmatchcase(name, self._glob)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind.value,
            "target": self.target,
            "start": self.start,
            "end": self.end,
            "probability": self.probability,
            "delay": self.delay,
            "label": self.label,
            "applied_count": self.applied_count,
        }


class FaultInjector:
    """Arms :class:`FaultSpec` objects against one simulation.

    The injector attaches hooks lazily — the first message fault hooks
    the connections, the first stall fault hooks the engine — and
    detaches them when the last fault of that class is revoked, so an
    idle injector costs exactly nothing.
    """

    def __init__(self, simulation: Simulation, seed: int = 0):
        self.simulation = simulation
        self.seed = seed
        self._rng = random.Random(seed)
        self._specs: Dict[int, FaultSpec] = {}
        self._message_faults: List[FaultSpec] = []
        self._stall_faults: List[FaultSpec] = []
        self._pinned: Dict[int, List[Buffer]] = {}
        self._conn_hooked = False
        self._engine_hooked = False

    # ------------------------------------------------------------------
    # Arming / revoking
    # ------------------------------------------------------------------
    def inject(self, spec: FaultSpec) -> FaultSpec:
        """Arm *spec*.  Returns it (with its assigned id)."""
        self._specs[spec.id] = spec
        if spec.kind in _MESSAGE_KINDS:
            self._message_faults.append(spec)
            self._hook_connections()
        elif spec.kind is FaultKind.STALL:
            self._stall_faults.append(spec)
            self._hook_engine()
        elif spec.kind is FaultKind.PIN_BUFFER:
            self._arm_pin(spec)
        return spec

    # -- convenience constructors ---------------------------------------
    def drop_messages(self, target: str, probability: float = 1.0,
                      start: float = 0.0,
                      end: Optional[float] = None) -> FaultSpec:
        """Lose a fraction of the messages touching matching ports."""
        return self.inject(FaultSpec(FaultKind.DROP, target, start, end,
                                     probability=probability))

    def delay_messages(self, target: str, delay: float,
                       start: float = 0.0,
                       end: Optional[float] = None) -> FaultSpec:
        """Add *delay* virtual seconds to matching messages' transit."""
        return self.inject(FaultSpec(FaultKind.DELAY, target, start, end,
                                     delay=delay))

    def stall_component(self, target: str, start: float = 0.0,
                        end: Optional[float] = None) -> FaultSpec:
        """Freeze matching components' tick handlers."""
        return self.inject(FaultSpec(FaultKind.STALL, target, start, end))

    def pin_buffer(self, target: str, start: float = 0.0,
                   end: Optional[float] = None) -> FaultSpec:
        """Hold matching buffers at capacity."""
        return self.inject(FaultSpec(FaultKind.PIN_BUFFER, target, start,
                                     end))

    def kill_port(self, target: str, start: float = 0.0,
                  end: Optional[float] = None) -> FaultSpec:
        """Silently discard every message to or from matching ports."""
        return self.inject(FaultSpec(FaultKind.KILL_PORT, target, start,
                                     end))

    def revoke(self, spec_id: int) -> bool:
        """Disarm one fault.  Pinned buffers are released immediately."""
        spec = self._specs.pop(spec_id, None)
        if spec is None:
            return False
        if spec in self._message_faults:
            self._message_faults.remove(spec)
            if not self._message_faults:
                self._unhook_connections()
        if spec in self._stall_faults:
            self._stall_faults.remove(spec)
            if not self._stall_faults:
                self._unhook_engine()
        for buf in self._pinned.pop(spec.id, []):
            buf.pin(False)
        return True

    def clear(self) -> None:
        """Disarm everything."""
        for spec_id in list(self._specs):
            self.revoke(spec_id)

    # ------------------------------------------------------------------
    # Introspection (drives /api/faults)
    # ------------------------------------------------------------------
    @property
    def specs(self) -> List[FaultSpec]:
        return list(self._specs.values())

    def spec(self, spec_id: int) -> Optional[FaultSpec]:
        return self._specs.get(spec_id)

    def to_dict(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self._specs.values()]

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters for dashboards and campaign reports."""
        return {
            "seed": self.seed,
            "armed": len(self._specs),
            "applied_total": sum(s.applied_count
                                 for s in self._specs.values()),
            "messages_dropped": sum(c.dropped_count
                                    for c in self.simulation.connections),
            "pinned_buffers": sorted(
                b.name for bufs in self._pinned.values() for b in bufs
                if b.pinned),
        }

    # ------------------------------------------------------------------
    # Hook plumbing
    # ------------------------------------------------------------------
    def _hook_connections(self) -> None:
        if self._conn_hooked:
            return
        for conn in self.simulation.connections:
            conn.accept_hook(self._on_transfer)
        self._conn_hooked = True

    def _unhook_connections(self) -> None:
        if not self._conn_hooked:
            return
        for conn in self.simulation.connections:
            conn.remove_hook(self._on_transfer)
        self._conn_hooked = False

    def _hook_engine(self) -> None:
        if self._engine_hooked:
            return
        self.simulation.engine.accept_hook(self._on_before_event)
        self._engine_hooked = True

    def _unhook_engine(self) -> None:
        if not self._engine_hooked:
            return
        self.simulation.engine.remove_hook(self._on_before_event)
        self._engine_hooked = False

    # -- message faults (connection hook) --------------------------------
    def _on_transfer(self, ctx: HookCtx) -> None:
        if ctx.pos is not HookPos.CONN_TRANSFER:
            return
        transfer = ctx.item
        msg = transfer.msg
        src_name = msg.src.name if msg.src is not None else ""
        dst_name = msg.dst.name if msg.dst is not None else ""
        for spec in self._message_faults:
            if not spec.active(ctx.now):
                continue
            if not (spec.matches(dst_name) or spec.matches(src_name)):
                continue
            if spec.kind is FaultKind.KILL_PORT:
                transfer.drop = True
                spec.applied_count += 1
                return
            if spec.kind is FaultKind.DROP:
                if self._rng.random() < spec.probability:
                    transfer.drop = True
                    spec.applied_count += 1
                    return
            elif spec.kind is FaultKind.DELAY:
                transfer.deliver_at += spec.delay
                spec.applied_count += 1

    # -- stall faults (engine hook) --------------------------------------
    def _on_before_event(self, ctx: HookCtx) -> None:
        if ctx.pos is not HookPos.BEFORE_EVENT:
            return
        event = ctx.item
        if not isinstance(event, TickEvent):
            return
        handler = event.handler
        name = getattr(handler, "name", "")
        for spec in self._stall_faults:
            if spec.active(ctx.now) and spec.matches(name):
                ctx.skip = True
                spec.applied_count += 1
                if isinstance(handler, TickingComponent):
                    # Leave the component in the wakeable "asleep" state:
                    # a later notify or the RTM Tick button can schedule
                    # a fresh tick, which succeeds once the window ends.
                    handler._next_scheduled = None
                return

    # -- buffer pinning (virtual-time events) ----------------------------
    def _arm_pin(self, spec: FaultSpec) -> None:
        targets = self._matching_buffers(spec)
        if not targets:
            raise ValueError(
                f"no buffer matches pattern {spec.target!r}")
        self._pinned[spec.id] = targets
        engine = self.simulation.engine

        def _apply(_event=None, pinned=True) -> None:
            if spec.id not in self._specs and pinned:
                return  # revoked before its window opened
            for buf in targets:
                buf.pin(pinned)
            spec.applied_count += len(targets)

        if spec.start <= engine.now:
            _apply()
        else:
            try:
                engine.schedule(CallbackEvent(
                    spec.start, lambda e: _apply(e, True)))
            except SchedulingError:
                _apply()  # engine crossed spec.start while we armed
        if spec.end is not None:
            try:
                engine.schedule(CallbackEvent(
                    max(spec.end, engine.now), lambda e: _apply(e, False)))
            except SchedulingError:
                _apply(pinned=False)

    def _matching_buffers(self, spec: FaultSpec) -> List[Buffer]:
        from ..core.inspector import discover_buffers  # lazy: no cycle
        found: List[Buffer] = []
        seen: set = set()
        for component in self.simulation.components:
            for buf in discover_buffers(component):
                if id(buf) not in seen and spec.matches(buf.name):
                    seen.add(id(buf))
                    found.append(buf)
        return found
