"""Declarative fault scenarios and the prebuilt scenario library.

A :class:`FaultScenario` bundles *what to break* (a list of
:class:`~repro.faults.injector.FaultSpec`) with *what the monitor must
conclude* (an :class:`Expectation`).  The campaign runner arms the
faults, runs a workload, and checks the expectation — turning the
paper's case studies into deterministic regression tests.

The library functions at the bottom reproduce the failure classes the
paper diagnoses:

* :func:`write_buffer_stall` — case study 2's hang class on demand: the
  L2 write buffer freezes, the memory hierarchy backs up, the event
  queue runs dry with work outstanding.
* :func:`rdma_message_loss` — lossy inter-chiplet traffic; dropped
  replies strand their requesters and the run wedges.
* :func:`l2_intake_pinned` — an L2 input buffer held at capacity, the
  bottleneck analyzer's smoking gun.
* :func:`slow_network` — a benign fault: extra link latency slows the
  run but it must still complete (the degrade-gracefully case).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..akita.ticker import GHZ
from .injector import FaultInjector, FaultKind, FaultSpec, _spec_ids


def cycles(n: float, freq: float = GHZ) -> float:
    """Convert *n* cycles at *freq* to virtual seconds."""
    return n / freq


@dataclass
class Expectation:
    """What the monitor must conclude about a faulted run.

    ``None`` fields are not checked.
    """

    #: Hang verdict must arrive within this many wall seconds.
    hang_within: Optional[float] = None
    #: The workload must (not) run to completion.
    completes: Optional[bool] = None
    #: Some stuck/bottleneck buffer must match this fnmatch pattern.
    buffer_pattern: Optional[str] = None
    #: At least one alert rule must have fired.
    alert_fired: Optional[bool] = None


@dataclass
class FaultScenario:
    """A named, reusable (faults, expectation) bundle."""

    name: str
    faults: List[FaultSpec] = field(default_factory=list)
    expect: Expectation = field(default_factory=Expectation)
    description: str = ""
    seed: int = 0

    def arm(self, injector: FaultInjector) -> List[FaultSpec]:
        """Inject fresh copies of this scenario's faults.

        Copies keep the scenario reusable: runtime counters and ids stay
        with the armed instance, not the template.
        """
        armed = []
        for spec in self.faults:
            armed.append(injector.inject(
                replace(spec, id=next(_spec_ids), applied_count=0)))
        return armed

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "faults": [s.to_dict() for s in self.faults],
        }


# ----------------------------------------------------------------------
# Prebuilt library
# ----------------------------------------------------------------------
def write_buffer_stall(start: float = 5e-7,
                       end: Optional[float] = None,
                       hang_within: float = 60.0) -> FaultScenario:
    """Case study 2, deterministically: stall every write buffer's tick
    handler from *start* on (forever by default)."""
    return FaultScenario(
        name="write-buffer-stall",
        description=("The L2 write buffer stops draining: stores back "
                     "up through L2 and L1 until every component "
                     "sleeps — the paper's case-study-2 hang class."),
        faults=[FaultSpec(FaultKind.STALL, "*WriteBuffer*",
                          start=start, end=end)],
        expect=Expectation(hang_within=hang_within, completes=False,
                           buffer_pattern="*WriteBuffer*"))


def rdma_message_loss(probability: float = 0.01,
                      start: float = 1e-6,
                      hang_within: float = 60.0,
                      seed: int = 7) -> FaultScenario:
    """Drop a fraction of inter-chiplet RDMA traffic after *start*."""
    return FaultScenario(
        name="rdma-message-loss",
        description=(f"Drop {probability:.0%} of RDMA messages after "
                     f"t={start:g}s; stranded requesters wedge the "
                     "run."),
        seed=seed,
        faults=[FaultSpec(FaultKind.DROP, "*RDMA*", start=start,
                          probability=probability)],
        expect=Expectation(hang_within=hang_within, completes=False))


def l2_intake_pinned(start: float = 5e-7,
                     hang_within: float = 60.0) -> FaultScenario:
    """Hold every L2 top-port buffer at capacity from *start* on."""
    return FaultScenario(
        name="l2-intake-pinned",
        description=("L2 input buffers report full forever; upstream "
                     "senders see permanent backpressure and the "
                     "bottleneck table fingers the pinned buffers."),
        faults=[FaultSpec(FaultKind.PIN_BUFFER, "*L2*TopPort.Buf",
                          start=start)],
        expect=Expectation(hang_within=hang_within, completes=False,
                           buffer_pattern="*L2*"))


def slow_network(delay_cycles: float = 50.0,
                 start: float = 0.0,
                 end: Optional[float] = None) -> FaultScenario:
    """Benign fault: add latency to every chiplet link; the run must
    still complete (graceful degradation, not a hang)."""
    return FaultScenario(
        name="slow-network",
        description=(f"+{delay_cycles:g} cycles on inter-chiplet "
                     "traffic; slower, but correct."),
        faults=[FaultSpec(FaultKind.DELAY, "*Switch*", start=start,
                          end=end, delay=cycles(delay_cycles))],
        expect=Expectation(completes=True))


#: The default campaign, in the order the docs discuss them.
LIBRARY = {
    "write-buffer-stall": write_buffer_stall,
    "rdma-message-loss": rdma_message_loss,
    "l2-intake-pinned": l2_intake_pinned,
    "slow-network": slow_network,
}
