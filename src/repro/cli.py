"""Command-line interface: ``python -m repro <command>``.

Wraps the library's most common flows so a user can try the monitor
without writing code:

* ``run``   — run one benchmark on a simulated GPU, optionally with the
  AkitaRTM dashboard attached;
* ``demo``  — start the paper's "problematic im2col" simulation and
  keep the dashboard up for interactive exploration;
* ``study`` — execute the scripted user study and print Figure 6;
* ``trace`` — run one benchmark with the tracer attached and export
  the recorded message/task lifecycle (JSONL or Perfetto);
* ``metrics`` — run one benchmark with the metric registry attached
  and dump the final Prometheus text exposition;
* ``workloads`` — list the available benchmarks.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import List, Optional

from .core import Monitor
from .gpu import GPUPlatform, GPUPlatformConfig
from .metrics import rate as metrics_rate
from .studies import run_study
from .studies.session import problem_platform_config, problem_workload
from .workloads import SUITE, suite_small


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AkitaRTM reproduction: monitored GPU simulations")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark")
    run.add_argument("workload", choices=sorted(SUITE),
                     help="benchmark to execute")
    run.add_argument("--chiplets", type=int, default=2,
                     help="number of GPU chiplets (default 2)")
    run.add_argument("--full-scale", action="store_true",
                     help="use the paper's R9-Nano chiplets (64 CUs "
                          "each) instead of the scaled configuration")
    run.add_argument("--monitor", action="store_true",
                     help="attach AkitaRTM and print the dashboard URL")
    run.add_argument("--port", type=int, default=0,
                     help="dashboard port (default: ephemeral)")
    run.add_argument("--buggy-l2", action="store_true",
                     help="enable case study 2's write-buffer bug")
    run.add_argument("--hang-wait", type=float, default=0.0,
                     help="seconds to keep a hung simulation alive for "
                          "debugging (default 0: exit on hang)")
    run.add_argument("--progress-interval", type=float, default=1.0,
                     help="seconds between progress lines (default 1)")

    demo = sub.add_parser(
        "demo", help="serve the problematic im2col simulation")
    demo.add_argument("--port", type=int, default=0)
    demo.add_argument("--duration", type=float, default=0.0,
                      help="stop after N wall seconds (default: until "
                           "the simulation finishes or Ctrl-C)")

    study = sub.add_parser("study", help="run the scripted user study")
    study.add_argument("--think-time", type=float, default=0.01,
                       help="participant think time per action")
    study.add_argument("--report", type=str, default="",
                       help="write a markdown report to this path")

    trace = sub.add_parser(
        "trace", help="record a message/task trace of one benchmark")
    trace.add_argument("workload", choices=sorted(SUITE),
                       help="benchmark to execute")
    trace.add_argument("--chiplets", type=int, default=2,
                       help="number of GPU chiplets (default 2)")
    trace.add_argument("--buggy-l2", action="store_true",
                       help="enable case study 2's write-buffer bug")
    trace.add_argument("--backend", choices=("ring", "sqlite"),
                       default="ring",
                       help="trace store (default: in-memory ring)")
    trace.add_argument("--capacity", type=int, default=65536,
                       help="ring capacity in events (default 65536)")
    trace.add_argument("--db", type=str, default="",
                       help="SQLite file for --backend sqlite")
    trace.add_argument("--include", type=str, default="",
                       help="component-name regex; others untraced")
    trace.add_argument("--out", type=str, default="",
                       help="export file (default: no export)")
    trace.add_argument("--format", choices=("jsonl", "perfetto"),
                       default="perfetto",
                       help="export format for --out (default perfetto)")
    trace.add_argument("--hang-wait", type=float, default=0.0,
                       help="seconds to keep a hung simulation alive "
                            "(default 0: exit on hang — the trace is "
                            "still exported)")

    metrics = sub.add_parser(
        "metrics",
        help="run a benchmark and dump the Prometheus exposition")
    metrics.add_argument("workload", choices=sorted(SUITE),
                         help="benchmark to execute")
    metrics.add_argument("--chiplets", type=int, default=2,
                         help="number of GPU chiplets (default 2)")
    metrics.add_argument("--buggy-l2", action="store_true",
                         help="enable case study 2's write-buffer bug")
    metrics.add_argument("--out", type=str, default="",
                         help="write the exposition here instead of "
                              "stdout")
    metrics.add_argument("--hang-wait", type=float, default=0.0,
                         help="seconds to keep a hung simulation alive "
                              "(default 0: exit on hang — metrics are "
                              "still dumped)")

    sub.add_parser("workloads", help="list available benchmarks")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.full_scale:
        config = GPUPlatformConfig.r9_nano_mcm(
            num_chiplets=args.chiplets,
            l2_write_buffer_bug=args.buggy_l2)
        workload = SUITE[args.workload]()
    else:
        config = GPUPlatformConfig.small(
            num_chiplets=args.chiplets,
            l2_write_buffer_bug=args.buggy_l2)
        workload = suite_small()[args.workload]
    platform = GPUPlatform(config)
    run = workload.enqueue(platform.driver)

    monitor: Optional[Monitor] = None
    if args.monitor:
        monitor = Monitor(platform.simulation)
        monitor.attach_driver(platform.driver)
        monitor.start_sampler()
        print(f"AkitaRTM dashboard: "
              f"{monitor.start_server(port=args.port)}")

    result = {}
    thread = threading.Thread(
        target=lambda: result.setdefault(
            "ok", platform.run(hang_wait=args.hang_wait)))
    start = time.monotonic()
    thread.start()
    last_wall, last_events = start, 0
    while thread.is_alive():
        thread.join(timeout=args.progress_interval)
        kernel = run.kernels[0]
        state = platform.simulation.run_state
        wall = time.monotonic()
        events = platform.engine.event_count
        kips = metrics_rate(events - last_events,
                            wall - last_wall) / 1000.0
        last_wall, last_events = wall, events
        print(f"t={platform.simulation.now * 1e6:9.2f}us "
              f"state={state:9s} "
              f"wgs={kernel.completed}/{kernel.total} "
              f"{kips:8.1f} kevents/s")
        if state == "hung" and args.hang_wait == 0.0:
            break
    thread.join()
    elapsed = time.monotonic() - start
    ok = result.get("ok", False)
    print(f"{'completed' if ok else platform.simulation.run_state} "
          f"in {elapsed:.1f}s wall, "
          f"{platform.simulation.now * 1e6:.2f}us simulated, "
          f"{platform.engine.event_count:,} events")
    if monitor is not None:
        monitor.stop_server()
    return 0 if ok else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    platform = GPUPlatform(problem_platform_config())
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    monitor.start_sampler()
    problem_workload().enqueue(platform.driver)
    url = monitor.start_server(port=args.port)
    print(f"AkitaRTM dashboard: {url}")
    print("Serving the congested im2col simulation of case study 1. "
          "Open the URL and explore; Ctrl-C to stop.")
    thread = threading.Thread(
        target=lambda: platform.run(hang_wait=3600.0), daemon=True)
    thread.start()
    deadline = (time.monotonic() + args.duration) if args.duration \
        else None
    try:
        while thread.is_alive():
            if deadline is not None and time.monotonic() > deadline:
                break
            time.sleep(0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    platform.simulation.abort()
    thread.join(timeout=30)
    monitor.stop_server()
    print("demo stopped")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    result = run_study(think_time=args.think_time)
    print("successful participants:",
          ", ".join(result.successful_participants))
    print("most used feature:", result.most_used_feature)
    print("least used feature:", result.least_used_feature)
    print()
    print(result.survey.format())
    print()
    print("matches paper Figure 6:", result.matches_paper_figure6())
    if args.report:
        import pathlib
        pathlib.Path(args.report).write_text(result.format_report())
        print(f"report written to {args.report}")
    return 0 if result.matches_paper_figure6() else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .trace import RingStore, SQLiteStore, Tracer, export_events
    config = GPUPlatformConfig.small(
        num_chiplets=args.chiplets,
        l2_write_buffer_bug=args.buggy_l2)
    workload = suite_small()[args.workload]
    platform = GPUPlatform(config)
    workload.enqueue(platform.driver)

    if args.backend == "sqlite":
        if not args.db:
            print("error: --backend sqlite needs --db", file=sys.stderr)
            return 2
        store = SQLiteStore(args.db)
    else:
        store = RingStore(args.capacity)
    tracer = Tracer(platform.simulation, store,
                    include=args.include or None)
    tracer.start()
    try:
        ok = platform.run(hang_wait=args.hang_wait)
    finally:
        # A hung run still has a story to tell: stop (flushes), export.
        tracer.stop()
    state = "completed" if ok else platform.simulation.run_state
    stats = store.stats()
    print(f"{state}: {stats['recorded']:,} events recorded "
          f"({stats.get('dropped', 0):,} dropped), "
          f"t={platform.simulation.now * 1e6:.2f}us")
    if args.out:
        export_events(store.query(limit=0), args.format, args.out)
        print(f"wrote {args.format} trace to {args.out}")
    elif args.backend == "sqlite":
        print(f"trace database: {args.db}")
    tracer.close()
    return 0 if ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .metrics import SimMetrics, expose
    config = GPUPlatformConfig.small(
        num_chiplets=args.chiplets,
        l2_write_buffer_bug=args.buggy_l2)
    workload = suite_small()[args.workload]
    platform = GPUPlatform(config)
    workload.enqueue(platform.driver)

    sim_metrics = SimMetrics(platform.simulation)
    sim_metrics.start()
    try:
        ok = platform.run(hang_wait=args.hang_wait)
    finally:
        # A hung run's final counters are exactly what to look at.
        sim_metrics.stop()
    state = "completed" if ok else platform.simulation.run_state
    text = expose(sim_metrics.registry)
    if args.out:
        import pathlib
        pathlib.Path(args.out).write_text(text)
        print(f"{state}: wrote exposition "
              f"({len(sim_metrics.registry.names)} families) "
              f"to {args.out}")
    else:
        print(text, end="")
        print(f"# run {state}, "
              f"t={platform.simulation.now * 1e6:.2f}us",
              file=sys.stderr)
    return 0 if ok else 1


def _cmd_workloads(_args: argparse.Namespace) -> int:
    for name, factory in sorted(SUITE.items()):
        workload = factory()
        kernel = workload.kernel()
        print(f"{name:8s} {type(workload).__name__:8s} "
              f"{kernel.num_workgroups:>5d} workgroups x "
              f"{kernel.wavefronts_per_wg} wavefronts, "
              f"{workload.input_bytes():>10,d} B in / "
              f"{workload.output_bytes():>10,d} B out")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "demo": _cmd_demo,
        "study": _cmd_study,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "workloads": _cmd_workloads,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
