"""Command-line interface: ``python -m repro <command>``.

Wraps the library's most common flows so a user can try the monitor
without writing code:

* ``run``   — run one benchmark on a simulated GPU, optionally with the
  AkitaRTM dashboard attached;
* ``demo``  — start the paper's "problematic im2col" simulation and
  keep the dashboard up for interactive exploration;
* ``study`` — execute the scripted user study and print Figure 6;
* ``trace`` — run one benchmark with the tracer attached and export
  the recorded message/task lifecycle (JSONL or Perfetto);
* ``metrics`` — run one benchmark with the metric registry attached
  and dump the final Prometheus text exposition;
* ``profile`` — run one monitored benchmark under the continuous
  profiler and record its overhead-attribution summary
  (``record``), then print (``report``), convert (``export``) or A/B
  diff (``diff``) recorded summaries;
* ``fleet`` — drain a parameter sweep (workload x chiplet count)
  through a worker pool behind the aggregating gateway, or query a
  running gateway's ``/api/fleet``;
* ``historian`` — query a campaign historian database
  (``list|show|compare|prune``); campaigns record themselves into one
  with ``fleet run --historian <db>``;
* ``workloads`` — list the available benchmarks (``--json`` emits the
  machine-readable catalog fleet jobs are validated against).

``repro run`` installs SIGTERM/SIGINT handlers that stop the engine,
flush exports and exit 0 — a fleet manager (or an operator's Ctrl-C)
tearing a run down is a clean shutdown, not a failure.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from typing import List, Optional

from .core import Monitor
from .gpu import GPUPlatform, GPUPlatformConfig
from .metrics import rate as metrics_rate
from .studies import run_study
from .studies.session import problem_platform_config, problem_workload
from .workloads import SUITE, StoreStorm, suite_small

#: What ``repro run`` (and friends) may execute: the paper's suite
#: plus the StoreStorm diagnostic — the shard layer's reference
#: workload, runnable directly since ``--shards`` landed.
_RUNNABLE = sorted([*SUITE, "storestorm"])


def _add_fleet_common(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``fleet run`` and ``fleet resume``: the gateway,
    the wall bound, durability (journal + checkpoints) and artifacts."""
    parser.add_argument("--port", type=int, default=0,
                        help="gateway port (default: ephemeral)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="wall bound for the whole campaign "
                             "(default 600 s)")
    parser.add_argument("--journal", default="",
                        help="append every scheduler transition to this "
                             "write-ahead log (enables fleet resume); "
                             "implied by fleet resume itself")
    parser.add_argument("--checkpoint-dir", default="",
                        help="workers write per-job checkpoints here; "
                             "retries resume from them instead of t=0")
    parser.add_argument("--checkpoint-events", type=int, default=0,
                        help="checkpoint cadence in simulation events "
                             "(default 20000 when --checkpoint-dir is "
                             "set and no cadence is given)")
    parser.add_argument("--checkpoint-interval", type=float,
                        default=0.0,
                        help="checkpoint cadence in wall seconds")
    parser.add_argument("--status-out", default="",
                        help="write the final /api/fleet JSON here "
                             "(atomically)")
    parser.add_argument("--metrics-out", default="",
                        help="write one federated /metrics scrape here "
                             "(atomically)")
    parser.add_argument("--historian", default="",
                        help="record the campaign (metric snapshots, "
                             "job outcomes, post-mortems, alerts) into "
                             "this SQLite historian database")
    parser.add_argument("--campaign", default="",
                        help="campaign id in the historian database "
                             "(default: generated from the wall clock)")
    parser.add_argument("--historian-interval", type=float, default=0.5,
                        help="historian sampling cadence in wall "
                             "seconds (default 0.5)")
    parser.add_argument("--profile", action="store_true",
                        help="run every worker under the continuous "
                             "profiler; per-job attribution summaries "
                             "ride the control channel into "
                             "/api/fleet/profile (and the historian)")
    parser.add_argument("--profile-interval", type=float, default=0.02,
                        help="worker profiler sampling interval in "
                             "seconds (default 0.02)")
    parser.add_argument("--profile-out", default="",
                        help="write the merged campaign profile as a "
                             "speedscope JSON file here (atomically); "
                             "implies --profile")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AkitaRTM reproduction: monitored GPU simulations")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark")
    run.add_argument("workload", choices=_RUNNABLE,
                     help="benchmark to execute")
    run.add_argument("--chiplets", type=int, default=2,
                     help="number of GPU chiplets (default 2)")
    run.add_argument("--full-scale", action="store_true",
                     help="use the paper's R9-Nano chiplets (64 CUs "
                          "each) instead of the scaled configuration")
    run.add_argument("--shards", type=int, default=1,
                     help="partition the platform across N worker "
                          "processes with conservative time-window "
                          "sync (default 1: in-process)")
    run.add_argument("--monitor", action="store_true",
                     help="attach AkitaRTM and print the dashboard URL")
    run.add_argument("--port", type=int, default=0,
                     help="dashboard port (default: ephemeral)")
    run.add_argument("--buggy-l2", action="store_true",
                     help="enable case study 2's write-buffer bug")
    run.add_argument("--hang-wait", type=float, default=0.0,
                     help="seconds to keep a hung simulation alive for "
                          "debugging (default 0: exit on hang)")
    run.add_argument("--progress-interval", type=float, default=1.0,
                     help="seconds between progress lines (default 1)")

    demo = sub.add_parser(
        "demo", help="serve the problematic im2col simulation")
    demo.add_argument("--port", type=int, default=0)
    demo.add_argument("--duration", type=float, default=0.0,
                      help="stop after N wall seconds (default: until "
                           "the simulation finishes or Ctrl-C)")

    study = sub.add_parser("study", help="run the scripted user study")
    study.add_argument("--think-time", type=float, default=0.01,
                       help="participant think time per action")
    study.add_argument("--report", type=str, default="",
                       help="write a markdown report to this path")

    trace = sub.add_parser(
        "trace", help="record a message/task trace of one benchmark")
    trace.add_argument("workload", choices=sorted(SUITE),
                       help="benchmark to execute")
    trace.add_argument("--chiplets", type=int, default=2,
                       help="number of GPU chiplets (default 2)")
    trace.add_argument("--buggy-l2", action="store_true",
                       help="enable case study 2's write-buffer bug")
    trace.add_argument("--backend", choices=("ring", "sqlite"),
                       default="ring",
                       help="trace store (default: in-memory ring)")
    trace.add_argument("--capacity", type=int, default=65536,
                       help="ring capacity in events (default 65536)")
    trace.add_argument("--db", type=str, default="",
                       help="SQLite file for --backend sqlite")
    trace.add_argument("--include", type=str, default="",
                       help="component-name regex; others untraced")
    trace.add_argument("--out", type=str, default="",
                       help="export file (default: no export)")
    trace.add_argument("--format", choices=("jsonl", "perfetto"),
                       default="perfetto",
                       help="export format for --out (default perfetto)")
    trace.add_argument("--hang-wait", type=float, default=0.0,
                       help="seconds to keep a hung simulation alive "
                            "(default 0: exit on hang — the trace is "
                            "still exported)")

    metrics = sub.add_parser(
        "metrics",
        help="run a benchmark and dump the Prometheus exposition")
    metrics.add_argument("workload", choices=sorted(SUITE),
                         help="benchmark to execute")
    metrics.add_argument("--chiplets", type=int, default=2,
                         help="number of GPU chiplets (default 2)")
    metrics.add_argument("--buggy-l2", action="store_true",
                         help="enable case study 2's write-buffer bug")
    metrics.add_argument("--out", type=str, default="",
                         help="write the exposition here instead of "
                              "stdout")
    metrics.add_argument("--hang-wait", type=float, default=0.0,
                         help="seconds to keep a hung simulation alive "
                              "(default 0: exit on hang — metrics are "
                              "still dumped)")

    profile = sub.add_parser(
        "profile",
        help="continuous profiling: record, report, export, diff")
    profile_sub = profile.add_subparsers(dest="profile_command",
                                         required=True)

    prof_record = profile_sub.add_parser(
        "record", help="run one monitored benchmark under the "
                       "continuous profiler and write its summary")
    prof_record.add_argument("workload", choices=sorted(SUITE),
                             help="benchmark to execute")
    prof_record.add_argument("--chiplets", type=int, default=2,
                             help="number of GPU chiplets (default 2)")
    prof_record.add_argument("--buggy-l2", action="store_true",
                             help="enable case study 2's write-buffer "
                                  "bug")
    prof_record.add_argument("--interval", type=float, default=0.02,
                             help="sampling interval in seconds "
                                  "(default 0.02)")
    prof_record.add_argument("--window", type=float, default=1.0,
                             help="rolling window length in seconds "
                                  "(default 1.0)")
    prof_record.add_argument("--server", action="store_true",
                             help="also start the dashboard server so "
                                  "its threads appear in the profile")
    prof_record.add_argument("--out", required=True,
                             help="write the summary JSON here "
                                  "(atomically)")

    prof_report = profile_sub.add_parser(
        "report", help="print the layer/function attribution of a "
                       "recorded summary")
    prof_report.add_argument("summary", help="summary JSON from "
                                             "profile record")
    prof_report.add_argument("--top", type=int, default=15,
                             help="function rows printed (default 15)")
    prof_report.add_argument("--json", action="store_true",
                             help="dump the raw summary document")

    prof_export = profile_sub.add_parser(
        "export", help="convert a recorded summary to a viewer format")
    prof_export.add_argument("summary", help="summary JSON from "
                                             "profile record")
    prof_export.add_argument("--format",
                             choices=("speedscope", "collapsed"),
                             default="speedscope",
                             help="output format (default speedscope)")
    prof_export.add_argument("--out", required=True,
                             help="write the export here (atomically)")

    prof_diff = profile_sub.add_parser(
        "diff", help="per-layer / per-function delta between two "
                     "recorded summaries")
    prof_diff.add_argument("a", help="baseline summary JSON")
    prof_diff.add_argument("b", help="candidate summary JSON")
    prof_diff.add_argument("--top", type=int, default=15,
                           help="function rows printed (default 15)")
    prof_diff.add_argument("--json", action="store_true",
                           help="dump the raw diff document")

    fleet = sub.add_parser(
        "fleet", help="orchestrate many monitored simulations")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser(
        "run", help="drain a workload x chiplets sweep through a "
                    "worker pool + gateway")
    fleet_run.add_argument("--workers", type=int, default=2,
                           help="worker pool size (default 2)")
    fleet_run.add_argument("--workloads", default="fir",
                           help="comma-separated workload names "
                                "(default fir; see workloads --json)")
    fleet_run.add_argument("--chiplets", default="1,2",
                           help="comma-separated chiplet counts, one "
                                "job per workload x count (default 1,2)")
    fleet_run.add_argument("--buggy-l2", action="store_true",
                           help="enable case study 2's write-buffer "
                                "bug in every job")
    fleet_run.add_argument("--cold", action="store_true",
                           help="legacy dispatch: one subprocess per "
                                "job attempt instead of a warm "
                                "persistent-worker pool")
    fleet_run.add_argument("--worker-restarts", type=int, default=None,
                           help="crashed warm workers replaced before "
                                "the pool gives up (default: one per "
                                "worker slot)")
    fleet_run.add_argument("--max-retries", type=int, default=1,
                           help="restart-policy budget per job "
                                "(default 1)")
    fleet_run.add_argument("--crash-first", action="store_true",
                           help="arm a stall fault on the first job's "
                                "first attempt (restart-policy demo)")
    _add_fleet_common(fleet_run)

    fleet_resume = fleet_sub.add_parser(
        "resume", help="rebuild a crashed campaign from its journal "
                       "and finish it exactly-once")
    fleet_resume.add_argument("journal_path", metavar="journal",
                              help="the campaign's --journal file")
    fleet_resume.add_argument("--workers", type=int, default=2,
                              help="worker pool size (default 2)")
    fleet_resume.add_argument("--cold", action="store_true",
                              help="one subprocess per attempt instead "
                                   "of a warm pool")
    fleet_resume.add_argument("--worker-restarts", type=int,
                              default=None,
                              help="crashed warm workers replaced "
                                   "before the pool gives up")
    _add_fleet_common(fleet_resume)

    fleet_status = fleet_sub.add_parser(
        "status", help="query a running gateway")
    fleet_status.add_argument("--url", required=True,
                              help="gateway base URL")
    fleet_status.add_argument("--json", action="store_true",
                              help="dump the raw /api/fleet document")

    historian = sub.add_parser(
        "historian",
        help="query a campaign historian database")
    hist_sub = historian.add_subparsers(dest="historian_command",
                                        required=True)

    hist_list = hist_sub.add_parser(
        "list", help="campaigns in the database")
    hist_list.add_argument("db", help="historian SQLite file")
    hist_list.add_argument("--json", action="store_true")

    hist_show = hist_sub.add_parser(
        "show", help="one campaign's jobs, post-mortems and alerts")
    hist_show.add_argument("db", help="historian SQLite file")
    hist_show.add_argument("campaign", help="campaign id")
    hist_show.add_argument("--json", action="store_true")

    hist_compare = hist_sub.add_parser(
        "compare", help="diff two campaigns' metric families "
                        "(regression report)")
    hist_compare.add_argument("db", help="historian SQLite file")
    hist_compare.add_argument("a", nargs="?", default="",
                              help="baseline campaign id (default: "
                                   "second-newest)")
    hist_compare.add_argument("b", nargs="?", default="",
                              help="candidate campaign id (default: "
                                   "newest)")
    hist_compare.add_argument("--json", action="store_true",
                              help="dump the raw comparison document")
    hist_compare.add_argument("--out", default="",
                              help="also write the comparison JSON "
                                   "here (atomically)")
    hist_compare.add_argument("--top", type=int, default=15,
                              help="family rows printed (default 15)")

    hist_prune = hist_sub.add_parser(
        "prune", help="apply retention policies and delete "
                      "out-of-policy records")
    hist_prune.add_argument("db", help="historian SQLite file")
    hist_prune.add_argument("--kind", default="",
                            help="restrict to one record kind "
                                 "(default: every kind)")
    hist_prune.add_argument("--max-age", type=float, default=None,
                            help="delete records older than this many "
                                 "wall seconds")
    hist_prune.add_argument("--max-count", type=int, default=None,
                            help="keep only the newest N records per "
                                 "kind")

    workloads = sub.add_parser("workloads",
                               help="list available benchmarks")
    workloads.add_argument("--json", action="store_true",
                           help="machine-readable catalog (name, "
                                "params, defaults) — the contract "
                                "fleet jobs are validated against")
    return parser


class _GracefulShutdown:
    """SIGTERM/SIGINT → stop the engine, let the caller flush and exit 0.

    A fleet manager terminates its workers with SIGTERM; an operator
    uses Ctrl-C.  Either way the run must wind down cleanly — abort the
    simulation, flush whatever the command exports — and report success:
    being told to stop is not a failure.  Handlers are restored on
    ``__exit__`` so library callers (tests invoke :func:`main`
    in-process) don't leak process-wide state.
    """

    def __init__(self, simulation):
        self._simulation = simulation
        self._previous = {}
        self.requested = False

    def _handle(self, signum, frame):  # noqa: ARG002 (signal signature)
        self.requested = True
        self._simulation.abort()

    def __enter__(self) -> "_GracefulShutdown":
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum,
                                                       self._handle)
            except ValueError:
                pass  # not the main thread: run unguarded
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.full_scale:
        config = GPUPlatformConfig.r9_nano_mcm(
            num_chiplets=args.chiplets,
            l2_write_buffer_bug=args.buggy_l2)
        workload = (SUITE[args.workload]() if args.workload in SUITE
                    else StoreStorm())
    else:
        config = GPUPlatformConfig.small(
            num_chiplets=args.chiplets,
            l2_write_buffer_bug=args.buggy_l2)
        workload = suite_small().get(args.workload) or StoreStorm()
    if args.shards > 1:
        return _run_sharded(args, config, workload)
    platform = GPUPlatform(config)
    run = workload.enqueue(platform.driver)

    monitor: Optional[Monitor] = None
    if args.monitor:
        monitor = Monitor(platform.simulation)
        monitor.attach_driver(platform.driver)
        monitor.start_sampler()
        print(f"AkitaRTM dashboard: "
              f"{monitor.start_server(port=args.port)}")

    result = {}
    thread = threading.Thread(
        target=lambda: result.setdefault(
            "ok", platform.run(hang_wait=args.hang_wait)))
    start = time.monotonic()
    with _GracefulShutdown(platform.simulation) as shutdown:
        thread.start()
        last_wall, last_events = start, 0
        while thread.is_alive():
            thread.join(timeout=args.progress_interval)
            kernel = run.kernels[0]
            state = platform.simulation.run_state
            wall = time.monotonic()
            events = platform.engine.event_count
            kips = metrics_rate(events - last_events,
                                wall - last_wall) / 1000.0
            last_wall, last_events = wall, events
            print(f"t={platform.simulation.now * 1e6:9.2f}us "
                  f"state={state:9s} "
                  f"wgs={kernel.completed}/{kernel.total} "
                  f"{kips:8.1f} kevents/s")
            if state == "hung" and args.hang_wait == 0.0:
                break
        thread.join()
    elapsed = time.monotonic() - start
    ok = result.get("ok", False)
    state = ("interrupted" if shutdown.requested
             else "completed" if ok
             else platform.simulation.run_state)
    print(f"{state} "
          f"in {elapsed:.1f}s wall, "
          f"{platform.simulation.now * 1e6:.2f}us simulated, "
          f"{platform.engine.event_count:,} events")
    if monitor is not None:
        monitor.stop_server()  # flushes exports before exit
    if shutdown.requested:
        print("shutdown signal honoured: engine stopped, "
              "exports flushed")
        return 0
    return 0 if ok else 1


def _run_sharded(args: argparse.Namespace, config, workload) -> int:
    """``repro run --shards N``: the conservative-sync sharded mode.

    The coordinator's gateway (``--monitor``) federates every shard's
    AkitaRTM dashboard behind one URL; progress lines sum the shards'
    local workgroup counts (exact — each workgroup runs on exactly one
    shard)."""
    from .shard import ShardCoordinator
    coordinator = ShardCoordinator(config, workload, args.shards,
                                   monitor=args.monitor,
                                   port=args.port)
    box: dict = {}

    def _drive() -> None:
        try:
            box["result"] = coordinator.run()
        except Exception as exc:  # noqa: BLE001 - reported below
            box["error"] = exc

    thread = threading.Thread(target=_drive)
    start = time.monotonic()
    thread.start()
    if args.monitor:
        while thread.is_alive() and coordinator.dashboard_url is None:
            time.sleep(0.05)
        if coordinator.dashboard_url:
            print(f"AkitaRTM federated dashboard: "
                  f"{coordinator.dashboard_url}")
    while thread.is_alive():
        thread.join(timeout=args.progress_interval)
        if not thread.is_alive():
            break
        bars = coordinator.merged_progress()
        done = sum(b["completed"] for b in bars)
        total = sum(b["total"] for b in bars)
        status = coordinator.shard_status()
        print(f"shards={args.shards} "
              f"windows={status['windows']:,} wgs={done}/{total}")
    thread.join()
    coordinator.close()
    if "error" in box:
        print(f"error: {box['error']}", file=sys.stderr)
        return 1
    result = box["result"]
    elapsed = time.monotonic() - start
    print(f"{'completed' if result.completed else 'hung'} "
          f"in {elapsed:.1f}s wall, "
          f"{result.sim_time * 1e6:.2f}us simulated, "
          f"{result.events:,} events on {result.num_shards} shards, "
          f"{result.windows:,} windows, "
          f"{result.boundary_messages:,} boundary messages")
    return 0 if result.completed else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    platform = GPUPlatform(problem_platform_config())
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    monitor.start_sampler()
    problem_workload().enqueue(platform.driver)
    url = monitor.start_server(port=args.port)
    print(f"AkitaRTM dashboard: {url}")
    print("Serving the congested im2col simulation of case study 1. "
          "Open the URL and explore; Ctrl-C to stop.")
    thread = threading.Thread(
        target=lambda: platform.run(hang_wait=3600.0), daemon=True)
    thread.start()
    deadline = (time.monotonic() + args.duration) if args.duration \
        else None
    try:
        while thread.is_alive():
            if deadline is not None and time.monotonic() > deadline:
                break
            time.sleep(0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    platform.simulation.abort()
    thread.join(timeout=30)
    monitor.stop_server()
    print("demo stopped")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    result = run_study(think_time=args.think_time)
    print("successful participants:",
          ", ".join(result.successful_participants))
    print("most used feature:", result.most_used_feature)
    print("least used feature:", result.least_used_feature)
    print()
    print(result.survey.format())
    print()
    print("matches paper Figure 6:", result.matches_paper_figure6())
    if args.report:
        import pathlib
        pathlib.Path(args.report).write_text(result.format_report())
        print(f"report written to {args.report}")
    return 0 if result.matches_paper_figure6() else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .trace import RingStore, SQLiteStore, Tracer, export_events
    config = GPUPlatformConfig.small(
        num_chiplets=args.chiplets,
        l2_write_buffer_bug=args.buggy_l2)
    workload = suite_small()[args.workload]
    platform = GPUPlatform(config)
    workload.enqueue(platform.driver)

    if args.backend == "sqlite":
        if not args.db:
            print("error: --backend sqlite needs --db", file=sys.stderr)
            return 2
        store = SQLiteStore(args.db)
    else:
        store = RingStore(args.capacity)
    tracer = Tracer(platform.simulation, store,
                    include=args.include or None)
    tracer.start()
    try:
        ok = platform.run(hang_wait=args.hang_wait)
    finally:
        # A hung run still has a story to tell: stop (flushes), export.
        tracer.stop()
    state = "completed" if ok else platform.simulation.run_state
    stats = store.stats()
    print(f"{state}: {stats['recorded']:,} events recorded "
          f"({stats.get('dropped', 0):,} dropped), "
          f"t={platform.simulation.now * 1e6:.2f}us")
    if args.out:
        export_events(store.query(limit=0), args.format, args.out)
        print(f"wrote {args.format} trace to {args.out}")
    elif args.backend == "sqlite":
        print(f"trace database: {args.db}")
    tracer.close()
    return 0 if ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .metrics import SimMetrics, expose
    config = GPUPlatformConfig.small(
        num_chiplets=args.chiplets,
        l2_write_buffer_bug=args.buggy_l2)
    workload = suite_small()[args.workload]
    platform = GPUPlatform(config)
    workload.enqueue(platform.driver)

    sim_metrics = SimMetrics(platform.simulation)
    sim_metrics.start()
    try:
        ok = platform.run(hang_wait=args.hang_wait)
    finally:
        # A hung run's final counters are exactly what to look at.
        sim_metrics.stop()
    state = "completed" if ok else platform.simulation.run_state
    text = expose(sim_metrics.registry)
    if args.out:
        import pathlib
        pathlib.Path(args.out).write_text(text)
        print(f"{state}: wrote exposition "
              f"({len(sim_metrics.registry.names)} families) "
              f"to {args.out}")
    else:
        print(text, end="")
        print(f"# run {state}, "
              f"t={platform.simulation.now * 1e6:.2f}us",
              file=sys.stderr)
    return 0 if ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    handler = {
        "record": _profile_record,
        "report": _profile_report,
        "export": _profile_export,
        "diff": _profile_diff,
    }[args.profile_command]
    return handler(args)


def _load_summary(path: str) -> dict:
    import pathlib
    try:
        return json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read summary {path}: {exc}")


def _print_summary(summary: dict, top: int) -> None:
    sampled = summary.get("sampled_seconds", 0.0)
    print(f"duration {summary.get('duration', 0.0):.2f}s wall, "
          f"{summary.get('samples', 0)} samples, "
          f"{sampled:.2f}s attributed"
          + (f" across {summary['jobs']} jobs"
             if summary.get("jobs") else ""))
    print("layers:")
    for layer, seconds in summary.get("layers", {}).items():
        share = (seconds / sampled * 100.0) if sampled else 0.0
        print(f"  {layer:10s} {seconds:9.3f}s  {share:5.1f}%")
    print(f"top functions (self time):")
    for fn in summary.get("functions", [])[:max(0, top)]:
        print(f"  {fn['self']:8.3f}s self {fn['total']:8.3f}s total "
              f"[{fn.get('layer', 'other'):8s}] {fn['name']} "
              f"({fn['file']}:{fn['line']})")


def _profile_record(args: argparse.Namespace) -> int:
    from .core.atomicio import atomic_write_json
    config = GPUPlatformConfig.small(
        num_chiplets=args.chiplets,
        l2_write_buffer_bug=args.buggy_l2)
    workload = suite_small()[args.workload]
    platform = GPUPlatform(config)
    workload.enqueue(platform.driver)

    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    monitor.ensure_sim_metrics().start()
    monitor.start_sampler()
    if args.server:
        print(f"AkitaRTM dashboard: {monitor.start_server()}")
    profiler = monitor.start_continuous_profiling(
        interval=args.interval, window_seconds=args.window)
    try:
        ok = platform.run(hang_wait=0.0)
    finally:
        # A hung run's profile is exactly what to look at: stop the
        # sampling thread first so the summary is a settled snapshot.
        profiler.stop()
        summary = profiler.summary()
        if args.server:
            monitor.stop_server()
        else:
            monitor.stop_sampler()
            monitor.ensure_sim_metrics().stop()
    state = "completed" if ok else platform.simulation.run_state
    atomic_write_json(args.out, summary)
    print(f"{state}: {summary['samples']} samples over "
          f"{summary['duration']:.2f}s wall; wrote summary to "
          f"{args.out}")
    _print_summary(summary, top=5)
    return 0 if ok else 1


def _profile_report(args: argparse.Namespace) -> int:
    summary = _load_summary(args.summary)
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
        return 0
    _print_summary(summary, top=args.top)
    return 0


def _profile_export(args: argparse.Namespace) -> int:
    from .core.atomicio import atomic_write_json, atomic_write_text
    from .profile import (collapsed_stacks, speedscope_document,
                          summary_stack_map)
    summary = _load_summary(args.summary)
    stacks = summary_stack_map(summary)
    if not stacks:
        print(f"error: {args.summary} holds no stacks to export",
              file=sys.stderr)
        return 1
    if args.format == "collapsed":
        atomic_write_text(args.out, collapsed_stacks(stacks))
    else:
        atomic_write_json(args.out, speedscope_document(
            stacks, name=f"repro profile: {args.summary}"))
    print(f"wrote {args.format} export to {args.out}")
    return 0


def _profile_diff(args: argparse.Namespace) -> int:
    from .profile import diff_summaries
    diff = diff_summaries(_load_summary(args.a), _load_summary(args.b),
                          top=args.top)
    if args.json:
        print(json.dumps(diff, indent=2, default=str))
        return 0
    print(f"profile diff: {args.a} vs {args.b}")
    _print_profile_diff(diff, top=args.top, indent="")
    return 0


def _print_profile_diff(diff: dict, top: int, indent: str) -> None:
    """Shared renderer for ``profile diff`` and the profile section of
    ``historian compare``."""
    duration = diff.get("duration", {})
    sampled = diff.get("sampled_seconds", {})
    print(f"{indent}wall {duration.get('a', 0.0):.2f}s -> "
          f"{duration.get('b', 0.0):.2f}s, attributed "
          f"{sampled.get('a', 0.0):.2f}s -> {sampled.get('b', 0.0):.2f}s")
    print(f"{indent}layers (by |delta|):")
    for layer, entry in diff.get("layers", {}).items():
        ratio = entry.get("ratio")
        print(f"{indent}  {layer:10s} {entry['a']:9.3f}s -> "
              f"{entry['b']:9.3f}s  ({entry['delta']:+9.3f}s"
              f"{', x%.3f' % ratio if ratio is not None else ''})")
    moved = [fn for fn in diff.get("functions", []) if fn.get("delta")]
    if moved:
        print(f"{indent}functions that moved most (self time):")
    for fn in moved[:max(0, top)]:
        print(f"{indent}  {fn['delta']:+8.3f}s "
              f"[{fn.get('layer', 'other'):8s}] {fn['name']} "
              f"({fn['file']})")


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "status":
        return _fleet_status(args)
    if args.fleet_command == "resume":
        return _fleet_resume(args)
    return _fleet_run(args)


def _fleet_status(args: argparse.Namespace) -> int:
    from .core import RTMClient, RTMConnectionError
    client = RTMClient(args.url)
    try:
        status = client.fleet_status()
    except RTMConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, default=str))
        return 0
    summary = status.get("summary", {})
    print(f"gateway {status.get('gateway_url', args.url)}: "
          f"{'drained' if status.get('drained') else 'running'}, "
          f"{summary.get('completed', 0)} completed / "
          f"{summary.get('failed', 0)} failed / "
          f"{summary.get('running', 0)} running / "
          f"{summary.get('queued', 0)} queued "
          f"({summary.get('retries', 0)} retries)")
    for worker in status.get("workers", []):
        print(f"  {worker['worker_id']:4s} {worker['state']:8s} "
              f"job={worker['job_id']} attempt={worker['attempt']} "
              f"url={worker.get('url') or '-'}")
    return 0


def _fleet_worker_args(args: argparse.Namespace) -> List[str]:
    """Checkpoint and profiling flags forwarded to every worker
    process.  A checkpoint dir with no cadence defaults to an event
    cadence — a dir alone clearly means "I want checkpoints"."""
    extra: List[str] = []
    if args.checkpoint_dir:
        extra += ["--checkpoint-dir", args.checkpoint_dir]
        events = args.checkpoint_events
        if events <= 0 and args.checkpoint_interval <= 0:
            events = 20_000
        if events > 0:
            extra += ["--checkpoint-events", str(events)]
        if args.checkpoint_interval > 0:
            extra += ["--checkpoint-interval",
                      str(args.checkpoint_interval)]
    if args.profile or args.profile_out:
        extra += ["--profile",
                  "--profile-interval", str(args.profile_interval)]
    return extra


class _FleetShutdown:
    """SIGTERM/SIGINT → drain the campaign gracefully.

    The handler only flags the request; the campaign wait loop notices,
    stops dispatching, lets the manager flush worker results, and —
    when a journal is attached — compacts it into a clean snapshot.
    Being told to stop is not a failure (exit 0), and the journal left
    behind is immediately resumable.
    """

    def __init__(self):
        self.requested = False
        self._event = threading.Event()
        self._previous = {}

    def _handle(self, signum, frame):  # noqa: ARG002 (signal signature)
        self.requested = True
        self._event.set()

    def __enter__(self) -> "_FleetShutdown":
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum,
                                                       self._handle)
            except ValueError:
                pass  # not the main thread: run unguarded
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)

    def wait_drained(self, manager, timeout: float) -> bool:
        """Small-step wait so a signal is honoured within ~0.2 s."""
        deadline = time.monotonic() + timeout
        while not self.requested:
            if manager.drained.wait(timeout=0.2):
                return True
            if time.monotonic() > deadline:
                return False
        return False


def _drive_campaign(args: argparse.Namespace, manager, journal,
                    num_jobs: int) -> int:
    """Start gateway + manager, wait for the queue to drain (or a
    signal / the wall bound), harvest, persist artifacts atomically,
    and settle the exit code.  Shared by ``fleet run`` and ``fleet
    resume``."""
    from .core import RTMClient
    from .core.atomicio import atomic_write_json, atomic_write_text
    from .fleet import FleetGateway, replay_journal

    gateway = FleetGateway(manager, port=args.port)
    historian = service = None
    if getattr(args, "historian", ""):
        from .historian import Historian, HistorianService
        historian = Historian(args.historian)
        service = HistorianService(
            historian, campaign_id=args.campaign or None,
            manager=manager, interval=args.historian_interval,
            meta={"workers": args.workers, "jobs": num_jobs})
        service.bind_gateway(gateway)
    gateway.start()
    manager.start()
    if service is not None:
        service.start()
    mode = "cold" if getattr(args, "cold", False) else "warm"
    print(f"fleet gateway: {gateway.url}  "
          f"({num_jobs} jobs, {args.workers} {mode} workers)")
    if journal is not None:
        print(f"campaign journal: {journal.path}")
    if service is not None:
        print(f"historian: {args.historian} "
              f"campaign {service.campaign_id}")
    with _FleetShutdown() as shutdown:
        try:
            drained = shutdown.wait_drained(manager, args.timeout)
            # Harvest through the gateway's public API, like any client
            # would — this is the paper's single pane of glass.
            client = RTMClient(gateway.url)
            status = client.fleet_status()
            metrics_text = client.metrics_text()
            profile_doc = None
            if args.profile_out:
                # The gateway dies with this process: render the merged
                # campaign speedscope document while it is still up.
                profile_doc = client.fleet_profile(format="speedscope")
        finally:
            manager.stop()
            if service is not None:
                # Final harvest after the manager settled every job,
                # while the finals cache is still warm.
                service.stop()
            gateway.stop()
            if historian is not None:
                historian.close()
            if journal is not None:
                # Workers torn down by stop() journaled their fates
                # above; compact everything into one clean snapshot so
                # a resume replays a single record, not the full WAL.
                journal.append(
                    "campaign", critical=True,
                    action=("drained" if manager.drained.is_set()
                            else "sigterm-drain" if shutdown.requested
                            else "timeout"))
                journal.compact(replay_journal(journal.path))
                journal.close()

    if args.status_out:
        atomic_write_json(args.status_out, status)
        print(f"wrote fleet status to {args.status_out}")
    if args.metrics_out:
        atomic_write_text(args.metrics_out, metrics_text)
        print(f"wrote federated metrics to {args.metrics_out}")
    if args.profile_out and profile_doc is not None:
        atomic_write_json(args.profile_out, profile_doc)
        print(f"wrote campaign speedscope profile to "
              f"{args.profile_out}")

    summary = status.get("summary", {})
    for job in status.get("jobs", []):
        workers = ",".join(job.get("workers", [])) or "-"
        print(f"  {job['spec']['job_id']:16s} {job['state']:9s} "
              f"attempts={job.get('attempt', 0) + 1} "
              f"workers={workers}")
    if shutdown.requested:
        print(f"interrupted: campaign drained gracefully"
              f"{' and journaled' if journal is not None else ''}; "
              f"{summary.get('completed', 0)} completed so far")
        return 0  # being told to stop is not a failure
    print(f"{'drained' if drained else 'TIMEOUT'}: "
          f"{summary.get('completed', 0)} completed, "
          f"{summary.get('failed', 0)} failed, "
          f"{summary.get('retries', 0)} retries")
    # A campaign succeeds only if it drained and every job completed:
    # failed, still-queued or still-running jobs all mean the exit code
    # must be non-zero (a CI gate reads this).
    ok = drained and not summary.get("failed", 0) \
        and not summary.get("queued", 0) and not summary.get("running", 0)
    return 0 if ok else 1


def _fleet_run(args: argparse.Namespace) -> int:
    from .fleet import (CampaignJournal, FleetManager, JobQueue, JobSpec,
                        workload_catalog)

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    chiplets = [int(c) for c in args.chiplets.split(",") if c.strip()]
    if not workloads or not chiplets:
        print("error: need at least one workload and one chiplet count",
              file=sys.stderr)
        return 2
    catalog = workload_catalog()
    unknown = sorted(set(workloads) - set(catalog))
    if unknown:
        print(f"error: unknown workloads {', '.join(unknown)} "
              f"(see: repro workloads --json)", file=sys.stderr)
        return 2

    specs = []
    for workload in workloads:
        for count in chiplets:
            specs.append(JobSpec(f"{workload}-c{count}", workload,
                                 chiplets=count, buggy_l2=args.buggy_l2,
                                 max_retries=args.max_retries))
    if args.crash_first:
        # Restart-policy demo: stall the first job's first attempt; the
        # watchdog aborts it and the retry runs clean.
        specs[0].fault = {"kind": "stall", "target": "*WriteBuffer*",
                          "start": 5e-7}

    queue = JobQueue()
    journal = None
    if args.journal:
        journal = CampaignJournal(args.journal)
        journal.attach(queue)  # before submit: submissions are records
        journal.append("campaign", critical=True, action="start",
                       workers=args.workers, jobs=len(specs))
    queue.submit_all(specs)
    manager = FleetManager(queue, num_workers=args.workers,
                           warm=not args.cold,
                           max_worker_restarts=args.worker_restarts,
                           worker_args=_fleet_worker_args(args),
                           journal=journal)
    return _drive_campaign(args, manager, journal, len(specs))


def _fleet_resume(args: argparse.Namespace) -> int:
    from .fleet import CampaignJournal, FleetManager, replay_journal

    try:
        replay = replay_journal(args.journal_path)
    except OSError as exc:
        print(f"error: cannot read journal: {exc}", file=sys.stderr)
        return 2
    if not replay.jobs:
        print(f"error: {args.journal_path} holds no jobs "
              f"({replay.records} records, "
              f"{replay.corrupt_records} corrupt)", file=sys.stderr)
        return 2

    counts = replay.counts()
    damage = []
    if replay.torn_tail:
        damage.append("torn tail")
    if replay.corrupt_records:
        damage.append(f"{replay.corrupt_records} corrupt record(s)")
    print(f"replayed {replay.records} journal records: "
          f"{counts['completed']} completed, {counts['failed']} failed, "
          f"{counts['queued'] + counts['running']} to run"
          + (f"  [{', '.join(damage)}]" if damage else ""))

    queue, resumed = replay.build_queue()
    for job_id in resumed:
        print(f"  resuming {job_id}"
              + (f" from checkpoint t="
                 f"{replay.checkpoints[job_id].get('sim_time')}"
                 if job_id in replay.checkpoints else " cold"))

    # Compact before running: the rebuilt state becomes the journal's
    # baseline snapshot, and this campaign's records append after it.
    journal = CampaignJournal(args.journal_path)
    journal.compact(replay)
    journal.append("campaign", critical=True, action="resume",
                   workers=args.workers, resumed_jobs=len(resumed))
    journal.attach(queue)
    manager = FleetManager(queue, num_workers=args.workers,
                           warm=not args.cold,
                           max_worker_restarts=args.worker_restarts,
                           worker_args=_fleet_worker_args(args),
                           journal=journal)
    manager.preload_resume(replay)
    return _drive_campaign(args, manager, journal, len(replay.jobs))


def _cmd_historian(args: argparse.Namespace) -> int:
    handler = {
        "list": _historian_list,
        "show": _historian_show,
        "compare": _historian_compare,
        "prune": _historian_prune,
    }[args.historian_command]
    from .historian import Historian
    historian = Historian(args.db)
    try:
        return handler(args, historian)
    finally:
        historian.close()


def _historian_list(args: argparse.Namespace, historian) -> int:
    campaigns = historian.campaigns()
    if args.json:
        print(json.dumps(campaigns, indent=2, default=str))
        return 0
    if not campaigns:
        print(f"{args.db}: no campaigns recorded")
        return 0
    for campaign in campaigns:
        records = campaign["records"]
        state = "open" if campaign["finished_wall"] is None else "closed"
        print(f"{campaign['campaign_id']:24s} {state:6s} "
              f"{records.get('job', 0):4d} jobs "
              f"{records.get('snapshot', 0):5d} snapshots "
              f"{records.get('postmortem', 0):3d} post-mortems "
              f"{records.get('alert', 0):3d} alerts "
              f"{records.get('profile', 0):3d} profiles")
    stats = historian.stats()
    if stats["degraded"] or stats["corrupt_records"]:
        print(f"damage: degraded={stats['degraded']} "
              f"corrupt={stats['corrupt_records']} "
              f"read_errors={stats['read_errors']}")
    return 0


def _historian_show(args: argparse.Namespace, historian) -> int:
    jobs = historian.jobs(args.campaign)
    postmortems = historian.postmortems(args.campaign)
    alerts = historian.alerts(args.campaign)
    if args.json:
        print(json.dumps({"jobs": jobs, "postmortems": postmortems,
                          "alerts": alerts}, indent=2, default=str))
        return 0
    if not jobs and not postmortems and not alerts:
        print(f"error: no records for campaign "
              f"{args.campaign!r} in {args.db}", file=sys.stderr)
        return 1
    print(f"campaign {args.campaign}: {len(jobs)} jobs, "
          f"{len(postmortems)} post-mortems, {len(alerts)} alert "
          f"transitions")
    for record in jobs:
        payload = record["payload"]
        print(f"  {record['name']:16s} {payload.get('state', '?'):9s} "
              f"attempts={payload.get('attempt', 0) + 1} "
              f"worker={payload.get('worker_id') or '-'}")
    for record in postmortems:
        payload = record["payload"]
        watchdog = payload.get("watchdog") or {}
        print(f"  post-mortem {record['name']}: "
              f"verdict={watchdog.get('verdict') or '-'} "
              f"error={str(payload.get('error') or '-')[:60]}")
    for record in alerts:
        payload = record["payload"]
        print(f"  alert {payload.get('state'):8s} "
              f"{payload.get('name')} value={payload.get('value')}")
    return 0


def _historian_compare(args: argparse.Namespace, historian) -> int:
    a, b = args.a, args.b
    if not a or not b:
        campaigns = [c["campaign_id"] for c in historian.campaigns()]
        if len(campaigns) < 2:
            print("error: compare needs two campaigns (found "
                  f"{len(campaigns)})", file=sys.stderr)
            return 1
        a = a or campaigns[-2]
        b = b or campaigns[-1]
    report = historian.compare(a, b)
    if args.out:
        from .core.atomicio import atomic_write_json
        atomic_write_json(args.out, report)
    if args.json:
        print(json.dumps(report, indent=2, default=str))
        return 0
    print(f"historian compare: {a} vs {b}")
    for side in ("a", "b"):
        jobs = report[side]["jobs"]
        completed = sum(1 for j in jobs if j["state"] == "completed")
        print(f"  {report[side]['campaign_id']}: {len(jobs)} jobs "
              f"({completed} completed)")
        for job in jobs:
            print(f"    {job['job_id']:16s} {job['state'] or '?':9s} "
                  f"retries={job['retries']}")
    moved = [(name, entry) for name, entry in report["families"].items()
             if entry.get("delta") not in (None, 0.0)]
    moved.sort(key=lambda item: -abs(item[1]["delta"]))
    print(f"  {len(report['families'])} shared metric families, "
          f"{len(moved)} moved")
    for name, entry in moved[:max(0, args.top)]:
        ratio = entry.get("ratio")
        print(f"    {name:48s} {entry['a']:14.6g} -> "
              f"{entry['b']:14.6g}  "
              f"({'x%.3f' % ratio if ratio is not None else 'new'})")
    if report["only_a"]:
        print(f"  only in {a}: {', '.join(report['only_a'][:8])}")
    if report["only_b"]:
        print(f"  only in {b}: {', '.join(report['only_b'][:8])}")
    profile = report.get("profile")
    if profile:
        jobs_profiled = profile.get("jobs_profiled", {})
        print(f"  profile: {jobs_profiled.get('a', 0)} vs "
              f"{jobs_profiled.get('b', 0)} jobs profiled")
        _print_profile_diff(profile, top=args.top, indent="  ")
    if args.out:
        print(f"wrote comparison JSON to {args.out}")
    return 0


def _historian_prune(args: argparse.Namespace, historian) -> int:
    from .historian import RECORD_KINDS, RetentionPolicy
    if args.max_age is None and args.max_count is None:
        print("error: prune needs --max-age and/or --max-count",
              file=sys.stderr)
        return 2
    kinds = [args.kind] if args.kind else list(RECORD_KINDS)
    try:
        policies = [RetentionPolicy(kind, max_age=args.max_age,
                                    max_count=args.max_count)
                    for kind in kinds]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    deleted = historian.prune(policies)
    total = sum(deleted.values())
    detail = ", ".join(f"{kind}={count}"
                       for kind, count in sorted(deleted.items()))
    print(f"pruned {total} records" + (f" ({detail})" if detail else ""))
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        import dataclasses
        from .fleet import workload_catalog
        catalog = []
        for name, workload in sorted(workload_catalog().items()):
            kernel = workload.kernel()
            catalog.append({
                "name": name,
                "type": type(workload).__name__,
                "params": {f.name: getattr(workload, f.name)
                           for f in dataclasses.fields(workload)},
                "workgroups": kernel.num_workgroups,
                "wavefronts_per_wg": kernel.wavefronts_per_wg,
                "input_bytes": workload.input_bytes(),
                "output_bytes": workload.output_bytes(),
            })
        print(json.dumps(catalog, indent=2))
        return 0
    for name, factory in sorted(SUITE.items()):
        workload = factory()
        kernel = workload.kernel()
        print(f"{name:8s} {type(workload).__name__:8s} "
              f"{kernel.num_workgroups:>5d} workgroups x "
              f"{kernel.wavefronts_per_wg} wavefronts, "
              f"{workload.input_bytes():>10,d} B in / "
              f"{workload.output_bytes():>10,d} B out")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "demo": _cmd_demo,
        "study": _cmd_study,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "profile": _cmd_profile,
        "fleet": _cmd_fleet,
        "historian": _cmd_historian,
        "workloads": _cmd_workloads,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
