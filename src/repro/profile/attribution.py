"""Overhead attribution: from sampled stacks to named layers.

The ROADMAP's top perf item — cutting the measured 51–163% monitoring
overhead toward the paper's near-free passive mode — needs to know
*which layer* the overhead lives in.  This module classifies every
sampled frame by module path into one of a small set of named layers:

========== ==========================================================
Layer      Module-path rule
========== ==========================================================
hooks      ``repro/akita/hooks.py`` (the fan-out machinery itself)
engine     the rest of ``repro/akita/`` (event dispatch, ports,
           buffers, connections — the simulator substrate)
metrics    ``repro/metrics/``
trace      ``repro/trace/``
faults     ``repro/faults/``
server     ``repro/core/server.py`` + the stdlib HTTP/socket stack
profiler   ``repro/profile/`` and ``repro/core/profiler.py``
fleet      ``repro/fleet/``
monitor    the rest of ``repro/core/`` + historian + checkpoint
workload   ``repro/gpu/``, ``repro/workloads/``, ``repro/studies/``
idle       a leaf parked in ``threading.py`` (``Event.wait``,
           ``Condition.wait``, ``join``) — the thread exists but burns
           nothing; charging its caller would inflate that layer
other      everything else (user code, stdlib leaves)
========== ==========================================================

A *sample* is attributed to the layer of its leaf-most classifiable
frame: a stdlib frame (``json.dumps``, ``time.sleep``) defers to its
caller, so time spent inside library calls is charged to the layer
that made them — the attribution question is "who asked for this
time", not "whose file was on top".

The same module also merges and diffs the compact **profile
summaries** that ride the fleet control channel and the historian:
``{layers, threads, functions, stacks}`` dictionaries small enough to
journal, yet rich enough to rebuild a speedscope view of a whole
campaign.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: A sampled frame: (function name, source path, first line number).
Frame = Tuple[str, str, int]
#: A sampled stack, leaf-first.
Stack = Tuple[Frame, ...]

#: Ordered (path substring, layer) rules; first match wins.
PATH_RULES: Tuple[Tuple[str, str], ...] = (
    ("repro/akita/hooks", "hooks"),
    ("repro/akita/", "engine"),
    ("repro/metrics/", "metrics"),
    ("repro/trace/", "trace"),
    ("repro/faults/", "faults"),
    ("repro/core/server", "server"),
    ("repro/core/profiler", "profiler"),
    ("repro/profile/", "profiler"),
    ("repro/fleet/", "fleet"),
    ("repro/historian/", "monitor"),
    ("repro/checkpoint/", "monitor"),
    ("repro/core/", "monitor"),
    ("repro/gpu/", "workload"),
    ("repro/workloads/", "workload"),
    ("repro/studies/", "workload"),
    ("http/server", "server"),
    ("socketserver", "server"),
    ("/socket.py", "server"),
    ("/selectors.py", "server"),
)

#: Leaf function names in ``threading.py`` that mean "parked", not
#: "working" — samples landing on them become the ``idle`` layer.
IDLE_LEAVES = frozenset({"wait", "_wait_for_tstate_lock", "join"})

#: Every layer name the rules can produce (+ the specials).
LAYERS: Tuple[str, ...] = tuple(dict.fromkeys(
    [layer for _, layer in PATH_RULES])) + ("idle", "other")

_classify_cache: Dict[str, Optional[str]] = {}


def classify_path(path: str) -> Optional[str]:
    """Layer of one source path, or None when no rule matches
    (the frame then defers to its caller)."""
    layer = _classify_cache.get(path)
    if layer is None and path not in _classify_cache:
        normalized = path.replace("\\", "/")
        layer = next((lay for fragment, lay in PATH_RULES
                      if fragment in normalized), None)
        _classify_cache[path] = layer
    return layer


def classify_stack(stack: Sequence[Frame]) -> str:
    """Attribute one leaf-first stack to a layer: the leaf-most frame
    a rule recognizes; ``other`` when none does.  A leaf parked in
    ``threading.py`` is ``idle`` regardless of who parked it."""
    if stack:
        name, path, _ = stack[0]
        if name in IDLE_LEAVES and path.replace(
                "\\", "/").endswith("/threading.py"):
            return "idle"
    for _, path, _ in stack:
        layer = classify_path(path)
        if layer is not None:
            return layer
    return "other"


def classify_frame(frame: Frame) -> str:
    """Layer label for one frame in isolation (function tables)."""
    name, path, _ = frame
    if name in IDLE_LEAVES and path.replace(
            "\\", "/").endswith("/threading.py"):
        return "idle"
    return classify_path(path) or "other"


# ----------------------------------------------------------------------
# Reports over stack maps (role -> stack -> seconds)
# ----------------------------------------------------------------------
def layer_seconds(stacks: Dict[str, Dict[Stack, float]]
                  ) -> Dict[str, Dict[str, float]]:
    """Per-thread-role, per-layer seconds of one stack map."""
    out: Dict[str, Dict[str, float]] = {}
    for role, per_stack in stacks.items():
        layers = out.setdefault(role, {})
        for stack, seconds in per_stack.items():
            layer = classify_stack(stack)
            layers[layer] = layers.get(layer, 0.0) + seconds
    return out


def function_totals(stacks: Dict[str, Dict[Stack, float]]
                    ) -> Dict[Frame, Dict[str, float]]:
    """Self/total seconds per function across every role."""
    totals: Dict[Frame, Dict[str, float]] = {}
    for per_stack in stacks.values():
        for stack, seconds in per_stack.items():
            if not stack:
                continue
            leaf = stack[0]
            entry = totals.setdefault(leaf, {"self": 0.0, "total": 0.0})
            entry["self"] += seconds
            for frame in set(stack):
                totals.setdefault(frame,
                                  {"self": 0.0, "total": 0.0}
                                  )["total"] += seconds
    return totals


def attribution_report(stacks: Dict[str, Dict[Stack, float]],
                       duration: float, samples: int,
                       top: int = 20) -> Dict[str, Any]:
    """The overhead-attribution report: Figure 7's overhead decomposed
    into named layers, plus the top functions of each layer."""
    per_role = layer_seconds(stacks)
    layers: Dict[str, float] = {}
    for role_layers in per_role.values():
        for layer, seconds in role_layers.items():
            layers[layer] = layers.get(layer, 0.0) + seconds
    total = sum(layers.values())
    functions = function_totals(stacks)
    ranked = sorted(functions.items(),
                    key=lambda item: (item[1]["self"], item[1]["total"]),
                    reverse=True)[:top]
    return {
        "duration": round(duration, 3),
        "samples": samples,
        "sampled_seconds": round(total, 4),
        "layers": {layer: round(sec, 4)
                   for layer, sec in sorted(layers.items(),
                                            key=lambda kv: -kv[1])},
        "threads": {role: {layer: round(sec, 4)
                           for layer, sec in sorted(role_layers.items(),
                                                    key=lambda kv: -kv[1])}
                    for role, role_layers in per_role.items()},
        "functions": [{
            "name": frame[0], "file": frame[1], "line": frame[2],
            "layer": classify_frame(frame),
            "self": round(stats["self"], 4),
            "total": round(stats["total"], 4),
        } for frame, stats in ranked],
    }


# ----------------------------------------------------------------------
# Compact summaries (fleet control channel / historian payloads)
# ----------------------------------------------------------------------
def make_summary(stacks: Dict[str, Dict[Stack, float]],
                 duration: float, samples: int,
                 top_functions: int = 40,
                 top_stacks: int = 250) -> Dict[str, Any]:
    """A JSON-able digest of a stack map, bounded in size so it can
    ride a control-channel line or a historian row."""
    report = attribution_report(stacks, duration, samples,
                                top=top_functions)
    flat: List[Tuple[str, Stack, float]] = [
        (role, stack, seconds)
        for role, per_stack in stacks.items()
        for stack, seconds in per_stack.items()]
    flat.sort(key=lambda item: item[2], reverse=True)
    kept = flat[:top_stacks]
    return {
        "duration": report["duration"],
        "samples": report["samples"],
        "sampled_seconds": report["sampled_seconds"],
        "layers": report["layers"],
        "threads": {role: round(sum(layers.values()), 4)
                    for role, layers in report["threads"].items()},
        "functions": report["functions"],
        "stacks": [{"role": role,
                    "frames": [list(frame) for frame in stack],
                    "seconds": round(seconds, 4)}
                   for role, stack, seconds in kept],
        "stacks_dropped": max(0, len(flat) - len(kept)),
    }


def summary_stack_map(summary: Dict[str, Any]
                      ) -> Dict[str, Dict[Stack, float]]:
    """Rebuild a stack map from one (or a merged) summary."""
    stacks: Dict[str, Dict[Stack, float]] = {}
    for row in summary.get("stacks", []):
        stack: Stack = tuple((str(f[0]), str(f[1]), int(f[2]))
                             for f in row["frames"])
        per = stacks.setdefault(row.get("role", "other"), {})
        per[stack] = per.get(stack, 0.0) + float(row["seconds"])
    return stacks


def merge_summaries(summaries: Iterable[Dict[str, Any]],
                    top_functions: int = 40,
                    top_stacks: int = 500) -> Dict[str, Any]:
    """Fold many per-job summaries into one campaign-wide summary."""
    merged: Dict[str, Any] = {
        "duration": 0.0, "samples": 0, "sampled_seconds": 0.0,
        "layers": {}, "threads": {}, "functions": [], "stacks": [],
        "stacks_dropped": 0, "jobs": 0,
    }
    functions: Dict[Tuple[str, str, int], Dict[str, Any]] = {}
    stacks: Dict[Tuple[str, Tuple[Tuple[str, str, int], ...]], float] = {}
    for summary in summaries:
        if not summary:
            continue
        merged["jobs"] += 1
        merged["duration"] = round(
            merged["duration"] + float(summary.get("duration", 0.0)), 3)
        merged["samples"] += int(summary.get("samples", 0))
        merged["sampled_seconds"] = round(
            merged["sampled_seconds"]
            + float(summary.get("sampled_seconds", 0.0)), 4)
        merged["stacks_dropped"] += int(summary.get("stacks_dropped", 0))
        for layer, sec in summary.get("layers", {}).items():
            merged["layers"][layer] = round(
                merged["layers"].get(layer, 0.0) + float(sec), 4)
        for role, sec in summary.get("threads", {}).items():
            merged["threads"][role] = round(
                merged["threads"].get(role, 0.0) + float(sec), 4)
        for fn in summary.get("functions", []):
            key = (fn["name"], fn["file"], int(fn["line"]))
            entry = functions.setdefault(key, {
                "name": fn["name"], "file": fn["file"],
                "line": int(fn["line"]),
                "layer": fn.get("layer", "other"),
                "self": 0.0, "total": 0.0})
            entry["self"] = round(entry["self"] + float(fn["self"]), 4)
            entry["total"] = round(entry["total"] + float(fn["total"]), 4)
        for row in summary.get("stacks", []):
            key = (row.get("role", "other"),
                   tuple((str(f[0]), str(f[1]), int(f[2]))
                         for f in row["frames"]))
            stacks[key] = stacks.get(key, 0.0) + float(row["seconds"])
    merged["layers"] = dict(sorted(merged["layers"].items(),
                                   key=lambda kv: -kv[1]))
    merged["functions"] = sorted(
        functions.values(),
        key=lambda fn: (fn["self"], fn["total"]),
        reverse=True)[:top_functions]
    ranked_stacks = sorted(stacks.items(), key=lambda kv: -kv[1])
    merged["stacks_dropped"] += max(0, len(ranked_stacks) - top_stacks)
    merged["stacks"] = [
        {"role": role, "frames": [list(frame) for frame in stack],
         "seconds": round(seconds, 4)}
        for (role, stack), seconds in ranked_stacks[:top_stacks]]
    return merged


def diff_summaries(a: Dict[str, Any], b: Dict[str, Any],
                   top: int = 20) -> Dict[str, Any]:
    """"Which function regressed" as data: per-layer and per-function
    deltas between two summaries (positive delta = b spent more)."""
    layers: Dict[str, Dict[str, float]] = {}
    for layer in set(a.get("layers", {})) | set(b.get("layers", {})):
        sec_a = float(a.get("layers", {}).get(layer, 0.0))
        sec_b = float(b.get("layers", {}).get(layer, 0.0))
        layers[layer] = {
            "a": round(sec_a, 4), "b": round(sec_b, 4),
            "delta": round(sec_b - sec_a, 4),
            "ratio": round(sec_b / sec_a, 4) if sec_a else None,
        }
    fn_a = {(f["name"], f["file"]): f for f in a.get("functions", [])}
    fn_b = {(f["name"], f["file"]): f for f in b.get("functions", [])}
    functions = []
    for key in set(fn_a) | set(fn_b):
        sec_a = float(fn_a.get(key, {}).get("self", 0.0))
        sec_b = float(fn_b.get(key, {}).get("self", 0.0))
        ref = fn_b.get(key) or fn_a.get(key) or {}
        functions.append({
            "name": key[0], "file": key[1],
            "layer": ref.get("layer", "other"),
            "a": round(sec_a, 4), "b": round(sec_b, 4),
            "delta": round(sec_b - sec_a, 4),
        })
    functions.sort(key=lambda fn: abs(fn["delta"]), reverse=True)
    return {
        "duration": {"a": a.get("duration", 0.0),
                     "b": b.get("duration", 0.0)},
        "sampled_seconds": {"a": a.get("sampled_seconds", 0.0),
                            "b": b.get("sampled_seconds", 0.0)},
        "layers": dict(sorted(layers.items(),
                              key=lambda kv: -abs(kv[1]["delta"]))),
        "functions": functions[:top],
    }
