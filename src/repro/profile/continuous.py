"""The continuous profiling plane: an always-on rolling profiler.

Where :class:`repro.core.profiler.SamplingProfiler` is the paper's
one-shot panel — start, look, stop, report dies with the process —
this profiler is designed to run for the whole life of a campaign:

* it keeps a **ring of fixed-duration profile windows** instead of one
  global aggregate, so "what was the simulation doing in the last
  thirty seconds" is answerable at any time without ever restarting;
* every sample is labeled with its **thread role** (simulation,
  server, monitor, …) via :mod:`repro.profile.threads`, so the server
  thread's time can never masquerade as simulation time;
* every sampled stack is **attributed to a layer** (folded in at
  window close so classification runs once per unique stack, not once
  per sample), feeding the cumulative
  ``rtm_profile_layer_seconds_total{layer=,thread=}`` registry family
  — the overhead decomposition rides ``/metrics``, SSE, federation and
  alert rules like any other family;
* when nobody has read a profile for a while it **backs off** its
  sampling rate geometrically (an unread profiler should cost
  approximately nothing); any read resets it to the base rate.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from . import threads as _threads
from .attribution import (Stack, attribution_report, classify_stack,
                          make_summary)
from .export import collapsed_stacks, speedscope_document


class ProfileWindow:
    """One fixed-duration slice of the rolling profile."""

    __slots__ = ("index", "wall_started", "started", "duration",
                 "samples", "stacks")

    def __init__(self, index: int, started: float, wall_started: float):
        self.index = index
        self.started = started
        self.wall_started = wall_started
        self.duration = 0.0
        self.samples = 0
        #: thread role -> leaf-first stack -> seconds
        self.stacks: Dict[str, Dict[Stack, float]] = {}

    def record(self, role: str, stack: Stack, dt: float) -> None:
        per = self.stacks.get(role)
        if per is None:
            per = self.stacks[role] = {}
        per[stack] = per.get(stack, 0.0) + dt

    def summary(self) -> Dict[str, Any]:
        """A small per-window digest (the ``/api/profile/windows``
        row): when it ran, how much it saw, where the time went."""
        layers: Dict[str, float] = {}
        for per_stack in self.stacks.values():
            for stack, seconds in per_stack.items():
                layer = classify_stack(stack)
                layers[layer] = layers.get(layer, 0.0) + seconds
        return {
            "index": self.index,
            "wall_started": round(self.wall_started, 3),
            "duration": round(self.duration, 3),
            "samples": self.samples,
            "threads": {role: round(sum(per.values()), 4)
                        for role, per in self.stacks.items()},
            "layers": {layer: round(sec, 4)
                       for layer, sec in sorted(layers.items(),
                                                key=lambda kv: -kv[1])},
        }


class ContinuousProfiler:
    """Always-on low-rate rolling profiler over every thread of
    interest, with adaptive back-off when nobody is reading."""

    def __init__(self, interval: float = 0.02,
                 window_seconds: float = 2.0,
                 ring: int = 15,
                 backoff_after: float = 30.0,
                 max_interval: float = 0.25):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if ring < 1:
            raise ValueError("ring must hold at least one window")
        self.interval = interval
        self.window_seconds = window_seconds
        self.backoff_after = backoff_after
        self.max_interval = max(max_interval, interval)
        self._ring: Deque[ProfileWindow] = deque(maxlen=ring)
        self._window: Optional[ProfileWindow] = None
        self._windows_opened = 0
        self._samples_total = 0
        self._started_at = 0.0
        #: cumulative (thread role, layer) -> seconds over *closed*
        #: windows, never reset while running: the monotonically
        #: increasing counter family (readers add the open window).
        self._layer_totals: Dict[tuple, float] = {}
        self._role_cache: Dict[int, str] = {}
        #: code object -> (name, path, firstlineno): frames are rebuilt
        #: on every sample but their code objects are long-lived, so
        #: interning keeps the sample path nearly allocation-free.
        self._frame_cache: Dict[Any, tuple] = {}
        #: leaf-first stack -> layer memo for the window-close fold.
        self._stack_layers: Dict[Stack, str] = {}
        self._last_touch = time.monotonic()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._registry = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Begin continuous sampling.  Idempotent."""
        if self.running:
            return
        self._stop.clear()
        self._started_at = time.monotonic()
        self._last_touch = self._started_at
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="rtm-cprofiler")
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling; the ring and totals stay readable."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        with self._lock:
            self._close_window(time.monotonic())

    def touch(self) -> None:
        """Note that somebody is reading: resets the back-off."""
        self._last_touch = time.monotonic()

    # ------------------------------------------------------------------
    # Sampling loop
    # ------------------------------------------------------------------
    @property
    def effective_interval(self) -> float:
        """The interval the sampler is using right now: the base rate
        while read, doubling per idle ``backoff_after`` period up to
        ``max_interval`` once nobody looks."""
        idle = time.monotonic() - self._last_touch
        if idle <= self.backoff_after:
            return self.interval
        periods = min(8, int(idle / self.backoff_after))
        return min(self.max_interval, self.interval * (2 ** periods))

    def _loop(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.effective_interval):
            self._sample(me)

    def _sample(self, me: int) -> None:
        dt = self.effective_interval
        now = time.monotonic()
        frames = sys._current_frames()
        with self._lock:
            window = self._window
            if window is None or \
                    now - window.started >= self.window_seconds:
                self._close_window(now)
                window = self._open_window(now)
            for thread_id, frame in frames.items():
                if thread_id == me:
                    continue
                role = self._role_of(thread_id)
                stack = self._walk(frame)
                if not stack:
                    continue
                window.record(role, stack, dt)
            window.samples += 1
            self._samples_total += 1

    def _open_window(self, now: float) -> ProfileWindow:
        self._windows_opened += 1
        self._window = ProfileWindow(self._windows_opened, now,
                                     time.time())
        # Thread roles can change between windows (a new run() pins the
        # simulation role to a new thread); re-resolve lazily.
        self._role_cache.clear()
        return self._window

    def _close_window(self, now: float) -> None:
        if self._window is not None:
            window = self._window
            window.duration = max(0.0, now - window.started)
            # Fold the window's stacks into the cumulative counter:
            # classification runs here, once per unique stack per
            # window, instead of on the 50 Hz sample path.
            for key, sec in self._window_breakdown(window).items():
                self._layer_totals[key] = \
                    self._layer_totals.get(key, 0.0) + sec
            self._ring.append(window)
            self._window = None

    def _window_breakdown(self, window: ProfileWindow) -> Dict[tuple, float]:
        """(role, layer) -> seconds for one window (caller holds the
        lock); stack classifications are memoized across windows."""
        memo = self._stack_layers
        if len(memo) > 8192:
            memo.clear()
        totals: Dict[tuple, float] = {}
        for role, per_stack in window.stacks.items():
            for stack, seconds in per_stack.items():
                layer = memo.get(stack)
                if layer is None:
                    layer = memo[stack] = classify_stack(stack)
                key = (role, layer)
                totals[key] = totals.get(key, 0.0) + seconds
        return totals

    def _role_of(self, thread_id: int) -> str:
        role = self._role_cache.get(thread_id)
        if role is None:
            name = ""
            for thread in threading.enumerate():
                if thread.ident == thread_id:
                    name = thread.name
                    break
            role = _threads.role_of(thread_id, name)
            self._role_cache[thread_id] = role
        return role

    def _walk(self, leaf_frame) -> Stack:
        cache = self._frame_cache
        stack: List[tuple] = []
        append = stack.append
        frame = leaf_frame
        while frame is not None:
            code = frame.f_code
            entry = cache.get(code)
            if entry is None:
                entry = cache[code] = (code.co_name, code.co_filename,
                                       code.co_firstlineno)
            append(entry)
            frame = frame.f_back
        # Drop thread-bootstrap scaffolding at the base, like the
        # one-shot profiler does.
        while stack and stack[-1][1].endswith("threading.py"):
            stack.pop()
        return tuple(stack)

    # ------------------------------------------------------------------
    # Reading (every reader resets the back-off)
    # ------------------------------------------------------------------
    def _live_windows(self) -> List[ProfileWindow]:
        """Ring + open window, oldest first (caller holds no lock)."""
        with self._lock:
            windows = list(self._ring)
            if self._window is not None:
                open_window = self._window
                open_window.duration = max(
                    0.0, time.monotonic() - open_window.started)
                windows.append(open_window)
            return windows

    def windows(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """Summaries of the most recent *last* windows (all by
        default), oldest first."""
        self.touch()
        windows = self._live_windows()
        if last is not None and last > 0:
            windows = windows[-last:]
        with self._lock:
            return [w.summary() for w in windows]

    def merged_stacks(self, last: Optional[int] = None
                      ) -> Dict[str, Dict[Stack, float]]:
        """One stack map folding the most recent *last* windows."""
        self.touch()
        windows = self._live_windows()
        if last is not None and last > 0:
            windows = windows[-last:]
        merged: Dict[str, Dict[Stack, float]] = {}
        with self._lock:
            for window in windows:
                for role, per_stack in window.stacks.items():
                    out = merged.setdefault(role, {})
                    for stack, seconds in per_stack.items():
                        out[stack] = out.get(stack, 0.0) + seconds
        return merged

    def _span(self, last: Optional[int]) -> tuple:
        windows = self._live_windows()
        if last is not None and last > 0:
            windows = windows[-last:]
        duration = sum(w.duration for w in windows)
        samples = sum(w.samples for w in windows)
        return duration, samples

    def attribution(self, last: Optional[int] = None,
                    top: int = 20) -> Dict[str, Any]:
        """The overhead-attribution report over recent windows."""
        duration, samples = self._span(last)
        report = attribution_report(self.merged_stacks(last),
                                    duration, samples, top=top)
        report["windows"] = min(len(self._ring)
                                + (1 if self._window else 0),
                                last or 10 ** 9)
        return report

    def summary(self, last: Optional[int] = None,
                top_functions: int = 40,
                top_stacks: int = 250) -> Dict[str, Any]:
        """The compact digest that rides the fleet control channel and
        the historian."""
        duration, samples = self._span(last)
        return make_summary(self.merged_stacks(last), duration, samples,
                            top_functions=top_functions,
                            top_stacks=top_stacks)

    def collapsed(self, last: Optional[int] = None,
                  role: Optional[str] = None) -> str:
        return collapsed_stacks(self.merged_stacks(last), role=role)

    def speedscope(self, last: Optional[int] = None,
                   name: str = "repro profile") -> Dict[str, Any]:
        return speedscope_document(self.merged_stacks(last), name=name)

    def _cumulative_layer_totals(self) -> Dict[tuple, float]:
        """Closed-window totals plus the open window (lock held)."""
        totals = dict(self._layer_totals)
        if self._window is not None:
            for key, sec in self._window_breakdown(
                    self._window).items():
                totals[key] = totals.get(key, 0.0) + sec
        return totals

    def layer_totals(self) -> Dict[str, Dict[str, float]]:
        """Cumulative seconds per (thread role, layer) since start."""
        with self._lock:
            totals: Dict[str, Dict[str, float]] = {}
            for (role, layer), seconds in \
                    self._cumulative_layer_totals().items():
                totals.setdefault(role, {})[layer] = round(seconds, 4)
            return totals

    def status(self) -> Dict[str, Any]:
        with self._lock:
            kept = len(self._ring) + (1 if self._window else 0)
        return {
            "running": self.running,
            "interval": self.interval,
            "effective_interval": round(self.effective_interval, 4),
            "backed_off": self.effective_interval > self.interval,
            "window_seconds": self.window_seconds,
            "ring": self._ring.maxlen,
            "windows_kept": kept,
            "windows_opened": self._windows_opened,
            "samples": self._samples_total,
        }

    # ------------------------------------------------------------------
    # Registry binding
    # ------------------------------------------------------------------
    def bind_registry(self, registry) -> None:
        """Publish ``rtm_profile_layer_seconds_total{layer=,thread=}``
        into *registry*: a pull-collector copies the cumulative layer
        totals at scrape time, so the family rides ``/metrics``, SSE,
        federation and alert rules with zero cost on the sample path."""
        if self._registry is registry:
            return
        counter = registry.counter(
            "rtm_profile_layer_seconds_total",
            "Sampled wall seconds attributed to each monitoring layer, "
            "by thread role.", ("layer", "thread"))

        def collect() -> None:
            with self._lock:
                totals = self._cumulative_layer_totals()
            for (role, layer), seconds in totals.items():
                counter.labels(layer, role).set(seconds)

        registry.add_collector(collect)
        self._registry = registry
