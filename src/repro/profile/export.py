"""Profile exporters: collapsed stacks (FlameGraph) and speedscope.

Both formats are fed from the same *stack map* — ``{thread role:
{leaf-first stack: seconds}}`` — which is what the continuous profiler
accumulates and what :func:`repro.profile.attribution.summary_stack_map`
rebuilds from a fleet/historian summary.

* **Collapsed stacks** is Brendan Gregg's one-line-per-stack format
  (``frame;frame;frame weight``), consumed by ``flamegraph.pl`` and
  every flame-graph viewer since.  Weights are integer microseconds.
* **speedscope** is the JSON file format of https://www.speedscope.app
  (an "evented"/"sampled" profile container); the export here is a
  ``sampled`` profile per thread role, unit seconds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .attribution import Frame, Stack

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def frame_label(frame: Frame) -> str:
    """Human label for one frame: ``func (pkg/path.py:line)`` with the
    path shortened to its interesting tail."""
    name, path, line = frame
    normalized = path.replace("\\", "/")
    idx = normalized.rfind("repro/")
    short = normalized[idx:] if idx >= 0 \
        else normalized.rsplit("/", 1)[-1]
    return f"{name} ({short}:{line})"


def collapsed_stacks(stacks: Dict[str, Dict[Stack, float]],
                     role: Optional[str] = None) -> str:
    """The stack map as collapsed-stack text, root-first, weighted in
    integer microseconds.  With *role* set, only that thread's stacks;
    otherwise every role, prefixed by ``role;`` as the root frame."""
    lines: List[str] = []
    for stack_role in sorted(stacks):
        if role is not None and stack_role != role:
            continue
        for stack, seconds in sorted(stacks[stack_role].items(),
                                     key=lambda kv: -kv[1]):
            weight = int(round(seconds * 1e6))
            if weight <= 0 or not stack:
                continue
            frames = [frame_label(f) for f in reversed(stack)]
            if role is None:
                frames.insert(0, stack_role)
            lines.append(";".join(frames) + f" {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(stacks: Dict[str, Dict[Stack, float]],
                        name: str = "repro profile") -> Dict[str, Any]:
    """The stack map as one speedscope file: one ``sampled`` profile
    per thread role over a shared frame table."""
    frame_index: Dict[Frame, int] = {}
    frames: List[Dict[str, Any]] = []

    def index_of(frame: Frame) -> int:
        idx = frame_index.get(frame)
        if idx is None:
            idx = len(frames)
            frame_index[frame] = idx
            frames.append({"name": frame_label(frame),
                           "file": frame[1], "line": frame[2]})
        return idx

    profiles: List[Dict[str, Any]] = []
    for role in sorted(stacks):
        samples: List[List[int]] = []
        weights: List[float] = []
        total = 0.0
        for stack, seconds in sorted(stacks[role].items(),
                                     key=lambda kv: -kv[1]):
            if seconds <= 0.0 or not stack:
                continue
            # speedscope wants root-first frame index lists.
            samples.append([index_of(f) for f in reversed(stack)])
            weights.append(round(seconds, 6))
            total += seconds
        profiles.append({
            "type": "sampled",
            "name": role,
            "unit": "seconds",
            "startValue": 0,
            "endValue": round(total, 6),
            "samples": samples,
            "weights": weights,
        })
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": profiles,
    }
