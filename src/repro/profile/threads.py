"""Process-wide registry of *threads of interest*.

The sampling profilers need to know which thread is which: the paper's
profiler panel (task T4) profiles the **simulation thread**, while the
overhead-attribution plane also labels the server, sampler and watchdog
threads so their cost shows up under their own name instead of being
silently folded into the simulation profile.

The simulation thread cannot be known at :class:`~repro.core.monitor.
Monitor` construction time — it is simply *whichever thread ends up
calling* :meth:`Engine.run`.  The engine therefore registers itself
here on entry to ``run()`` (see ``akita/engine.py``), and the monitor
pins its profiler to :func:`sim_thread_id` — a late-bound callable, so
the pin resolves correctly even when the monitor is built first.

Everything else is derived from thread names: the repo's own daemon
threads follow a strict ``rtm-*`` naming discipline, which keeps this
module dependency-free (it must be importable from ``akita`` without
dragging in ``repro.core``).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

_lock = threading.Lock()
#: explicit registrations: thread ident -> role
_roles: Dict[int, str] = {}

#: thread-name prefix -> role, for threads nobody registered explicitly.
_NAME_RULES = (
    ("rtm-server", "server"),
    ("rtm-http", "server"),
    ("rtm-gateway", "server"),
    ("rtm-sampler", "monitor"),
    ("rtm-watchdog", "monitor"),
    ("rtm-checkpoint", "monitor"),
    ("rtm-historian", "monitor"),
    ("rtm-profiler", "profiler"),
    ("rtm-cprofiler", "profiler"),
    ("MainThread", "main"),
)


def register_current_thread(role: str) -> int:
    """Claim *role* for the calling thread; returns its ident.

    Re-registering is cheap and expected: ``Engine.run`` calls this on
    every entry, so a kick-started re-run (possibly from a different
    thread) re-pins the simulation role to the thread actually running.
    """
    ident = threading.get_ident()
    with _lock:
        # One role, one thread: drop any stale claim by a previous
        # thread (e.g. the last run's worker thread that has exited).
        for tid in [t for t, r in _roles.items() if r == role]:
            del _roles[tid]
        _roles[ident] = role
    return ident


def unregister_thread(ident: Optional[int] = None) -> None:
    with _lock:
        _roles.pop(ident if ident is not None
                   else threading.get_ident(), None)


def sim_thread_id() -> Optional[int]:
    """Ident of the thread currently holding the ``simulation`` role,
    or None when no engine has run yet (profilers fall back to
    sampling every thread, the pre-registration behavior)."""
    with _lock:
        for tid, role in _roles.items():
            if role == "simulation":
                return tid
    return None


def role_of(ident: int, name: str = "") -> str:
    """Best-effort role label for a thread: explicit registration
    first, then the ``rtm-*`` naming discipline, then ``other``."""
    with _lock:
        role = _roles.get(ident)
    if role is not None:
        return role
    for prefix, mapped in _NAME_RULES:
        if name.startswith(prefix):
            return mapped
    return "other"


def thread_roles() -> Dict[int, str]:
    """ident -> role for every live thread (registered or inferred)."""
    roles: Dict[int, str] = {}
    for thread in threading.enumerate():
        ident = thread.ident
        if ident is None:  # pragma: no cover - not yet started
            continue
        roles[ident] = role_of(ident, thread.name)
    return roles
