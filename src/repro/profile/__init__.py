"""`repro.profile` — the continuous-profiling / overhead-attribution
plane layered over :mod:`repro.core.profiler`.

Import-light on purpose: :mod:`repro.akita.engine` registers the
simulation thread through :mod:`repro.profile.threads` on every
``run()``, so nothing in this package may import ``repro.core`` or
``repro.akita`` (directly or transitively).
"""

from .attribution import (IDLE_LEAVES, LAYERS, PATH_RULES,
                          attribution_report, classify_frame,
                          classify_path, classify_stack, diff_summaries,
                          make_summary, merge_summaries,
                          summary_stack_map)
from .continuous import ContinuousProfiler, ProfileWindow
from .export import (SPEEDSCOPE_SCHEMA, collapsed_stacks, frame_label,
                     speedscope_document)
from .threads import (register_current_thread, role_of, sim_thread_id,
                      thread_roles, unregister_thread)

__all__ = [
    "IDLE_LEAVES",
    "LAYERS",
    "PATH_RULES",
    "SPEEDSCOPE_SCHEMA",
    "ContinuousProfiler",
    "ProfileWindow",
    "attribution_report",
    "classify_frame",
    "classify_path",
    "classify_stack",
    "collapsed_stacks",
    "diff_summaries",
    "frame_label",
    "make_summary",
    "merge_summaries",
    "register_current_thread",
    "role_of",
    "sim_thread_id",
    "speedscope_document",
    "summary_stack_map",
    "thread_roles",
    "unregister_thread",
]
