"""Federating Prometheus expositions from many workers into one scrape.

The fleet gateway scrapes every worker's ``/metrics`` and has to merge N
expositions that all use the *same* family names (every worker runs the
same instrumentation).  Two things make the merge non-trivial:

* every sample needs identity labels so the series stay distinguishable
  downstream — ``worker="wN"`` alone under the cold fleet, and
  ``worker="wN",job="fir-c1"`` under the warm fleet, where one
  long-lived worker produces expositions for *many* jobs
  (:func:`inject_label` / :func:`inject_labels`);
* ``# HELP``/``# TYPE`` headers must appear exactly once per family and
  all samples of a family must stay contiguous, as the text format
  requires (:func:`federate` re-groups lines by family).

Only the exposition *text* is touched — the gateway never needs to parse
values, so a worker publishing a family the gateway has never heard of
federates just fine.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple, Union

__all__ = ["inject_label", "inject_labels", "federate"]

#: ``metric_name{labels} value [timestamp]`` — group 1 the name, group 2
#: the (optional) brace block, group 3 the rest of the line.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?( .+)$")

_HEADER_RE = re.compile(r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) ?(.*)$")


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def inject_label(text: str, label: str, value: str) -> str:
    """Add ``label="value"`` to every sample line of an exposition
    (single-label convenience over :func:`inject_labels`)."""
    return inject_labels(text, {label: value})


def inject_labels(text: str, labels: Dict[str, str]) -> str:
    """Add every ``label="value"`` pair to every sample line.

    Comment and blank lines pass through untouched; samples that already
    carry labels get the new pairs prepended
    (``{worker="w1",job="fir-c1",le="0.5"}``), bare samples grow a brace
    block.  A sample that already has one of the labels keeps its
    existing value for that label — the injected pair simply is not
    added twice — while the remaining pairs are still injected.
    """
    out: List[str] = []
    pairs = [(f'{label}="{_escape(value)}"', f'{label}="')
             for label, value in labels.items()]
    for line in text.splitlines():
        match = _SAMPLE_RE.match(line)
        if match is None or line.startswith("#"):
            out.append(line)
            continue
        name, braces, rest = match.groups()
        inner = braces[1:-1] if braces else ""
        missing = [pair for pair, prefix in pairs
                   if not (inner.startswith(prefix)
                           or f",{prefix}" in f",{inner}")]
        if not missing:
            out.append(line)
            continue
        injected = ",".join(missing)
        if inner:
            out.append(f"{name}{{{injected},{inner}}}{rest}")
        else:
            out.append(f"{name}{{{injected}}}{rest}")
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")


def _family_of(sample_name: str, known: Iterable[str]) -> str:
    """Histogram series (``_bucket``/``_sum``/``_count``) belong to the
    base family whose TYPE header we saw; everything else is its own."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in known:
                return base
    return sample_name


def federate(expositions: Iterable[
                 Tuple[Union[str, Dict[str, str]], str]],
             label: str = "worker",
             preamble: str = "") -> str:
    """Merge ``(identity, exposition_text)`` pairs into one document.

    *identity* is either a bare worker id (injected as
    ``label="<worker_id>"``, the cold-fleet shape) or a dict of label
    pairs (e.g. ``{"worker": "w1", "job": "fir-c1"}``, the warm-fleet
    shape where one worker serves many jobs).  Families are re-grouped
    so all samples of a name are contiguous, and HELP/TYPE headers are
    emitted once per family (first exposition's wording wins).
    *preamble* is prepended verbatim (the gateway's own, un-labelled,
    fleet-level families).
    """
    help_lines: Dict[str, str] = {}
    type_lines: Dict[str, str] = {}
    samples: Dict[str, List[str]] = {}
    order: List[str] = []

    def bucket(family: str) -> List[str]:
        if family not in samples:
            samples[family] = []
            order.append(family)
        return samples[family]

    for identity, text in expositions:
        labels = (identity if isinstance(identity, dict)
                  else {label: identity})
        labelled = inject_labels(text, labels)
        for line in labelled.splitlines():
            if not line.strip():
                continue
            header = _HEADER_RE.match(line)
            if header is not None:
                kind, family, _ = header.groups()
                bucket(family)
                target = help_lines if kind == "HELP" else type_lines
                target.setdefault(family, line)
                continue
            if line.startswith("#"):
                continue  # stray comments don't federate
            match = _SAMPLE_RE.match(line)
            if match is None:
                continue  # malformed line: drop rather than corrupt
            family = _family_of(match.group(1), samples)
            bucket(family).append(line)

    lines: List[str] = []
    if preamble:
        lines.extend(preamble.rstrip("\n").splitlines())
    for family in order:
        rows = samples[family]
        if not rows and family not in type_lines:
            continue
        if family in help_lines:
            lines.append(help_lines[family])
        if family in type_lines:
            lines.append(type_lines[family])
        lines.extend(rows)
    return "\n".join(lines) + "\n" if lines else ""
