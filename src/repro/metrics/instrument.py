"""Wiring the registry into a live simulation.

:class:`SimMetrics` is the counterpart of :class:`repro.trace.Tracer`:
construct it around a :class:`~repro.akita.simulation.Simulation` and a
:class:`~repro.metrics.registry.MetricRegistry`, call :meth:`start` to
attach, :meth:`stop` to detach.  Nothing in the simulation layers
imports this module — instrumentation observes through the existing
hook positions and public counters only.

Two collection styles, chosen per metric for cost:

* **Pull (free on the sim thread).**  Counters the components already
  maintain as plain state — ``engine.event_count``, ``port.num_sent``,
  ``tags.hits``, ``mshr.size``, RDMA in-flight — are copied into the
  registry by a collector that runs at *scrape* time.  The simulation
  pays nothing for these, ever.
* **Hooks (bounded, measured).**  Quantities that only exist at an
  instant — buffer occupancy at delivery, wall-time per event, wall
  time of an engine pass — are recorded from hook callbacks.  The
  callbacks publish their own cost per hook position
  (``rtm_hook_callback_seconds_total{position=...}``) — exactly the
  decomposition of AkitaRTM's Figure 7, live instead of post-hoc.  On
  the per-event positions that cost is *sampled* (one measured pair in
  64, scaled) so self-accounting does not itself dominate the budget
  it reports.

When :meth:`start` has not been called the hot paths run zero metrics
code: every hook site in the engine/ports sits behind ``if
self._hooks`` and this module attaches nothing at construction.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Optional

from ..akita.hooks import HookCtx, HookPos
from ..akita.simulation import Simulation
from .registry import MetricRegistry

__all__ = ["SimMetrics", "OCCUPANCY_BUCKETS", "PASS_BUCKETS"]

#: Buffer-occupancy histogram bounds (ratios of capacity).
OCCUPANCY_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Engine-pass wall-time bounds in seconds.
PASS_BUCKETS = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0)


class SimMetrics:
    """Attachable instrumentation publishing a simulation's vitals."""

    def __init__(self, simulation: Simulation,
                 registry: Optional[MetricRegistry] = None):
        self.simulation = simulation
        self.registry = registry if registry is not None \
            else MetricRegistry()
        self._started = False
        self._event_t0 = 0.0
        self._pass_t0: Optional[float] = None
        self._n_after = 0  # sampling counters for self-overhead
        self._n_deliver = 0
        self._define_families()

    # ------------------------------------------------------------------
    # Metric families
    # ------------------------------------------------------------------
    def _define_families(self) -> None:
        reg = self.registry
        # Engine vitals.
        self._m_events = reg.counter(
            "rtm_engine_events_total",
            "Events processed by the engine.")
        self._m_sim_time = reg.gauge(
            "rtm_engine_sim_time_seconds",
            "Current virtual time of the engine.")
        self._m_queue_depth = reg.gauge(
            "rtm_engine_queue_depth",
            "Events pending in the engine queue.")
        self._m_event_wall = reg.counter(
            "rtm_engine_event_wall_seconds_total",
            "Wall-clock seconds spent inside event handlers.")
        self._m_pass_wall = reg.histogram(
            "rtm_engine_pass_wall_seconds",
            "Wall-clock duration of each engine pass (start to dry/end).",
            buckets=PASS_BUCKETS)
        # Port / connection traffic.
        self._m_sent = reg.counter(
            "rtm_port_messages_sent_total",
            "Messages sent, by owning component.", ("component",))
        self._m_delivered = reg.counter(
            "rtm_port_messages_delivered_total",
            "Messages delivered into port buffers, by component.",
            ("component",))
        self._m_dropped = reg.counter(
            "rtm_conn_messages_dropped_total",
            "In-transit messages dropped, by connection.",
            ("connection",))
        self._m_occupancy = reg.histogram(
            "rtm_buffer_occupancy_ratio",
            "Port buffer fullness, sampled at every 4th delivery.",
            ("component",), buckets=OCCUPANCY_BUCKETS)
        # GPU components (duck-typed: any component with the attribute).
        self._m_cache_hits = reg.counter(
            "rtm_cache_hits_total", "Cache tag hits.", ("component",))
        self._m_cache_misses = reg.counter(
            "rtm_cache_misses_total", "Cache tag misses.",
            ("component",))
        self._m_cache_reads = reg.counter(
            "rtm_cache_reads_total", "Cache read requests.",
            ("component",))
        self._m_cache_writes = reg.counter(
            "rtm_cache_writes_total", "Cache write requests.",
            ("component",))
        self._m_mshr = reg.gauge(
            "rtm_cache_mshr_occupancy",
            "Outstanding misses held in each MSHR.", ("component",))
        self._m_rdma_inflight = reg.gauge(
            "rtm_rdma_inflight",
            "Outgoing RDMA transactions in flight.", ("component",))
        self._m_rdma_forwarded = reg.counter(
            "rtm_rdma_forwarded_total",
            "Remote requests forwarded by each RDMA engine.",
            ("component",))
        self._m_cu_ticks = reg.counter(
            "rtm_cu_ticks_total", "Compute-unit ticks.", ("component",))
        self._m_cu_wgs = reg.counter(
            "rtm_cu_wgs_completed_total",
            "Workgroups completed per compute unit.", ("component",))
        self._m_cu_mem = reg.counter(
            "rtm_cu_mem_reqs_total",
            "Memory requests issued per compute unit.", ("component",))
        self._m_cu_instr = reg.counter(
            "rtm_cu_instructions_total",
            "Instructions (wavefront ops) committed per compute unit.",
            ("component",))
        # Self-overhead: Figure 7's decomposition as a live family.
        self._m_cb_count = reg.counter(
            "rtm_hook_callbacks_total",
            "Monitoring callbacks invoked, by hook position.",
            ("position",))
        self._m_cb_seconds = reg.counter(
            "rtm_hook_callback_seconds_total",
            "Wall-clock seconds spent in monitoring callbacks, "
            "by hook position.", ("position",))
        # Pre-resolved overhead children: the hot path must not pay for
        # label-tuple hashing on every event.
        self._cb_count: Dict[HookPos, Any] = {
            pos: self._m_cb_count.labels(pos.value) for pos in HookPos}
        self._cb_seconds: Dict[HookPos, Any] = {
            pos: self._m_cb_seconds.labels(pos.value) for pos in HookPos}
        self._occ_children: Dict[int, Any] = {}
        # The per-event positions additionally skip the dict: their
        # children are bound straight to attributes.
        self._cnt_before = self._cb_count[HookPos.BEFORE_EVENT]
        self._sec_before = self._cb_seconds[HookPos.BEFORE_EVENT]
        self._cnt_after = self._cb_count[HookPos.AFTER_EVENT]
        self._sec_after = self._cb_seconds[HookPos.AFTER_EVENT]
        self._cnt_deliver = self._cb_count[HookPos.PORT_DELIVER]
        self._sec_deliver = self._cb_seconds[HookPos.PORT_DELIVER]
        self._ev_wall = self._m_event_wall._default

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Attach hooks and the pull-collector.  Idempotent."""
        if self._started:
            return
        sim = self.simulation
        sim.engine.accept_hook(self._on_engine_hook)
        for comp in sim.components:
            # Narrow subscription: ports skip firing send/retrieve/task
            # positions entirely when metrics is the only observer.
            comp.accept_hook(self._on_component_hook,
                             (HookPos.PORT_DELIVER,))
        self.registry.add_collector(self._collect)
        self._started = True

    def stop(self) -> None:
        """Detach everything; hot paths return to zero metrics code.

        The collector runs once more on the way out so the registry
        retains the final totals (the CLI's exposition dump relies on
        this).
        """
        if not self._started:
            return
        self._collect()
        sim = self.simulation
        sim.engine.remove_hook(self._on_engine_hook)
        for comp in sim.components:
            comp.remove_hook(self._on_component_hook)
        self.registry.remove_collector(self._collect)
        self._event_t0 = 0.0  # a later re-attach starts unpaired again
        self._started = False

    def status(self) -> Dict[str, Any]:
        return {
            "started": self._started,
            "families": len(self.registry.names),
        }

    # ------------------------------------------------------------------
    # Hook callbacks (simulation thread — keep them lean)
    # ------------------------------------------------------------------
    def _on_engine_hook(self, ctx: HookCtx) -> None:
        pos = ctx.pos
        if pos is HookPos.BEFORE_EVENT:
            self._cnt_before.value += 1.0
            self._event_t0 = perf_counter()
            return
        if pos is HookPos.AFTER_EVENT:
            t1 = perf_counter()
            t0 = self._event_t0
            if t0:  # unpaired when attached mid-event (live scrape)
                self._ev_wall.value += t1 - t0
            self._cnt_after.value += 1.0
            # Self-overhead is sampled: every 64th pair is measured
            # end-to-end and scaled, so the Figure 7 decomposition
            # stays live without two extra clock reads per event.  The
            # before callback's body is one clock read plus a counter
            # bump — the same work this measured section performs — so
            # the sample is attributed to both positions.
            n = self._n_after = self._n_after + 1
            if not n & 63:
                cost = (perf_counter() - t1) * 64.0
                self._sec_after.value += cost
                self._sec_before.value += cost
            return
        # Rare lifecycle positions (start/pause/continue/dry/end).
        t0 = perf_counter()
        if pos is HookPos.ENGINE_START:
            self._pass_t0 = t0
        elif pos in (HookPos.ENGINE_DRY, HookPos.ENGINE_END):
            if self._pass_t0 is not None:
                self._m_pass_wall.observe(t0 - self._pass_t0)
                self._pass_t0 = None
        self._cb_count[pos].value += 1.0
        self._cb_seconds[pos].value += perf_counter() - t0

    def _on_component_hook(self, ctx: HookCtx) -> None:
        # Only deliveries carry an instant quantity (buffer fullness);
        # every other position returns after one identity check so the
        # send/retrieve/task paths stay near-free while attached.
        if ctx.pos is not HookPos.PORT_DELIVER:
            return
        self._cnt_deliver.value += 1.0
        # Occupancy is a distribution, so it tolerates sampling: every
        # 4th delivery is observed (and self-timed, scaled to the
        # family's usual per-call meaning).
        n = self._n_deliver = self._n_deliver + 1
        if n & 3:
            return
        t0 = perf_counter()
        port = ctx.domain
        child = self._occ_children.get(id(port))
        if child is None:
            comp = port.component
            name = comp.name if comp is not None else port.name
            child = self._m_occupancy.labels(name)
            self._occ_children[id(port)] = child
        child.observe(port.buf.fullness)
        self._sec_deliver.value += (perf_counter() - t0) * 4.0

    # ------------------------------------------------------------------
    # Pull collection (scrape thread)
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        sim = self.simulation
        engine = sim.engine
        self._m_events.set(float(engine.event_count))
        self._m_sim_time.set(engine.now)
        self._m_queue_depth.set(float(engine.pending_event_count))
        for conn in sim.connections:
            name = getattr(conn, "name", repr(conn))
            dropped = getattr(conn, "dropped_count", 0)
            if dropped:
                self._m_dropped.labels(name).set(float(dropped))
        for comp in sim.components:
            name = comp.name
            sent = delivered = 0
            for port in comp.ports:
                sent += port.num_sent
                delivered += port.num_delivered
            if sent:
                self._m_sent.labels(name).set(float(sent))
            if delivered:
                self._m_delivered.labels(name).set(float(delivered))
            self._collect_gpu(name, comp)

    def _collect_gpu(self, name: str, comp: Any) -> None:
        tags = getattr(comp, "tags", None)
        if tags is not None:
            self._m_cache_hits.labels(name).set(float(tags.hits))
            self._m_cache_misses.labels(name).set(float(tags.misses))
            self._m_cache_reads.labels(name).set(
                float(getattr(comp, "num_reads", 0)))
            self._m_cache_writes.labels(name).set(
                float(getattr(comp, "num_writes", 0)))
        mshr = getattr(comp, "mshr", None)
        if mshr is not None:
            self._m_mshr.labels(name).set(float(mshr.size))
        if hasattr(comp, "incoming_transactions"):  # RDMA engine
            self._m_rdma_inflight.labels(name).set(
                float(comp.transactions))
            self._m_rdma_forwarded.labels(name).set(
                float(getattr(comp, "num_forwarded", 0)))
        if hasattr(comp, "num_wgs_completed"):  # compute unit
            self._m_cu_ticks.labels(name).set(
                float(getattr(comp, "tick_count", 0)))
            self._m_cu_wgs.labels(name).set(
                float(comp.num_wgs_completed))
            self._m_cu_mem.labels(name).set(
                float(getattr(comp, "num_mem_reqs", 0)))
            self._m_cu_instr.labels(name).set(
                float(getattr(comp, "num_instructions", 0)))
