"""repro.metrics — the unified metrics layer.

One registry holds every number the monitor publishes: engine
throughput, port traffic, buffer occupancy, cache behaviour, RDMA
in-flight, the dashboard's watched values, process resources — and the
monitor's *own* overhead, decomposed by hook position (the paper's
Figure 7 as a live metric family rather than a benchmark artifact).

Three front doors, all served by :class:`repro.core.RTMServer`:

* ``GET /metrics``      — Prometheus text exposition
* ``GET /api/metrics``  — JSON snapshot (``?delta=1`` for rates)
* ``GET /api/stream``   — Server-Sent Events pushing snapshots
"""

from .exposition import (
    CONTENT_TYPE,
    expose,
    family_total,
    format_labels,
    parse_exposition,
)
from .federation import federate, inject_label, inject_labels
from .instrument import OCCUPANCY_BUCKETS, PASS_BUCKETS, SimMetrics
from .registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    Series,
    rate,
    snapshot_delta,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "OCCUPANCY_BUCKETS",
    "PASS_BUCKETS",
    "Series",
    "SimMetrics",
    "expose",
    "family_total",
    "federate",
    "format_labels",
    "parse_exposition",
    "inject_label",
    "inject_labels",
    "rate",
    "snapshot_delta",
]
