"""The metric registry: typed, label-aware counters/gauges/histograms.

Design goals (MGSim's counter infrastructure is the model — cheap,
always-on, uniformly named, scrapeable):

* **Lock-free on the simulation thread.**  The writer side (``inc`` /
  ``set`` / ``observe``) takes no locks: children are plain objects
  with ``__slots__`` whose float fields are updated under the GIL.
  Readers (HTTP scrape threads) snapshot values; a scrape racing an
  increment sees either the old or the new value — both are valid
  observations of a monotonic series.
* **Zero cost when unused.**  A registry holds names and children; it
  never touches the engine or any component.  Wiring a simulation in
  (see :mod:`repro.metrics.instrument`) is the explicit, reversible
  step that attaches hooks.
* **One namespace.**  Every number the monitor publishes — engine
  throughput, buffer occupancy, cache hits, the monitor's own overhead
  — lives in one registry, with one naming convention
  (``rtm_<subsystem>_<quantity>[_total]``), scrapeable as Prometheus
  text or JSON.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "Series",
    "rate",
    "snapshot_delta",
]

#: Default histogram buckets: occupancy-style ratios in [0, 1] plus +Inf.
DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def rate(delta: float, seconds: float) -> float:
    """The one throughput formula: *delta* per *seconds*, 0 when the
    window is empty or non-positive.

    Every events/s, KIPS and progress/s number in the codebase funnels
    through here so the dashboard, the HTTP API and the CLI can never
    disagree on what a rate means.  ``seconds <= 0`` yields ``0.0``
    (never a division error, never ``inf``): a zero-width window has
    observed nothing.
    """
    if seconds <= 0.0:
        return 0.0
    return delta / seconds


class Series:
    """A bounded (time, value) ring — the storage behind time charts.

    This is the registry-native replacement for the private sample
    deques :class:`~repro.core.timeseries.ValueWatch` used to keep:
    a gauge child created with ``history=N`` records its last N
    ``(t, value)`` pairs here, so recorded series and live metrics
    share one namespace.
    """

    __slots__ = ("_points",)

    def __init__(self, maxlen: int):
        self._points: Deque[Tuple[float, float]] = deque(maxlen=maxlen)

    def append(self, t: float, value: float) -> None:
        self._points.append((t, value))

    def points(self) -> List[Tuple[float, float]]:
        """Snapshot of the ring, oldest first (safe across threads)."""
        return list(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def clear(self) -> None:
        self._points.clear()


class _CounterChild:
    """One labelled counter cell.  Monotonically increasing."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, total: float) -> None:
        """Overwrite the running total.

        For *pull-collected* counters whose true total lives in the
        simulation (``engine.event_count``, ``port.num_sent``): the
        collector copies the authoritative value in at scrape time, so
        the hot path pays nothing.
        """
        self.value = total


class _GaugeChild:
    """One labelled gauge cell, optionally with a bounded history."""

    __slots__ = ("value", "series")

    def __init__(self, history: int = 0):
        self.value = 0.0
        self.series: Optional[Series] = Series(history) if history else None

    def set(self, value: float, t: Optional[float] = None) -> None:
        self.value = value
        if self.series is not None and t is not None:
            self.series.append(t, value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """One labelled histogram cell with fixed, precompiled buckets."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        i = 0
        bounds = self.bounds
        n = len(bounds)
        while i < n and value > bounds[i]:
            i += 1
        self.counts[i] += 1
        self.sum += value
        self.count += 1


_CHILD_FACTORY = {
    "counter": _CounterChild,
    "gauge": _GaugeChild,
    "histogram": _HistogramChild,
}


class Metric:
    """One metric family: a name, a type, and labelled children."""

    __slots__ = ("name", "help", "type", "labelnames", "_children",
                 "_default", "_kwargs")

    def __init__(self, name: str, help: str, type: str,
                 labelnames: Sequence[str] = (), **kwargs):
        _validate_name(name)
        for label in labelnames:
            _validate_name(label)
        self.name = name
        self.help = help
        self.type = type
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._kwargs = kwargs
        self._default = None if self.labelnames else self._make_child()

    def _make_child(self):
        factory = _CHILD_FACTORY[self.type]
        if self.type == "gauge":
            return factory(self._kwargs.get("history", 0))
        if self.type == "histogram":
            return factory(tuple(self._kwargs.get("buckets",
                                                  DEFAULT_BUCKETS)))
        return factory()

    # -- children ---------------------------------------------------------
    def labels(self, *values: str):
        """The child for one label-value combination (created on first
        use).  Values are positional, matching ``labelnames`` order."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label values "
                f"({', '.join(self.labelnames)}), got {len(values)}")
        if self._default is not None:  # unlabelled: one shared child
            return self._default
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._children.setdefault(key, self._make_child())
        return child

    def remove(self, *values: str) -> bool:
        """Drop one child (e.g. a deleted watch)."""
        return self._children.pop(tuple(str(v) for v in values),
                                  None) is not None

    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """(label values, child) pairs; the default child has ``()``."""
        if self._default is not None:
            return [((), self._default)]
        return sorted(self._children.items())

    # -- unlabelled sugar --------------------------------------------------
    def _require_default(self):
        if self._default is None:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; "
                f"use .labels(...)")
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def set(self, value: float, t: Optional[float] = None) -> None:
        child = self._require_default()
        if self.type == "gauge":
            child.set(value, t)
        else:
            child.set(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    @property
    def value(self) -> float:
        return self._require_default().value


class Counter(Metric):
    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        super().__init__(name, help, "counter", labelnames)


class Gauge(Metric):
    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (), history: int = 0):
        super().__init__(name, help, "gauge", labelnames,
                         history=history)


class Histogram(Metric):
    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"{name}: histogram needs >= 1 bucket bound")
        super().__init__(name, help, "histogram", labelnames,
                         buckets=bounds)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name) \
            or name[0].isdigit():
        raise ValueError(f"invalid metric/label name {name!r}")


class MetricRegistry:
    """Holds metric families and pull-collectors; renders snapshots.

    Registration is idempotent by (name, type, labelnames): asking for
    an existing family returns it, so independent subsystems can share
    families without coordination.  Registration takes a lock (rare);
    the write path (child ``inc``/``set``/``observe``) never does.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (existing.type != cls.__name__.lower()
                        or existing.labelnames != tuple(labelnames)):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type}{existing.labelnames}")
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = (),
              history: int = 0) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames,
                                   history=history)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def unregister(self, name: str) -> bool:
        with self._lock:
            return self._metrics.pop(name, None) is not None

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    @property
    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- pull collection ---------------------------------------------------
    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a callback run before every snapshot/exposition.

        Collectors copy authoritative simulation state (event counts,
        buffer sizes, MSHR occupancy) into metric children at *scrape*
        time, so always-on state metrics cost the simulation thread
        nothing at all.
        """
        self._collectors.append(fn)

    def remove_collector(self, fn: Callable[[], None]) -> None:
        try:
            self._collectors.remove(fn)
        except ValueError:
            pass

    def collect(self) -> None:
        for fn in list(self._collectors):
            fn()

    # -- reading -----------------------------------------------------------
    def metrics(self) -> List[Metric]:
        self.collect()
        with self._lock:
            return [self._metrics[n] for n in sorted(self._metrics)]

    def snapshot(self, names: Optional[str] = None) -> Dict[str, Any]:
        """A JSON-able snapshot of every family (``/api/metrics``).

        Parameters
        ----------
        names:
            Optional regex; only matching family names are included.
        """
        import re
        pattern = re.compile(names) if names else None
        out: Dict[str, Any] = {}
        for metric in self.metrics():
            if pattern is not None and not pattern.search(metric.name):
                continue
            samples = []
            for label_values, child in metric.samples():
                labels = dict(zip(metric.labelnames, label_values))
                if metric.type == "histogram":
                    samples.append({
                        "labels": labels,
                        "buckets": dict(zip(
                            [str(b) for b in child.bounds] + ["+Inf"],
                            list(child.counts))),
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels,
                                    "value": child.value})
            out[metric.name] = {
                "type": metric.type,
                "help": metric.help,
                "samples": samples,
            }
        return out


def _sample_key(sample: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(sample.get("labels", {}).items()))


def snapshot_delta(previous: Dict[str, Any],
                   current: Dict[str, Any]) -> Dict[str, Any]:
    """Per-family difference between two :meth:`MetricRegistry.snapshot`
    payloads.

    Counters and histogram counts/sums become deltas (clamped at zero
    so a registry restart never yields negative rates); gauges pass
    through unchanged — a gauge *is* its current value.
    """
    out: Dict[str, Any] = {}
    for name, family in current.items():
        prev_family = previous.get(name)
        if family["type"] == "gauge" or prev_family is None:
            out[name] = family
            continue
        prev_by_key = {_sample_key(s): s
                       for s in prev_family.get("samples", [])}
        samples = []
        for sample in family["samples"]:
            prev = prev_by_key.get(_sample_key(sample))
            if family["type"] == "counter":
                base = prev["value"] if prev else 0.0
                samples.append({
                    "labels": sample.get("labels", {}),
                    "value": max(0.0, sample["value"] - base),
                })
            else:  # histogram
                prev_buckets = prev["buckets"] if prev else {}
                samples.append({
                    "labels": sample.get("labels", {}),
                    "buckets": {
                        le: max(0, n - prev_buckets.get(le, 0))
                        for le, n in sample["buckets"].items()},
                    "sum": max(0.0, sample["sum"]
                               - (prev["sum"] if prev else 0.0)),
                    "count": max(0, sample["count"]
                                 - (prev["count"] if prev else 0)),
                })
        out[name] = {"type": family["type"], "help": family["help"],
                     "samples": samples}
    return out
