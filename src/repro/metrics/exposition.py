"""Prometheus text exposition (format version 0.0.4).

Renders a :class:`~repro.metrics.registry.MetricRegistry` as the plain
text format every Prometheus-compatible scraper understands::

    # HELP rtm_engine_events_total Events processed by the engine.
    # TYPE rtm_engine_events_total counter
    rtm_engine_events_total 123456

Only the subset the registry needs is implemented: counter, gauge and
histogram families with escaped HELP text and label values, histogram
``_bucket``/``_sum``/``_count`` series with cumulative ``le`` bounds.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .registry import MetricRegistry

__all__ = ["CONTENT_TYPE", "expose", "format_labels"]

#: The Content-Type header Prometheus expects from a /metrics endpoint.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def format_labels(labels: Dict[str, str]) -> str:
    """``{a="x",b="y"}`` or the empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                     for k, v in labels.items())
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _bucket_le(bound: float) -> str:
    return _format_value(float(bound))


def expose(registry: MetricRegistry) -> str:
    """Render every family in *registry* (collectors run first)."""
    lines = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} "
                         f"{_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.type}")
        for label_values, child in metric.samples():
            labels = dict(zip(metric.labelnames, label_values))
            if metric.type == "histogram":
                _expose_histogram(lines, metric.name, labels, child)
            else:
                lines.append(f"{metric.name}{format_labels(labels)} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _expose_histogram(lines, name: str, labels: Dict[str, str],
                      child) -> None:
    cumulative = 0
    for bound, count in zip(child.bounds, child.counts):
        cumulative += count
        le_labels = dict(labels)
        le_labels["le"] = _bucket_le(bound)
        lines.append(f"{name}_bucket{format_labels(le_labels)} "
                     f"{cumulative}")
    cumulative += child.counts[-1]
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(f"{name}_bucket{format_labels(inf_labels)} "
                 f"{cumulative}")
    lines.append(f"{name}_sum{format_labels(labels)} "
                 f"{_format_value(child.sum)}")
    lines.append(f"{name}_count{format_labels(labels)} {child.count}")
