"""Prometheus text exposition (format version 0.0.4).

Renders a :class:`~repro.metrics.registry.MetricRegistry` as the plain
text format every Prometheus-compatible scraper understands::

    # HELP rtm_engine_events_total Events processed by the engine.
    # TYPE rtm_engine_events_total counter
    rtm_engine_events_total 123456

Only the subset the registry needs is implemented: counter, gauge and
histogram families with escaped HELP text and label values, histogram
``_bucket``/``_sum``/``_count`` series with cumulative ``le`` bounds.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .registry import MetricRegistry

__all__ = ["CONTENT_TYPE", "expose", "family_total", "format_labels",
           "parse_exposition"]

#: The Content-Type header Prometheus expects from a /metrics endpoint.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def format_labels(labels: Dict[str, str]) -> str:
    """``{a="x",b="y"}`` or the empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                     for k, v in labels.items())
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _bucket_le(bound: float) -> str:
    return _format_value(float(bound))


def expose(registry: MetricRegistry) -> str:
    """Render every family in *registry* (collectors run first)."""
    lines = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} "
                         f"{_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.type}")
        for label_values, child in metric.samples():
            labels = dict(zip(metric.labelnames, label_values))
            if metric.type == "histogram":
                _expose_histogram(lines, metric.name, labels, child)
            else:
                lines.append(f"{metric.name}{format_labels(labels)} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


#: One sample line: name, optional {labels}, value (timestamp ignored).
_PARSE_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(.*)\})?"
    r"\s+(\S+)(?:\s+\S+)?$")

#: One label pair inside {...}; values use the exposition escaping.
_PARSE_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_PARSE_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\S+)")


def _unescape_label_value(value: str) -> str:
    return (value.replace('\\"', '"').replace("\\n", "\n")
            .replace("\\\\", "\\"))


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse a Prometheus text exposition back into families.

    The inverse direction of :func:`expose`, for consumers that only
    see rendered text — the historian sampling a gateway's federated
    ``/metrics``, alert rules over scraped families.  Returns::

        {name: {"type": "counter"|"gauge"|"histogram"|"untyped",
                "samples": [(labels_dict, value), ...]}}

    Histogram sub-series keep their rendered names (``X_bucket``,
    ``X_sum``, ``X_count``) as their own entries, typed after the
    declared base family, so a rule can target ``X_count`` directly.
    Damage doctrine matches the journal's: unparseable lines are
    skipped, never fatal.
    """
    families: Dict[str, Dict[str, object]] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            match = _PARSE_TYPE_RE.match(line)
            if match:
                types[match.group(1)] = match.group(2)
            continue
        match = _PARSE_SAMPLE_RE.match(line)
        if match is None:
            continue  # noise, torn line: skip, keep going
        name, label_body, raw_value = match.groups()
        try:
            value = _parse_value(raw_value)
        except ValueError:
            continue
        labels = {key: _unescape_label_value(val)
                  for key, val in
                  _PARSE_LABEL_RE.findall(label_body or "")}
        family = families.get(name)
        if family is None:
            declared = types.get(name)
            if declared is None:
                for suffix in ("_bucket", "_sum", "_count"):
                    if name.endswith(suffix):
                        declared = types.get(name[:-len(suffix)])
                        break
            family = {"type": declared or "untyped", "samples": []}
            families[name] = family
        family["samples"].append((labels, value))
    return families


def family_total(families: Dict[str, Dict[str, object]], name: str,
                 labels: Dict[str, str] = None) -> Tuple[float, int]:
    """Sum every sample of *name* whose labels are a superset of
    *labels*; returns ``(total, matched_sample_count)``.  The
    aggregation campaign comparison and label-subset alert rules
    share."""
    family = families.get(name)
    if family is None:
        return 0.0, 0
    wanted = labels or {}
    total, matched = 0.0, 0
    for sample_labels, value in family["samples"]:
        if all(sample_labels.get(k) == v for k, v in wanted.items()):
            total += value
            matched += 1
    return total, matched


def _expose_histogram(lines, name: str, labels: Dict[str, str],
                      child) -> None:
    cumulative = 0
    for bound, count in zip(child.bounds, child.counts):
        cumulative += count
        le_labels = dict(labels)
        le_labels["le"] = _bucket_le(bound)
        lines.append(f"{name}_bucket{format_labels(le_labels)} "
                     f"{cumulative}")
    cumulative += child.counts[-1]
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(f"{name}_bucket{format_labels(inf_labels)} "
                 f"{cumulative}")
    lines.append(f"{name}_sum{format_labels(labels)} "
                 f"{_format_value(child.sum)}")
    lines.append(f"{name}_count{format_labels(labels)} {child.count}")
