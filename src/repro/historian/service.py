"""The historian service: a campaign recording itself as it runs.

One background thread on a wall-clock cadence — deliberately *off* the
simulation hot path (the engines run in worker subprocesses; the
sampler only reads the gateway's federated exposition and the
manager's settled views):

* sample the snapshot source (the gateway's federated ``/metrics``, or
  any registry), persist a per-family totals record, and evaluate the
  alert-rule engine against the parsed families;
* harvest newly-terminal jobs from the fleet manager — outcome, final
  exposition, any watchdog post-mortem (failure post-mortems carry
  the ``resume_checkpoint`` and trace-window pointers), and, when the
  workers profiled, the job's continuous-profiling summary as a
  ``profile`` record;
* every ``prune_interval`` seconds, run the retention sweep as an
  idle-time chore.

The service also works without a fleet: pass ``source=`` a callable
returning parsed families (see :func:`registry_source`) to record any
monitored run — the overhead benchmark drives it that way.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..metrics.exposition import parse_exposition
from .rules import MetricRule, RuleEngine
from .store import Historian, RetentionPolicy

__all__ = ["HistorianService", "gateway_source", "registry_source"]


def gateway_source(gateway) -> Callable[[], Dict[str, Any]]:
    """Snapshot source sampling a gateway's federated exposition."""
    return lambda: parse_exposition(gateway.federated_metrics())


def registry_source(registry) -> Callable[[], Dict[str, Any]]:
    """Snapshot source sampling a registry directly (no fleet)."""
    from ..metrics.exposition import expose
    return lambda: parse_exposition(expose(registry))


class HistorianService:
    """Records one campaign into a :class:`Historian` (see module doc).

    Parameters
    ----------
    historian:
        The store; shared across campaigns (that is the point).
    campaign_id:
        Identity of this campaign in the store; generated if omitted.
    manager:
        A :class:`~repro.fleet.manager.FleetManager` (or anything with
        its ``status()``/``final_metrics()`` views) to harvest job
        outcomes from.  Optional: a fleet-less monitored run records
        snapshots and alerts only.
    source:
        Callable returning parsed families (``parse_exposition``
        output).  Defaults to the gateway's federated exposition once
        :meth:`bind_gateway` is called.
    interval:
        Sampling cadence in wall seconds.
    rules:
        Initial :class:`MetricRule` set.
    retention:
        :class:`RetentionPolicy` list for the idle-time sweep.
    """

    def __init__(self, historian: Historian,
                 campaign_id: Optional[str] = None,
                 manager=None,
                 source: Optional[Callable[[], Dict[str, Any]]] = None,
                 interval: float = 1.0,
                 rules: Iterable[MetricRule] = (),
                 retention: Iterable[RetentionPolicy] = (),
                 prune_interval: float = 30.0,
                 meta: Optional[Dict[str, Any]] = None):
        self.historian = historian
        self.manager = manager
        self.source = source
        self.interval = interval
        self.prune_interval = prune_interval
        self.engine = RuleEngine()
        for rule in rules:
            self.engine.add(rule)
        self.retention = list(retention)
        self._meta = dict(meta or {})
        self.campaign_id = historian.begin_campaign(campaign_id,
                                                    meta=self._meta)
        self.snapshots_recorded = 0
        self._recorded_jobs: Dict[str, str] = {}  # job_id -> state
        self._postmortems_recorded = 0
        self._profiles_recorded = 0
        self._last_prune = time.monotonic()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._tick_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_gateway(self, gateway) -> None:
        """Use *gateway* as the snapshot source, count rule transitions
        in its registry, and register this service on it so the
        ``/api/historian/*`` routes come alive."""
        if self.source is None:
            self.source = gateway_source(gateway)
        self.engine.attach_registry(gateway.registry)
        gateway.historian = self

    def add_rule(self, rule: MetricRule) -> MetricRule:
        return self.engine.add(rule)

    def remove_rule(self, rule_id: int) -> bool:
        return self.engine.remove(rule_id)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="rtm-historian")
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling, final-harvest, close out the campaign."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.tick(final=True)
        self.historian.end_campaign(self.campaign_id)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:
                # The historian must never take the campaign down.
                pass

    # ------------------------------------------------------------------
    # One sampling round
    # ------------------------------------------------------------------
    def tick(self, final: bool = False) -> None:
        """Sample + evaluate + harvest (+ sweep).  Public so tests and
        the benchmark can drive the cadence deterministically."""
        with self._tick_lock:
            families = None
            if self.source is not None:
                try:
                    families = self.source()
                except Exception:
                    families = None  # unreachable source: skip a beat
            if families is not None:
                self._record_snapshot(families)
                for transition in self.engine.evaluate_all(families):
                    self.historian.record(
                        self.campaign_id, "alert", transition,
                        name=transition["name"],
                        wall=transition["wall"])
            if self.manager is not None:
                self._harvest_jobs()
            now = time.monotonic()
            if self.retention and (final or
                                   now - self._last_prune
                                   >= self.prune_interval):
                self._last_prune = now
                self.historian.prune(self.retention)
            if final:
                self.historian.flush()

    def _record_snapshot(self, families: Dict[str, Any]) -> None:
        from ..metrics.exposition import family_total
        totals = {}
        samples = 0
        for name, family in families.items():
            total, _ = family_total(families, name)
            totals[name] = total
            samples += len(family["samples"])
        self.historian.record(
            self.campaign_id, "snapshot",
            {"totals": totals, "families": len(families),
             "samples": samples})
        self.snapshots_recorded += 1

    def _harvest_jobs(self) -> None:
        """Record every job that reached a terminal state since the
        last round — outcome + final exposition as a ``job`` record,
        watchdog verdicts as ``postmortem`` records."""
        status = self.manager.status()
        finals = self.manager.final_metrics()
        profiles = (self.manager.profiles()
                    if hasattr(self.manager, "profiles") else {})
        for job in status.get("jobs", []):
            job_id = job.get("spec", {}).get("job_id")
            state = job.get("state")
            if job_id is None or state not in ("completed", "failed"):
                continue
            if self._recorded_jobs.get(job_id) == state:
                continue
            self._recorded_jobs[job_id] = state
            final = finals.get(job_id, {})
            result = job.get("result") or {}
            self.historian.record(
                self.campaign_id, "job",
                {"state": state,
                 "attempt": job.get("attempt"),
                 "worker_id": (result.get("worker_id")
                               or job.get("worker_id")
                               or final.get("worker_id")),
                 "retries": len(job.get("failures") or []),
                 "result": {k: result.get(k)
                            for k in ("run_state", "sim_time",
                                      "event_count", "wall_seconds",
                                      "resumed_from")
                            if k in result},
                 "metrics_text": final.get("text")},
                name=job_id)
            profile = profiles.get(job_id)
            if profile and profile.get("summary"):
                self.historian.record(
                    self.campaign_id, "profile",
                    {"state": state,
                     "attempt": profile.get("attempt"),
                     "worker_id": profile.get("worker_id"),
                     "summary": profile["summary"]},
                    name=job_id)
                self._profiles_recorded += 1
            self._record_postmortems(job_id, job, result)

    def _record_postmortems(self, job_id: str, job: Dict[str, Any],
                            result: Dict[str, Any]) -> None:
        reports: List[Dict[str, Any]] = []
        for failure in job.get("failures") or []:
            post_mortem = failure.get("post_mortem") or {}
            report = dict(post_mortem)
            report["error"] = failure.get("error")
            report["attempt"] = failure.get("attempt")
            reports.append(report)
        watchdog = result.get("watchdog")
        if watchdog and watchdog.get("verdict"):
            reports.append({"watchdog": watchdog,
                            "attempt": job.get("attempt"),
                            "outcome": job.get("state")})
        for report in reports:
            self.historian.record(self.campaign_id, "postmortem",
                                  report, name=job_id)
            self._postmortems_recorded += 1

    # ------------------------------------------------------------------
    # Views (the gateway's /api/historian handlers call these)
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        return {
            "campaign_id": self.campaign_id,
            "interval": self.interval,
            "snapshots_recorded": self.snapshots_recorded,
            "jobs_recorded": len(self._recorded_jobs),
            "postmortems_recorded": self._postmortems_recorded,
            "profiles_recorded": self._profiles_recorded,
            "rules": [rule.to_dict() for rule in self.engine.rules],
            "transitions": len(self.engine.transitions),
            "retention": [
                {"kind": p.kind, "max_age": p.max_age,
                 "max_count": p.max_count} for p in self.retention],
            "store": self.historian.stats(),
        }
