"""``repro.historian`` — the fleet's durable system of record.

AkitaRTM (``repro.core``) is a live viewer; this package is its
memory.  A WAL-mode SQLite store (:class:`Historian`) persists, across
campaigns: federated metric snapshots sampled on a cadence, per-job
outcomes with their final Prometheus expositions, watchdog
post-mortems (checkpoint + trace-window pointers included), and alert
firings.  On top of it:

* :class:`RetentionPolicy` + :meth:`Historian.prune` — age/count
  retention per record kind, run as the service's idle-time sweep;
* :class:`MetricRule` / :class:`RuleEngine` — declarative
  threshold/rate/absence rules over metric families with deduplicated
  ``firing``/``resolved`` transitions;
* :class:`HistorianService` — the background sampler wiring a live
  campaign (gateway + manager) into the store;
* the gateway's ``/api/historian/*`` query + compare + SSE endpoints,
  ``RTMClient.historian_*``, and the ``repro historian`` CLI.

Typical use::

    from repro.historian import Historian, HistorianService, MetricRule

    historian = Historian("campaigns.db")
    service = HistorianService(historian, campaign_id="sweep-42",
                               manager=manager)
    service.add_rule(MetricRule("rtm_fleet_jobs",
                                labels={"state": "failed"},
                                op=">=", threshold=1))
    service.bind_gateway(gateway)
    service.start()
    ...  # run the campaign
    service.stop()
    report = historian.compare("sweep-41", "sweep-42")
"""

from .rules import MetricRule, RuleEngine, RULE_KINDS
from .service import HistorianService, gateway_source, registry_source
from .store import Historian, RetentionPolicy, RECORD_KINDS

__all__ = [
    "Historian",
    "HistorianService",
    "MetricRule",
    "RECORD_KINDS",
    "RULE_KINDS",
    "RetentionPolicy",
    "RuleEngine",
    "gateway_source",
    "registry_source",
]
