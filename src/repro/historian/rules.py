"""Declarative alert rules over metric families.

:mod:`repro.core.alerts` watches one live simulation's component
values.  The historian's rules generalize that to the *fleet* plane:
they evaluate against parsed metric snapshots (the gateway's federated
``/metrics``, or any registry exposition), so one rule can watch a
family aggregated across every worker and job.

Three rule kinds:

* ``threshold`` — the label-matched family total compared against a
  bound (``rtm_fleet_jobs{state="failed"} >= 1``);
* ``rate``      — the per-second increase of the total between
  consecutive snapshots compared against a bound (a counter going too
  fast, or — with ``<=`` — too slow);
* ``absence``   — fires when the family has no matching samples at all
  (a worker that stopped reporting).

Rules are state machines with **deduplicated transitions**: a breach
held for ``for_seconds`` emits one ``firing``; the rule then stays
silently firing until the condition clears, which emits one
``resolved`` and re-arms it.  The evaluator never fires per tick.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.alerts import OPERATORS
from ..metrics.exposition import family_total

__all__ = ["MetricRule", "RuleEngine", "RULE_KINDS"]

RULE_KINDS = ("threshold", "rate", "absence")

_rule_ids = itertools.count(1)


@dataclass
class MetricRule:
    """One declarative rule over a metric family (see module doc)."""

    family: str
    op: str = ">="
    threshold: float = 0.0
    kind: str = "threshold"
    labels: Dict[str, str] = field(default_factory=dict)
    for_seconds: float = 0.0
    name: str = ""
    id: int = field(default_factory=lambda: next(_rule_ids))

    # runtime state
    state: str = "ok"  # ok | pending | firing
    last_value: Optional[float] = None
    fired_count: int = 0
    _holding_since: Optional[float] = None
    _prev: Optional[Tuple[float, float]] = None  # (wall, total) for rate

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ValueError(f"unknown rule kind {self.kind!r}; "
                             f"use one of {RULE_KINDS}")
        if self.op not in OPERATORS:
            raise ValueError(f"unknown operator {self.op!r}; "
                             f"use one of {sorted(OPERATORS)}")
        if not self.name:
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(self.labels.items()))
            target = self.family + (f"{{{labels}}}" if labels else "")
            if self.kind == "absence":
                self.name = f"absent({target})"
            elif self.kind == "rate":
                self.name = (f"rate({target}) {self.op} "
                             f"{self.threshold:g}")
            else:
                self.name = f"{target} {self.op} {self.threshold:g}"

    # ------------------------------------------------------------------
    def _breaching(self, families: Dict[str, Any],
                   now_wall: float) -> bool:
        total, matched = family_total(families, self.family, self.labels)
        if self.kind == "absence":
            self.last_value = float(matched)
            return matched == 0
        if self.kind == "rate":
            prev = self._prev
            self._prev = (now_wall, total)
            if prev is None:
                self.last_value = None
                return False  # need two snapshots for a rate
            elapsed = now_wall - prev[0]
            if elapsed <= 0:
                return False
            value = (total - prev[1]) / elapsed
        else:
            if matched == 0:
                self.last_value = None
                return False  # no data is not a threshold breach
            value = total
        self.last_value = value
        return OPERATORS[self.op](value, self.threshold)

    def evaluate(self, families: Dict[str, Any],
                 now_wall: Optional[float] = None) -> Optional[str]:
        """Advance the state machine against one parsed snapshot.

        Returns ``"firing"`` or ``"resolved"`` on a transition, else
        ``None`` — by construction at most one transition per call, and
        a still-breaching rule emits nothing.
        """
        now_wall = time.monotonic() if now_wall is None else now_wall
        breaching = self._breaching(families, now_wall)
        if breaching:
            if self.state == "firing":
                return None
            if self._holding_since is None:
                self._holding_since = now_wall
            if now_wall - self._holding_since >= self.for_seconds:
                self.state = "firing"
                self.fired_count += 1
                return "firing"
            self.state = "pending"
            return None
        self._holding_since = None
        if self.state == "firing":
            self.state = "ok"
            return "resolved"
        self.state = "ok"
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "family": self.family,
            "labels": dict(self.labels),
            "kind": self.kind,
            "op": self.op,
            "threshold": self.threshold,
            "for_seconds": self.for_seconds,
            "state": self.state,
            "last_value": self.last_value,
            "fired_count": self.fired_count,
        }


class RuleEngine:
    """Evaluates a rule set against incoming snapshots.

    Transitions accumulate in a sequence-numbered log the SSE stream
    and the historian's ``alert`` records both drain — the sequence
    number is what makes "exactly once into the stream" checkable.
    """

    def __init__(self, registry=None):
        """*registry*: a :class:`~repro.metrics.MetricRegistry` that
        gets the ``rtm_alerts_transitions_total{state=...}`` counter
        (shared family name with :class:`repro.core.alerts.
        AlertManager` — one alerting vocabulary, two planes)."""
        self._rules: Dict[int, MetricRule] = {}
        self.transitions: List[Dict[str, Any]] = []
        self._seq = itertools.count(1)
        self._counter = None
        if registry is not None:
            self.attach_registry(registry)

    def attach_registry(self, registry) -> None:
        """(Re)bind the transitions counter — the gateway attaches its
        own registry when the service binds to it."""
        self._counter = registry.counter(
            "rtm_alerts_transitions_total",
            "Deduplicated alert rule transitions.", ("state",))

    def add(self, rule: MetricRule) -> MetricRule:
        self._rules[rule.id] = rule
        return rule

    def remove(self, rule_id: int) -> bool:
        return self._rules.pop(rule_id, None) is not None

    @property
    def rules(self) -> List[MetricRule]:
        return list(self._rules.values())

    def evaluate_all(self, families: Dict[str, Any],
                     now_wall: Optional[float] = None
                     ) -> List[Dict[str, Any]]:
        """One pass over every rule; returns the new transitions."""
        now_wall = time.monotonic() if now_wall is None else now_wall
        new: List[Dict[str, Any]] = []
        for rule in list(self._rules.values()):
            transition = rule.evaluate(families, now_wall)
            if transition is None:
                continue
            event = {
                "seq": next(self._seq),
                "rule_id": rule.id,
                "name": rule.name,
                "state": transition,
                "value": rule.last_value,
                "wall": time.time(),
            }
            new.append(event)
            self.transitions.append(event)
            if self._counter is not None:
                self._counter.labels(transition).inc()
        return new

    def transitions_since(self, seq: int) -> List[Dict[str, Any]]:
        """Transitions with a sequence number greater than *seq* —
        the SSE resume cursor."""
        return [t for t in self.transitions if t["seq"] > seq]

    def to_dict(self) -> Dict[str, Any]:
        return {"rules": [rule.to_dict() for rule in self.rules],
                "transitions": list(self.transitions)}
