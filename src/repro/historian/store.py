"""The historian's repository layer: campaigns as durable SQLite rows.

Everything the live monitor learns evaporates when its process exits —
metrics, watchdog verdicts, which jobs a campaign ran.  The
:class:`Historian` is the system of record underneath it: one WAL-mode
SQLite database holding, across campaigns,

* **snapshot** records — federated fleet metric snapshots sampled on a
  cadence from the gateway;
* **job** records — per-job outcomes and final Prometheus expositions;
* **postmortem** records — watchdog verdicts with their
  ``resume_checkpoint`` and trace-window pointers;
* **alert** records — deduplicated firing/resolved rule transitions.

**Write path.**  Appends go to an in-memory pending list and land in
one ``executemany`` per batch (the :class:`~repro.trace.store.
SQLiteStore` discipline), so ingest never holds a transaction open on
the sampling cadence.  Every row carries a CRC32 of its payload bytes,
the :mod:`repro.fleet.journal` trick: replay detects a bit-flipped row
without trusting SQLite's own page checksums (it has none).

**Damage doctrine** mirrors the journal replay suite: a truncated or
corrupt database must *degrade*, never crash the fleet.  Reads collect
what survives and count what didn't (``corrupt_records`` for CRC
mismatches, ``read_errors`` for pages SQLite itself gave up on);
writes that hit a damaged file flip the store into a degraded mode
that counts ``lost_records`` instead of raising into the scheduler.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..metrics.exposition import family_total, parse_exposition

__all__ = ["Historian", "RetentionPolicy", "RECORD_KINDS"]

#: The record kinds the historian persists (also the retention axis).
RECORD_KINDS = ("snapshot", "job", "postmortem", "alert", "profile")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id   TEXT PRIMARY KEY,
    started_wall  REAL NOT NULL,
    finished_wall REAL,
    meta          TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS records (
    id          INTEGER PRIMARY KEY,
    campaign_id TEXT NOT NULL,
    kind        TEXT NOT NULL,
    name        TEXT NOT NULL DEFAULT '',
    wall        REAL NOT NULL,
    payload     TEXT NOT NULL,
    crc         INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_campaign_kind
    ON records (campaign_id, kind);
CREATE INDEX IF NOT EXISTS idx_records_kind_wall
    ON records (kind, wall);
"""


@dataclass
class RetentionPolicy:
    """Age- and count-based retention for one record kind.

    ``max_age`` prunes rows whose wall timestamp has fallen out of the
    window; ``max_count`` keeps only the newest N rows of the kind.
    Either bound may be ``None`` (unbounded on that axis)."""

    kind: str
    max_age: Optional[float] = None
    max_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise ValueError(f"unknown record kind {self.kind!r}; "
                             f"use one of {RECORD_KINDS}")


def _crc(payload: str) -> int:
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


@dataclass
class _Damage:
    """What the store survived (exposed via :meth:`Historian.stats`)."""

    corrupt_records: int = 0
    read_errors: int = 0
    lost_records: int = 0
    degraded: bool = False
    errors: List[str] = field(default_factory=list)

    def note(self, exc: BaseException) -> None:
        if len(self.errors) < 8:  # keep the first few verdicts
            self.errors.append(f"{type(exc).__name__}: {exc}")


class Historian:
    """The campaign system of record (see module docstring).

    Thread-safe: the fleet scheduler, the sampling service and HTTP
    query handlers share one instance behind one lock, with reads
    flushing pending writes first so a query never misses its own
    campaign's rows.
    """

    def __init__(self, path: Any, batch_size: int = 64,
                 flush_interval: float = 0.5):
        self.path = str(path)
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self._lock = threading.RLock()
        self._pending: List[tuple] = []
        self._last_flush = time.monotonic()
        self.damage = _Damage()
        self._conn: Optional[sqlite3.Connection] = None
        try:
            conn = sqlite3.connect(self.path, check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._conn = conn
        except sqlite3.Error as exc:
            # A damaged file must not take the fleet down with it: the
            # store opens degraded and counts what it drops.
            self.damage.degraded = True
            self.damage.note(exc)

    # ------------------------------------------------------------------
    # Campaign lifecycle
    # ------------------------------------------------------------------
    def begin_campaign(self, campaign_id: Optional[str] = None,
                       meta: Optional[Dict[str, Any]] = None) -> str:
        campaign_id = campaign_id or f"campaign-{int(time.time())}"
        with self._lock:
            self._execute(
                "INSERT INTO campaigns (campaign_id, started_wall, meta)"
                " VALUES (?, ?, ?) ON CONFLICT (campaign_id) DO UPDATE"
                " SET started_wall = excluded.started_wall,"
                "     finished_wall = NULL, meta = excluded.meta",
                (campaign_id, time.time(),
                 json.dumps(meta or {}, default=str)))
        return campaign_id

    def end_campaign(self, campaign_id: str) -> None:
        with self._lock:
            self.flush()
            self._execute(
                "UPDATE campaigns SET finished_wall = ?"
                " WHERE campaign_id = ?", (time.time(), campaign_id))

    # ------------------------------------------------------------------
    # Ingest (batched)
    # ------------------------------------------------------------------
    def record(self, campaign_id: str, kind: str, payload: Dict[str, Any],
               name: str = "", wall: Optional[float] = None) -> None:
        """Append one record; lands in the next batched flush."""
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown record kind {kind!r}")
        text = json.dumps(payload, separators=(",", ":"), default=str)
        row = (campaign_id, kind, name,
               time.time() if wall is None else wall, text, _crc(text))
        with self._lock:
            self._pending.append(row)
            now = time.monotonic()
            if (len(self._pending) >= self.batch_size
                    or now - self._last_flush >= self.flush_interval):
                self.flush()

    def flush(self) -> None:
        with self._lock:
            if not self._pending:
                self._last_flush = time.monotonic()
                return
            rows, self._pending = self._pending, []
            self._last_flush = time.monotonic()
            if self._conn is None:
                self.damage.lost_records += len(rows)
                return
            try:
                self._conn.executemany(
                    "INSERT INTO records (campaign_id, kind, name, wall,"
                    " payload, crc) VALUES (?, ?, ?, ?, ?, ?)", rows)
                self._conn.commit()
            except sqlite3.Error as exc:
                self.damage.degraded = True
                self.damage.lost_records += len(rows)
                self.damage.note(exc)

    def close(self) -> None:
        with self._lock:
            self.flush()
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    # ------------------------------------------------------------------
    # Guarded SQL (the damage doctrine)
    # ------------------------------------------------------------------
    def _execute(self, sql: str, args: Sequence[Any] = ()) -> None:
        if self._conn is None:
            self.damage.lost_records += 1
            return
        try:
            self._conn.execute(sql, args)
            self._conn.commit()
        except sqlite3.Error as exc:
            self.damage.degraded = True
            self.damage.lost_records += 1
            self.damage.note(exc)

    def _rows(self, sql: str, args: Sequence[Any] = ()) -> List[tuple]:
        """Read what survives: rows fetched before a page error are
        returned, the error is counted, nothing raises."""
        if self._conn is None:
            return []
        try:
            cursor = self._conn.execute(sql, args)
        except sqlite3.Error as exc:
            self.damage.read_errors += 1
            self.damage.note(exc)
            return []
        rows: List[tuple] = []
        while True:
            try:
                row = cursor.fetchone()
            except sqlite3.Error as exc:
                self.damage.read_errors += 1
                self.damage.note(exc)
                break
            if row is None:
                break
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def campaigns(self) -> List[Dict[str, Any]]:
        """Every campaign, oldest first, with per-kind record counts."""
        with self._lock:
            self.flush()
            rows = self._rows(
                "SELECT campaign_id, started_wall, finished_wall, meta"
                " FROM campaigns ORDER BY started_wall, campaign_id")
            counts = self._rows(
                "SELECT campaign_id, kind, COUNT(*) FROM records"
                " GROUP BY campaign_id, kind")
        by_campaign: Dict[str, Dict[str, int]] = {}
        for campaign_id, kind, count in counts:
            by_campaign.setdefault(campaign_id, {})[kind] = count
        out = []
        for campaign_id, started, finished, meta in rows:
            try:
                meta = json.loads(meta)
            except (TypeError, ValueError):
                meta = {}
            out.append({"campaign_id": campaign_id,
                        "started_wall": started,
                        "finished_wall": finished,
                        "meta": meta,
                        "records": by_campaign.get(campaign_id, {})})
        return out

    def query(self, campaign_id: Optional[str] = None,
              kind: Optional[str] = None, name: Optional[str] = None,
              since: Optional[float] = None,
              until: Optional[float] = None,
              limit: int = 1000) -> List[Dict[str, Any]]:
        """Filtered records, oldest first, CRC-verified.

        Rows whose payload fails its CRC or no longer parses are
        skipped and counted in ``stats()["corrupt_records"]`` — the
        journal replay contract, applied to SQLite."""
        clauses, args = [], []
        if campaign_id is not None:
            clauses.append("campaign_id = ?")
            args.append(campaign_id)
        if kind is not None:
            clauses.append("kind = ?")
            args.append(kind)
        if name is not None:
            clauses.append("name = ?")
            args.append(name)
        if since is not None:
            clauses.append("wall >= ?")
            args.append(since)
        if until is not None:
            clauses.append("wall <= ?")
            args.append(until)
        sql = ("SELECT id, campaign_id, kind, name, wall, payload, crc"
               " FROM records")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id"
        if limit:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            self.flush()
            rows = self._rows(sql, args)
        out = []
        for row_id, cid, rkind, rname, wall, payload, crc in rows:
            if _crc(payload) != crc:
                self.damage.corrupt_records += 1
                continue
            try:
                parsed = json.loads(payload)
            except (TypeError, ValueError):
                self.damage.corrupt_records += 1
                continue
            out.append({"id": row_id, "campaign_id": cid,
                        "kind": rkind, "name": rname, "wall": wall,
                        "payload": parsed})
        return out

    def jobs(self, campaign_id: str) -> List[Dict[str, Any]]:
        """One entry per job of *campaign_id* (latest record wins)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.query(campaign_id, kind="job", limit=0):
            latest[record["name"]] = record
        return [latest[name] for name in sorted(latest)]

    def profiles(self, campaign_id: str) -> List[Dict[str, Any]]:
        """One profile record per job of *campaign_id* (latest wins)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.query(campaign_id, kind="profile", limit=0):
            latest[record["name"]] = record
        return [latest[name] for name in sorted(latest)]

    def postmortems(self, campaign_id: str) -> List[Dict[str, Any]]:
        return self.query(campaign_id, kind="postmortem", limit=0)

    def alerts(self, campaign_id: Optional[str] = None
               ) -> List[Dict[str, Any]]:
        return self.query(campaign_id, kind="alert", limit=0)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            self.flush()
            counts = dict(self._rows(
                "SELECT kind, COUNT(*) FROM records GROUP BY kind"))
            campaigns = self._rows("SELECT COUNT(*) FROM campaigns")
        return {
            "path": self.path,
            "campaigns": campaigns[0][0] if campaigns else 0,
            "records": {kind: counts.get(kind, 0)
                        for kind in RECORD_KINDS},
            "degraded": self.damage.degraded,
            "corrupt_records": self.damage.corrupt_records,
            "read_errors": self.damage.read_errors,
            "lost_records": self.damage.lost_records,
            "errors": list(self.damage.errors),
        }

    # ------------------------------------------------------------------
    # Campaign comparison
    # ------------------------------------------------------------------
    def compare(self, campaign_a: str, campaign_b: str
                ) -> Dict[str, Any]:
        """Diff two campaigns' per-job final metric families.

        Every job of both campaigns is named (``jobs``), and each
        metric family that appears in either campaign's final
        expositions gets an ``{a, b, delta, ratio}`` entry summing the
        family across the campaign's jobs — the "did this change
        regress X?" primitive.  Families only one side has land in
        ``only_a``/``only_b``.

        When either campaign carries ``profile`` records (continuous
        profiling summaries shipped by fleet workers) the result also
        gains a ``profile`` section: per-layer ``{a, b, delta, ratio}``
        seconds plus the functions whose self time moved most — the
        per-layer overhead regression primitive.
        """
        sides = {}
        for key, campaign_id in (("a", campaign_a), ("b", campaign_b)):
            jobs = self.jobs(campaign_id)
            totals: Dict[str, float] = {}
            job_rows = []
            for record in jobs:
                payload = record["payload"]
                job_rows.append({
                    "job_id": record["name"],
                    "state": payload.get("state"),
                    "attempt": payload.get("attempt"),
                    "worker_id": payload.get("worker_id"),
                    "retries": payload.get("retries", 0),
                })
                families = parse_exposition(
                    payload.get("metrics_text") or "")
                for family_name in families:
                    total, _ = family_total(families, family_name)
                    totals[family_name] = (totals.get(family_name, 0.0)
                                           + total)
            sides[key] = {"campaign_id": campaign_id, "jobs": job_rows,
                          "totals": totals}
        totals_a = sides["a"]["totals"]
        totals_b = sides["b"]["totals"]
        families = {}
        for family_name in sorted(set(totals_a) | set(totals_b)):
            a = totals_a.get(family_name)
            b = totals_b.get(family_name)
            entry: Dict[str, Any] = {"a": a, "b": b}
            if a is not None and b is not None:
                entry["delta"] = b - a
                entry["ratio"] = (b / a) if a else None
            families[family_name] = entry
        result = {
            "a": {"campaign_id": campaign_a,
                  "jobs": sides["a"]["jobs"]},
            "b": {"campaign_id": campaign_b,
                  "jobs": sides["b"]["jobs"]},
            "families": families,
            "only_a": sorted(set(totals_a) - set(totals_b)),
            "only_b": sorted(set(totals_b) - set(totals_a)),
        }
        profile = self._compare_profiles(campaign_a, campaign_b)
        if profile is not None:
            result["profile"] = profile
        return result

    def _compare_profiles(self, campaign_a: str, campaign_b: str
                          ) -> Optional[Dict[str, Any]]:
        """Per-layer/per-function diff of the campaigns' profile
        records, or None when neither side recorded any."""
        from ..profile import diff_summaries, merge_summaries
        merged = {}
        counts = {}
        for key, campaign_id in (("a", campaign_a), ("b", campaign_b)):
            summaries = [record["payload"].get("summary") or {}
                         for record in self.profiles(campaign_id)]
            summaries = [s for s in summaries if s]
            counts[key] = len(summaries)
            merged[key] = merge_summaries(summaries) if summaries else None
        if merged["a"] is None and merged["b"] is None:
            return None
        diff = diff_summaries(merged["a"] or {}, merged["b"] or {})
        diff["jobs_profiled"] = counts
        return diff

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self, policies: Iterable[RetentionPolicy],
              now: Optional[float] = None) -> Dict[str, int]:
        """Delete exactly the out-of-policy rows; returns deletions per
        kind.  Runs as the service's idle-time sweep, or via the
        ``repro historian prune`` CLI."""
        now = time.time() if now is None else now
        deleted: Dict[str, int] = {}
        with self._lock:
            self.flush()
            if self._conn is None:
                return deleted
            for policy in policies:
                count = 0
                try:
                    if policy.max_age is not None:
                        cursor = self._conn.execute(
                            "DELETE FROM records WHERE kind = ?"
                            " AND wall < ?",
                            (policy.kind, now - policy.max_age))
                        count += cursor.rowcount
                    if policy.max_count is not None:
                        cursor = self._conn.execute(
                            "DELETE FROM records WHERE kind = ?"
                            " AND id NOT IN (SELECT id FROM records"
                            "  WHERE kind = ? ORDER BY id DESC"
                            "  LIMIT ?)",
                            (policy.kind, policy.kind,
                             int(policy.max_count)))
                        count += cursor.rowcount
                    self._conn.commit()
                except sqlite3.Error as exc:
                    self.damage.degraded = True
                    self.damage.note(exc)
                    continue
                if count:
                    deleted[policy.kind] = (deleted.get(policy.kind, 0)
                                            + count)
        return deleted
