"""Matrix multiplication (AMD APP SDK suite), tiled.

Access pattern: each workgroup computes one output tile.  A-tiles are
read row-wise (sequential lines, good locality); B-tiles column-wise
(stride = full row width — the classic cache-hostile stride); C written
once per tile.  Compute between loads models the MAC work.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.kernel import KernelDescriptor
from ..gpu.mem import CACHE_LINE_SIZE
from .base import WORD, Workload


@dataclass
class MatMul(Workload):
    """C[n×n] = A[n×n] @ B[n×n] with ``tile``-sized workgroup tiles."""

    n: int = 256
    tile: int = 16
    wavefronts_per_wg: int = 4

    name = "matmul"

    def __post_init__(self) -> None:
        if self.n <= 0 or self.tile <= 0 or self.n % self.tile:
            raise ValueError("matrix size must be a multiple of the tile")

    @property
    def tiles_per_dim(self) -> int:
        return self.n // self.tile

    @property
    def num_workgroups(self) -> int:
        return self.tiles_per_dim * self.tiles_per_dim

    def kernel(self) -> KernelDescriptor:
        n, tile, wfs = self.n, self.tile, self.wavefronts_per_wg
        tiles = self.tiles_per_dim
        a_base = 0
        b_base = n * n * WORD
        c_base = 2 * n * n * WORD

        def program(wg: int, wf: int):
            ti, tj = wg // tiles, wg % tiles
            rows = range(wf, tile, wfs)  # wavefront owns tile rows
            for r in rows:
                row = ti * tile + r
                for kt in range(tiles):
                    # A: one sequential line-sized chunk of the row.
                    yield ("load",
                           a_base + (row * n + kt * tile) * WORD,
                           tile * WORD)
                    # B: strided column reads — one access per element
                    # row of the B tile (stride n words).
                    for kk in range(0, tile,
                                    max(1, CACHE_LINE_SIZE // WORD // 4)):
                        yield ("load",
                               b_base + ((kt * tile + kk) * n
                                         + tj * tile) * WORD,
                               tile * WORD)
                    yield ("compute", tile // 2)
                yield ("store", c_base + (row * n + tj * tile) * WORD,
                       tile * WORD)

        return KernelDescriptor(self.name, self.num_workgroups,
                                self.wavefronts_per_wg, program)

    def input_bytes(self) -> int:
        return 2 * self.n * self.n * WORD

    def output_bytes(self) -> int:
        return self.n * self.n * WORD
