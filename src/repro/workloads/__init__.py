"""``repro.workloads`` — the six MGPUSim benchmarks of the paper's
evaluation (Figure 7), plus diagnostic workloads.

Each workload is a trace generator: it produces the per-wavefront
timing-op streams (loads/stores/compute) whose address patterns match
the real OpenCL kernels' locality and striding.  See DESIGN.md for why
this substitution preserves everything AkitaRTM observes.
"""

from typing import Callable, Dict

from .aes import AES
from .base import WORD, Workload, WorkloadRun, mix
from .bfs import BFS
from .fir import FIR
from .im2col import Im2Col
from .kmeans import KMeans
from .matmul import MatMul
from .storestorm import StoreStorm

#: The paper's benchmark suite (Figure 7 x-axis), default problem sizes.
SUITE: Dict[str, Callable[[], Workload]] = {
    "aes": AES,
    "bfs": BFS,
    "fir": FIR,
    "im2col": Im2Col,
    "kmeans": KMeans,
    "matmul": MatMul,
}


def suite_small() -> Dict[str, Workload]:
    """Problem sizes that engage all CUs of a scaled platform while
    keeping pure-Python event counts tractable."""
    return {
        "aes": AES(num_blocks=2048),
        "bfs": BFS(num_vertices=2048),
        "fir": FIR(num_samples=8192),
        "im2col": Im2Col.scaled(batch=16),
        "kmeans": KMeans(num_points=2048),
        "matmul": MatMul(n=64, tile=16),
    }


__all__ = [
    "AES",
    "BFS",
    "FIR",
    "Im2Col",
    "KMeans",
    "MatMul",
    "StoreStorm",
    "SUITE",
    "WORD",
    "Workload",
    "WorkloadRun",
    "mix",
    "suite_small",
]
