"""BFS — breadth-first search over a synthetic power-law graph.

Access pattern: the classic irregular one.  Each frontier vertex reads
its row-pointer (sequential), then its adjacency list (random base), and
issues scattered single-word reads of neighbour levels plus scattered
writes of updated levels.  Low locality, TLB-hostile, page-scattered —
the opposite end of the spectrum from FIR.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.kernel import KernelDescriptor
from .base import WORD, Workload, mix


@dataclass
class BFS(Workload):
    """One BFS level-expansion pass."""

    num_vertices: int = 65536
    avg_degree: int = 8
    vertices_per_wavefront: int = 16
    wavefronts_per_wg: int = 4

    name = "bfs"

    def __post_init__(self) -> None:
        if self.num_vertices <= 0 or self.avg_degree <= 0:
            raise ValueError("bfs needs positive sizes")

    @property
    def num_workgroups(self) -> int:
        per_wg = self.vertices_per_wavefront * self.wavefronts_per_wg
        return max(1, (self.num_vertices + per_wg - 1) // per_wg)

    def _degree(self, v: int) -> int:
        """Deterministic power-law-ish degree in [1, 4*avg]."""
        h = mix(v, 0xB0F5)
        d = 1 + (h % (2 * self.avg_degree))
        if h % 16 == 0:  # occasional hub
            d *= 4
        return d

    def kernel(self) -> KernelDescriptor:
        nv = self.num_vertices
        row_base = 0
        adj_base = nv * WORD
        adj_words = nv * self.avg_degree
        level_base = adj_base + adj_words * WORD
        vpw = self.vertices_per_wavefront
        wfs = self.wavefronts_per_wg

        def program(wg: int, wf: int):
            start = (wg * wfs + wf) * vpw
            for v in range(start, min(start + vpw, nv)):
                yield ("load", row_base + v * WORD, 2 * WORD)
                # Adjacency list begins at a hashed offset.
                adj_off = mix(v, 0xAD30) % max(1, adj_words - 64)
                yield ("load", adj_base + adj_off * WORD,
                       min(self._degree(v), 16) * WORD)
                for e in range(min(self._degree(v), 8)):
                    neighbour = mix(v, e, 0x4E16) % nv
                    yield ("load", level_base + neighbour * WORD, WORD)
                    if mix(v, e, 0x5E70) % 4 == 0:  # frontier update
                        yield ("store", level_base + neighbour * WORD,
                               WORD)
                yield ("compute", 1)

        return KernelDescriptor(self.name, self.num_workgroups,
                                self.wavefronts_per_wg, program)

    def input_bytes(self) -> int:
        return (self.num_vertices * (1 + self.avg_degree)
                + self.num_vertices) * WORD

    def output_bytes(self) -> int:
        return self.num_vertices * WORD
