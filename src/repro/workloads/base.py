"""Workload base machinery.

A workload binds a problem size to a :class:`KernelDescriptor` (the
timing trace generator) plus the host-side commands (memcopies) that a
real benchmark run performs.  ``enqueue`` pushes everything onto a
driver; the returned :class:`WorkloadRun` exposes the progress states the
monitor's progress bars read.

Address streams use a deterministic integer hash (no ``random`` module)
so every run of a benchmark is bit-for-bit reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..gpu.driver import Driver
from ..gpu.kernel import KernelDescriptor, KernelState, MemCopyState

#: Default element size in bytes (fp32).
WORD = 4


def mix(*values: int) -> int:
    """A small deterministic integer hash (splitmix64-flavoured)."""
    h = 0x9E3779B97F4A7C15
    for v in values:
        h ^= (v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)) & ((1 << 64) - 1)
        h = (h * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
        h ^= h >> 31
    return h


@dataclass
class WorkloadRun:
    """Handles to everything a run enqueued."""

    workload: "Workload"
    copies: List[MemCopyState] = field(default_factory=list)
    kernels: List[KernelState] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return (all(c.done for c in self.copies)
                and all(k.done for k in self.kernels))


class Workload:
    """Base class of the six reproduced MGPUSim benchmarks."""

    #: Benchmark name (matches the paper's Figure 7 x-axis labels).
    name = "abstract"

    def kernel(self) -> KernelDescriptor:
        """The kernel grid + wavefront trace program."""
        raise NotImplementedError

    def input_bytes(self) -> int:
        """Host→device bytes copied before the kernel."""
        raise NotImplementedError

    def output_bytes(self) -> int:
        """Device→host bytes copied after the kernel."""
        raise NotImplementedError

    def enqueue(self, driver: Driver) -> WorkloadRun:
        """Push the full benchmark (copies + kernel) onto *driver*."""
        run = WorkloadRun(self)
        if self.input_bytes() > 0:
            run.copies.append(driver.memcopy_h2d(self.input_bytes()))
        run.kernels.append(driver.launch_kernel(self.kernel()))
        if self.output_bytes() > 0:
            run.copies.append(driver.memcopy_d2h(self.output_bytes()))
        return run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name}>"
