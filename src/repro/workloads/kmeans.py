"""KMeans clustering (HeteroMark / Rodinia style).

Access pattern per iteration: stream every feature vector sequentially,
repeatedly hit the tiny centroid table (stays hot in L1), write one
membership word per point.  Streaming reads + a hot working set.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.kernel import KernelDescriptor
from .base import WORD, Workload


@dataclass
class KMeans(Workload):
    """One labelling pass over ``num_points`` × ``num_features`` data."""

    num_points: int = 16384
    num_features: int = 8
    num_clusters: int = 8
    points_per_wavefront: int = 32
    wavefronts_per_wg: int = 4

    name = "kmeans"

    def __post_init__(self) -> None:
        if min(self.num_points, self.num_features,
               self.num_clusters) <= 0:
            raise ValueError("kmeans needs positive sizes")

    @property
    def num_workgroups(self) -> int:
        per_wg = self.points_per_wavefront * self.wavefronts_per_wg
        return max(1, (self.num_points + per_wg - 1) // per_wg)

    def kernel(self) -> KernelDescriptor:
        feat_bytes = self.num_features * WORD
        data_base = 0
        centroid_base = self.num_points * feat_bytes
        member_base = centroid_base + self.num_clusters * feat_bytes
        ppw = self.points_per_wavefront
        wfs = self.wavefronts_per_wg
        clusters = self.num_clusters

        def program(wg: int, wf: int):
            start = (wg * wfs + wf) * ppw
            # Pull the centroid table once via the scalar path (it is
            # shared by the whole wavefront); it stays hot afterwards.
            yield ("sload", centroid_base, clusters * feat_bytes)
            for p in range(start, start + ppw):
                yield ("load", data_base + p * feat_bytes, feat_bytes)
                # Distance to each centroid: compute + a hot re-touch.
                yield ("sload", centroid_base, WORD)
                yield ("compute", clusters * 2)
                yield ("store", member_base + p * WORD, WORD)

        return KernelDescriptor(self.name, self.num_workgroups,
                                self.wavefronts_per_wg, program)

    def input_bytes(self) -> int:
        return (self.num_points * self.num_features
                + self.num_clusters * self.num_features) * WORD

    def output_bytes(self) -> int:
        return self.num_points * WORD
