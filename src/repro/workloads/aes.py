"""AES-256 ECB encryption (HeteroMark).

Access pattern: compute-dominated.  Each wavefront streams 16-byte
blocks in, spends many cycles in the round computation (with hot S-box
table touches that stay resident in L1), and streams ciphertext out.
The memory system is lightly loaded — AES is the benchmark where
monitoring overhead disappears into the noise in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.kernel import KernelDescriptor
from .base import WORD, Workload

#: AES block size in bytes.
BLOCK = 16


@dataclass
class AES(Workload):
    """Encrypt ``num_blocks`` 16-byte blocks."""

    num_blocks: int = 16384
    rounds: int = 14  # AES-256
    blocks_per_wavefront: int = 32
    wavefronts_per_wg: int = 4

    name = "aes"

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("aes needs positive sizes")

    @property
    def num_workgroups(self) -> int:
        per_wg = self.blocks_per_wavefront * self.wavefronts_per_wg
        return max(1, (self.num_blocks + per_wg - 1) // per_wg)

    def kernel(self) -> KernelDescriptor:
        in_base = 0
        sbox_base = self.num_blocks * BLOCK
        out_base = sbox_base + 4096  # S-box + round keys region
        bpw = self.blocks_per_wavefront
        wfs = self.wavefronts_per_wg
        rounds = self.rounds

        def program(wg: int, wf: int):
            start = (wg * wfs + wf) * bpw
            yield ("sload", sbox_base, 1024)  # S-box: hot afterwards
            for b in range(start, start + bpw):
                yield ("load", in_base + b * BLOCK, BLOCK)
                yield ("sload", sbox_base + (b % 16) * 64, WORD)
                yield ("compute", rounds * 4)
                yield ("store", out_base + b * BLOCK, BLOCK)

        return KernelDescriptor(self.name, self.num_workgroups,
                                self.wavefronts_per_wg, program)

    def input_bytes(self) -> int:
        return self.num_blocks * BLOCK + 4096

    def output_bytes(self) -> int:
        return self.num_blocks * BLOCK
