"""im2col — Image-to-Column conversion (DNN suite).

The workload of case study 1 and the problematic simulation in the user
study.  The paper's parameters: 24×24 images, 6 feature-map channels,
batch size 640, on a 4-chiplet MCM GPU.

Access pattern: each output column gathers a convolution window —
strided reads across rows and channels of the input image (poor spatial
locality, scattered across pages and therefore across chiplets), plus a
dense sequential write of the column matrix.  This is what drives the
L1 MSHRs to saturation and piles transactions into the RDMA engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.kernel import KernelDescriptor
from .base import WORD, Workload, mix


@dataclass
class Im2Col(Workload):
    """im2col over a batch of multi-channel images."""

    image_width: int = 24
    image_height: int = 24
    channels: int = 6
    batch: int = 640
    kernel_size: int = 3
    wavefronts_per_wg: int = 4
    images_per_wg: int = 4
    #: Columns actually traced per wavefront.  The real kernel touches
    #: every column; tracing a stride-sampled subset keeps event counts
    #: tractable while preserving the access pattern (gathers stay
    #: strided and page-scattered).  ``None`` traces all columns.
    cols_per_wavefront: int | None = 8

    name = "im2col"

    def __post_init__(self) -> None:
        if min(self.image_width, self.image_height, self.channels,
               self.batch, self.kernel_size) <= 0:
            raise ValueError("im2col needs positive sizes")

    @property
    def image_bytes(self) -> int:
        return (self.image_width * self.image_height * self.channels
                * WORD)

    @property
    def out_cols(self) -> int:
        return ((self.image_width - self.kernel_size + 1)
                * (self.image_height - self.kernel_size + 1))

    @property
    def num_workgroups(self) -> int:
        return max(1, self.batch // self.images_per_wg)

    def kernel(self) -> KernelDescriptor:
        w, h, c = self.image_width, self.image_height, self.channels
        k = self.kernel_size
        img_bytes = self.image_bytes
        out_base = self.batch * img_bytes
        col_bytes = k * k * c * WORD
        images_per_wg = self.images_per_wg
        wfs = self.wavefronts_per_wg
        cols = self.out_cols

        limit = self.cols_per_wavefront

        def program(wg: int, wf: int):
            # Each wavefront handles a slice of the output columns of
            # this workgroup's images.
            for local_img in range(images_per_wg):
                img = wg * images_per_wg + local_img
                img_base = img * img_bytes
                col_slice = range(wf, cols, wfs)
                if limit is not None:
                    col_slice = list(col_slice)[:limit]
                for col in col_slice:
                    x = col % (w - k + 1)
                    y = col // (w - k + 1)
                    # Gather the k x k window from every channel: one
                    # strided read per window row per channel.
                    for ch in range(c):
                        for ky in range(k):
                            addr = img_base + ((ch * h + y + ky) * w
                                               + x) * WORD
                            yield ("load", addr, k * WORD)
                    yield ("compute", 2)
                    yield ("store",
                           out_base + (img * cols + col) * col_bytes,
                           col_bytes)

        return KernelDescriptor(self.name, self.num_workgroups,
                                self.wavefronts_per_wg, program)

    def input_bytes(self) -> int:
        return self.batch * self.image_bytes

    def output_bytes(self) -> int:
        return (self.batch * self.out_cols * self.kernel_size
                * self.kernel_size * self.channels * WORD)

    @classmethod
    def paper_case_study(cls) -> "Im2Col":
        """The exact problem of case study 1 (24×24, 6 channels,
        batch 640)."""
        return cls(image_width=24, image_height=24, channels=6, batch=640)

    @classmethod
    def scaled(cls, batch: int = 32) -> "Im2Col":
        """A smaller batch with identical per-image behaviour."""
        return cls(image_width=24, image_height=24, channels=6,
                   batch=batch)
