"""FIR — Finite Impulse Response filter (HeteroMark).

The benchmark used for the user study's warm-up task and the workload
with the highest monitoring overhead in Figure 7 (3.7%), because its
kernels are short relative to the monitoring epoch.

Access pattern: pure streaming.  Each output element reads ``num_taps``
consecutive inputs (high line reuse between neighbouring elements) and
writes one output.  One wavefront covers a contiguous chunk.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.kernel import KernelDescriptor
from ..gpu.mem import CACHE_LINE_SIZE
from .base import WORD, Workload


@dataclass
class FIR(Workload):
    """1-D FIR filter over ``num_samples`` fp32 samples."""

    num_samples: int = 65536
    num_taps: int = 16
    wavefronts_per_wg: int = 4
    elements_per_wavefront: int = 64

    name = "fir"

    def __post_init__(self) -> None:
        if self.num_samples <= 0 or self.num_taps <= 0:
            raise ValueError("FIR needs positive sizes")
        self._in_base = 0
        self._coeff_base = self.num_samples * WORD
        self._out_base = self._coeff_base + self.num_taps * WORD

    @property
    def num_workgroups(self) -> int:
        per_wg = self.wavefronts_per_wg * self.elements_per_wavefront
        return max(1, (self.num_samples + per_wg - 1) // per_wg)

    def kernel(self) -> KernelDescriptor:
        elems = self.elements_per_wavefront
        wfs = self.wavefronts_per_wg
        taps = self.num_taps
        in_base, coeff_base, out_base = (self._in_base, self._coeff_base,
                                         self._out_base)
        elems_per_line = CACHE_LINE_SIZE // WORD

        def program(wg: int, wf: int):
            start = (wg * wfs + wf) * elems
            # Coefficients are tiny, shared and hot: scalar path.
            yield ("sload", coeff_base, taps * WORD)
            for e in range(0, elems, elems_per_line):
                # The input window for a line of outputs: the line itself
                # plus the tap overhang into the next line.
                addr = in_base + (start + e) * WORD
                yield ("load", addr, CACHE_LINE_SIZE)
                yield ("load", addr + CACHE_LINE_SIZE, CACHE_LINE_SIZE)
                yield ("compute", taps // 2)
                yield ("store", out_base + (start + e) * WORD,
                       CACHE_LINE_SIZE)

        return KernelDescriptor(self.name, self.num_workgroups,
                                self.wavefronts_per_wg, program)

    def input_bytes(self) -> int:
        return (self.num_samples + self.num_taps) * WORD

    def output_bytes(self) -> int:
        return self.num_samples * WORD
