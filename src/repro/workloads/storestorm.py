"""StoreStorm — a synthetic diagnostic workload.

Not one of the paper's six benchmarks: this is the write-heavy,
set-conflicting store pattern that deterministically triggers the L2
write-buffer deadlock of case study 2 on a bug-enabled platform
(``l2_write_buffer_bug=True`` with tight write-buffer capacities).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.kernel import KernelDescriptor
from ..gpu.platform import GPUPlatformConfig
from .base import Workload


@dataclass
class StoreStorm(Workload):
    """Conflicting store storm aimed at a small L2."""

    num_workgroups: int = 16
    wavefronts_per_wg: int = 4
    stores_per_wavefront: int = 96
    stride: int = 512
    #: When > 0, remap every store to a page owned by chiplet
    #: ``wg % page_locality`` — with ``page_locality == num_chiplets``
    #: each workgroup stores only to its own chiplet's memory (the
    #: driver places wg *i* on chiplet ``i % num_chiplets``).  The
    #: default 0 keeps the original pattern, whose ~(C-1)/C remote
    #: stores hammer the RDMA/switch path.
    page_locality: int = 0

    name = "storestorm"

    def kernel(self) -> KernelDescriptor:
        n = self.stores_per_wavefront
        stride = self.stride
        locality = self.page_locality

        def program(wg: int, wf: int):
            for i in range(n):
                addr = ((wg * 31 + wf * 17 + i * 3) * stride) % (1 << 22)
                if locality:
                    page = addr // 4096
                    page = page - page % locality + wg % locality
                    addr = page * 4096 + addr % 4096
                yield ("store", addr, 4)

        return KernelDescriptor(self.name, self.num_workgroups,
                                self.wavefronts_per_wg, program)

    def input_bytes(self) -> int:
        return 0

    def output_bytes(self) -> int:
        return 0

    @staticmethod
    def trigger_config(buggy: bool = True) -> GPUPlatformConfig:
        """The platform configuration under which this workload
        reliably deadlocks a bug-enabled L2 write buffer (and completes
        on the patched one)."""
        return GPUPlatformConfig.small(
            num_chiplets=1, l2_write_buffer_bug=buggy,
            l2_size_bytes=1024, l2_ways=2, wb_queue_capacity=2,
            wb_in_buf=1, wb_width=1, l2_storage_buf=1,
            dram_latency_cycles=20, max_outstanding_per_wf=16)
