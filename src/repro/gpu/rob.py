"""The L1 vector reorder buffer (L1VROB).

Sits between a compute unit and the address translator.  Responses from
the memory system may return out of order (cache hits overtake misses);
the ROB retires them back to the CU in issue order.

Observables that matter to the paper:

* ``TopPort.Buf`` — capacity 8 by default; the buffer that shows up
  pinned at 8/8 in Figure 3 and Figure 5(c) when the downstream memory
  system cannot keep up.
* ``transactions`` — the in-flight entries inside the ROB itself, the
  value that fluctuates between ~70 and ~130 in Figure 5(d) (capacity
  128 by default, not the limiting resource).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..akita.component import TickingComponent
from ..akita.engine import Engine
from ..akita.port import Port
from ..akita.ticker import GHZ
from .mem import DataReadyRsp, MemReq, MemRsp, ReadReq, WriteDoneRsp, WriteReq


class _ROBEntry:
    """One in-flight request: original message, forwarded copy, and the
    response once it arrived."""

    __slots__ = ("original", "forwarded", "done")

    def __init__(self, original: MemReq):
        self.original = original
        self.forwarded: Optional[MemReq] = None
        self.done = False


class ReorderBuffer(TickingComponent):
    """In-order retirement buffer in front of the L1 pipeline."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 capacity: int = 128, top_buf: int = 8, bottom_buf: int = 4,
                 width: int = 4):
        super().__init__(name, engine, freq)
        self.capacity = capacity
        self.width = width
        self.top_port = self.add_port("TopPort", top_buf)
        self.bottom_port = self.add_port("BottomPort", bottom_buf)
        self.down_port: Optional[Port] = None  # address translator's top
        self.transactions: List[_ROBEntry] = []
        self._by_forwarded_id: Dict[int, _ROBEntry] = {}
        self.num_retired = 0

    def connect_down(self, down_port: Port) -> None:
        """Point the ROB at the component that drains it."""
        self.down_port = down_port

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of in-flight transactions (monitored value)."""
        return len(self.transactions)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        progress |= self._retire()
        progress |= self._process_responses()
        progress |= self._accept_and_forward()
        return progress

    def _accept_and_forward(self) -> bool:
        """Consume a top-buffer request only when it can be forwarded
        downstream in the same cycle (as MGPUSim's ROB does).

        This admission gating is what makes ``TopPort.Buf`` pin at 8/8
        when the memory system below is the bottleneck (Figure 5(c)),
        while the ROB's own transaction count stays below capacity.
        """
        assert self.down_port is not None, f"{self.name} not wired"
        progress = False
        for _ in range(self.width):
            if len(self.transactions) >= self.capacity:
                break
            msg = self.top_port.peek_incoming()
            if not isinstance(msg, MemReq):
                break
            if isinstance(msg, ReadReq):
                fwd: MemReq = ReadReq(self.down_port, msg.address,
                                      msg.access_bytes, msg.pid)
            else:
                fwd = WriteReq(self.down_port, msg.address,
                               msg.access_bytes, msg.pid)
            if not self.bottom_port.send(fwd):
                break  # downstream full: requests pile up in TopPort.Buf
            self.top_port.retrieve_incoming()
            entry = _ROBEntry(msg)
            entry.forwarded = fwd
            self.transactions.append(entry)
            self._by_forwarded_id[fwd.id] = entry
            progress = True
        return progress

    def _process_responses(self) -> bool:
        progress = False
        for _ in range(self.width):
            msg = self.bottom_port.peek_incoming()
            if not isinstance(msg, MemRsp):
                break
            entry = self._by_forwarded_id.get(msg.respond_to)
            if entry is None:  # response to a dropped transaction: discard
                self.bottom_port.retrieve_incoming()
                continue
            self.bottom_port.retrieve_incoming()
            del self._by_forwarded_id[msg.respond_to]
            entry.done = True
            progress = True
        return progress

    def _retire(self) -> bool:
        """Answer the CU for completed head-of-queue transactions."""
        progress = False
        for _ in range(self.width):
            if not self.transactions or not self.transactions[0].done:
                break
            entry = self.transactions[0]
            req = entry.original
            assert req.src is not None
            if isinstance(req, ReadReq):
                rsp: MemRsp = DataReadyRsp(req.src, req.id,
                                           req.access_bytes)
            else:
                rsp = WriteDoneRsp(req.src, req.id)
            if not self.top_port.send(rsp):
                break
            self.transactions.pop(0)
            self.num_retired += 1
            progress = True
        return progress
