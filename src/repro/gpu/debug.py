"""A scriptable step debugger for ticking components.

Case study 2 pairs AkitaRTM with a GDB-style debugger (Delve): set a
breakpoint on a component's ``Tick`` function, wake the component from
the monitor, and step through to see which send cannot proceed.  This
module is the programmatic equivalent for this simulator: it wraps a
component's :meth:`tick`, records a state snapshot around every
invocation, and can drive the engine one tick at a time.

Typical hang-debugging flow::

    stepper = TickStepper(l2)
    record = stepper.step()          # wake + run exactly one tick
    print(record.made_progress)      # False: the component is stuck
    print(record.blocked_on)         # "send eviction to write buffer..."
    print(record.buffer_deltas)      # {} — nothing moved
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..akita.component import TickingComponent
from .mem import CACHE_LINE_SIZE  # noqa: F401  (re-export convenience)


@dataclass
class TickRecord:
    """Observation of one stepped tick."""

    time: float
    made_progress: bool
    blocked_on: Optional[str]
    #: port buffer name -> (size before, size after)
    buffer_levels: Dict[str, tuple] = field(default_factory=dict)

    @property
    def buffer_deltas(self) -> Dict[str, int]:
        """Buffers whose occupancy changed during the tick."""
        return {name: after - before
                for name, (before, after) in self.buffer_levels.items()
                if after != before}


class TickStepper:
    """Breakpoint-on-Tick for one component."""

    def __init__(self, component: TickingComponent,
                 on_tick: Optional[Callable[[TickRecord], None]] = None):
        """
        Parameters
        ----------
        component:
            The (possibly sleeping) component to step.
        on_tick:
            Optional callback invoked with each :class:`TickRecord`
            (the "breakpoint body").
        """
        self.component = component
        self.on_tick = on_tick
        self.records: List[TickRecord] = []
        self._original_tick = component.tick
        self._installed = False

    # -- breakpoint installation ------------------------------------------
    def install(self) -> None:
        """Wrap the component's tick (set the breakpoint).  Idempotent."""
        if self._installed:
            return

        def traced_tick() -> bool:
            before = {p.buf.name: p.buf.size
                      for p in self.component.ports}
            progress = self._original_tick()
            record = TickRecord(
                time=self.component.engine.now,
                made_progress=progress,
                blocked_on=getattr(self.component, "blocked_on", None),
                buffer_levels={
                    name: (before[name], p.buf.size)
                    for name, p in zip(before,
                                       self.component.ports)},
            )
            self.records.append(record)
            if self.on_tick is not None:
                self.on_tick(record)
            return progress

        self.component.tick = traced_tick  # type: ignore[method-assign]
        self._installed = True

    def uninstall(self) -> None:
        """Remove the breakpoint, restoring class-level tick lookup."""
        if self._installed:
            self.component.__dict__.pop("tick", None)
            self._installed = False

    def __enter__(self) -> "TickStepper":
        self.install()
        return self

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # -- stepping -----------------------------------------------------------
    def step(self, ticks: int = 1,
             max_virtual_time: float = 1e-3) -> TickRecord:
        """Wake the component and run the engine until it has ticked
        *ticks* more times (the paper's Tick-button + line-step loop).

        Returns the last record.  Works on a dry (hung) engine: the
        injected tick event is exactly what the *Kick Start* button
        replays.
        """
        self.install()
        engine = self.component.engine
        target = len(self.records) + ticks
        deadline = engine.now + max_virtual_time
        while len(self.records) < target:
            self.component.tick_later()
            next_time = min(self.component._next_scheduled or deadline,
                            deadline)
            engine.run_until(next_time)
            if engine.now >= deadline:
                raise TimeoutError(
                    f"{self.component.name} did not tick within "
                    f"{max_virtual_time}s of virtual time")
        return self.records[-1]

    # -- analysis ------------------------------------------------------------
    @property
    def stuck(self) -> bool:
        """True if the last stepped tick made no progress."""
        return bool(self.records) and not self.records[-1].made_progress

    def diagnosis(self) -> Optional[str]:
        """The most recent block reason observed, if any."""
        for record in reversed(self.records):
            if record.blocked_on:
                return record.blocked_on
        return None
