"""The L1 vector address translator (L1VAddrTrans).

Translates virtual to physical addresses with a small TLB.  TLB hits
take one cycle; misses pay a fixed page-walk penalty (the walk itself is
modelled as latency — see DESIGN.md's substitution table).

Its monitored ``transactions`` count shows the paper's Figure 5(d)
behaviour: bursts when a wave of requests arrives, draining quickly —
the signature of a component that is *not* the bottleneck.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..akita.component import TickingComponent
from ..akita.engine import Engine
from ..akita.port import Port
from ..akita.ticker import GHZ
from .mem import MemReq, MemRsp, DataReadyRsp, ReadReq, WriteDoneRsp, WriteReq
from .tlb import TLB


class AddressTranslator(TickingComponent):
    """A pipelined translation stage between the ROB and the L1 cache."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 top_buf: int = 4, bottom_buf: int = 4,
                 tlb_capacity: int = 64, hit_latency: int = 1,
                 miss_latency: int = 20, width: int = 4,
                 max_inflight: int = 64):
        super().__init__(name, engine, freq)
        self.top_port = self.add_port("TopPort", top_buf)
        self.bottom_port = self.add_port("BottomPort", bottom_buf)
        self.down_port: Optional[Port] = None
        self.tlb = TLB(tlb_capacity)
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self.width = width
        self.max_inflight = max_inflight
        # (ready_time, seq, request) — requests whose translation is in
        # flight inside the translator pipeline.
        self._pipeline: List[Tuple[float, int, MemReq]] = []
        self._seq = 0
        # forwarded request id -> original request
        self._pending_down: Dict[int, MemReq] = {}
        self.num_translated = 0

    def connect_down(self, down_port: Port) -> None:
        self.down_port = down_port

    # ------------------------------------------------------------------
    @property
    def transactions(self) -> int:
        """Requests actively being translated (monitored value).

        Deliberately excludes requests already forwarded to the L1 and
        awaiting a response — those belong to the cache's accounting.
        This is what gives the translator its paper signature of short
        spikes that drain quickly (Figure 5(d)): translation itself is
        never the bottleneck.
        """
        return len(self._pipeline)

    @property
    def inflight_below(self) -> int:
        """Requests forwarded downstream and awaiting a response."""
        return len(self._pending_down)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        progress |= self._respond_up()
        progress |= self._drain_pipeline()
        progress |= self._accept()
        if (self._pipeline and not progress
                and self._pipeline[0][0] > self.engine.now + 1e-15):
            # Nothing to do until the head translation completes; a
            # ready-but-blocked head waits for a notify_available wake.
            self.tick_at(self._pipeline[0][0])
        return progress

    def _accept(self) -> bool:
        progress = False
        for _ in range(self.width):
            # Only the translation pipeline is a held resource; requests
            # already forwarded to the cache below are its problem, not
            # ours (the table entry is pure bookkeeping for the reply).
            if len(self._pipeline) >= self.max_inflight:
                break
            msg = self.top_port.peek_incoming()
            if not isinstance(msg, MemReq):
                break
            self.top_port.retrieve_incoming()
            if self.tlb.lookup(msg.address):
                latency = self.hit_latency
            else:
                latency = self.miss_latency
                self.tlb.fill(msg.address)
            ready = self.engine.now + latency / self.freq
            heapq.heappush(self._pipeline, (ready, self._seq, msg))
            self._seq += 1
            progress = True
        return progress

    def _drain_pipeline(self) -> bool:
        """Forward translated requests downstream (identity mapping: the
        timing model does not relocate pages)."""
        assert self.down_port is not None, f"{self.name} not wired"
        progress = False
        now = self.engine.now
        for _ in range(self.width):
            if not self._pipeline or self._pipeline[0][0] > now + 1e-15:
                break
            _, __, req = self._pipeline[0]
            if isinstance(req, ReadReq):
                fwd: MemReq = ReadReq(self.down_port, req.address,
                                      req.access_bytes, req.pid)
            else:
                fwd = WriteReq(self.down_port, req.address,
                               req.access_bytes, req.pid)
            if not self.bottom_port.send(fwd):
                break
            heapq.heappop(self._pipeline)
            self._pending_down[fwd.id] = req
            self.num_translated += 1
            progress = True
        return progress

    def _respond_up(self) -> bool:
        progress = False
        for _ in range(self.width):
            msg = self.bottom_port.peek_incoming()
            if not isinstance(msg, MemRsp):
                break
            original = self._pending_down.get(msg.respond_to)
            if original is None:
                self.bottom_port.retrieve_incoming()
                continue
            assert original.src is not None
            if isinstance(msg, DataReadyRsp):
                rsp: MemRsp = DataReadyRsp(original.src, original.id,
                                           original.access_bytes)
            else:
                rsp = WriteDoneRsp(original.src, original.id)
            if not self.top_port.send(rsp):
                break
            self.bottom_port.retrieve_incoming()
            del self._pending_down[msg.respond_to]
            progress = True
        return progress
