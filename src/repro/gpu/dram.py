"""A simple banked DRAM controller.

Fixed access latency plus a service-rate limit (requests per cycle).
Requests queue behind each other when the bank is saturated, so a full
DRAM controller buffer is a legitimate bottleneck signal for the
analyzer (and DRAM controllers appear among the non-empty buffers in
case study 2's hang snapshot).
"""

from __future__ import annotations

from typing import List, Tuple

from ..akita.component import TickingComponent
from ..akita.engine import Engine
from ..akita.ticker import GHZ
from .mem import DataReadyRsp, MemReq, ReadReq, WriteDoneRsp


class DRAMController(TickingComponent):
    """One DRAM channel with fixed latency and bounded throughput."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 latency_cycles: int = 100, requests_per_cycle: int = 1,
                 top_buf: int = 16, queue_capacity: int = 64):
        super().__init__(name, engine, freq)
        self.top_port = self.add_port("TopPort", top_buf)
        self.latency_cycles = latency_cycles
        self.requests_per_cycle = requests_per_cycle
        self.queue_capacity = queue_capacity
        # (ready_time, request) in arrival order; ready times are
        # monotonic because latency is constant.
        self._inflight: List[Tuple[float, MemReq]] = []
        self.num_reads = 0
        self.num_writes = 0

    # ------------------------------------------------------------------
    @property
    def transactions(self) -> int:
        """Requests being serviced (monitored value)."""
        return len(self._inflight)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        progress |= self._respond_ready()
        progress |= self._accept()
        if (self._inflight and not progress
                and self._inflight[0][0] > self.engine.now + 1e-15):
            # Head not ready yet: wake when it is.  A head that is ready
            # but blocked sleeps instead; freed buffer space upstream
            # wakes us via notify_available.
            self.tick_at(self._inflight[0][0])
        return progress

    def _accept(self) -> bool:
        progress = False
        for _ in range(self.requests_per_cycle):
            if len(self._inflight) >= self.queue_capacity:
                break
            msg = self.top_port.peek_incoming()
            if not isinstance(msg, MemReq):
                break
            self.top_port.retrieve_incoming()
            ready = self.engine.now + self.latency_cycles / self.freq
            self._inflight.append((ready, msg))
            progress = True
        return progress

    def _respond_ready(self) -> bool:
        progress = False
        now = self.engine.now
        for _ in range(self.requests_per_cycle):
            if not self._inflight or self._inflight[0][0] > now + 1e-15:
                break
            _, req = self._inflight[0]
            assert req.src is not None
            if isinstance(req, ReadReq):
                rsp = DataReadyRsp(req.src, req.id, req.access_bytes)
            else:
                rsp = WriteDoneRsp(req.src, req.id)
            if not self.top_port.send(rsp):
                break
            self._inflight.pop(0)
            if isinstance(req, ReadReq):
                self.num_reads += 1
            else:
                self.num_writes += 1
            progress = True
        return progress
