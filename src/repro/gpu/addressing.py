"""Global address space layout for multi-chiplet GPUs.

Pages of global memory are interleaved round-robin across chiplets, as in
MCM-GPU-style designs: page *p* lives on chiplet ``p % num_chiplets``.
An access from chiplet *i* to a page owned by chiplet *j ≠ i* misses L1
and is routed through chiplet *i*'s RDMA engine — the traffic pattern
behind case study 1's RDMA bottleneck.

Within a chiplet, cache lines are interleaved across L2/DRAM banks.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mem import CACHE_LINE_SIZE


@dataclass(frozen=True)
class AddressMapper:
    """Pure address-arithmetic helper shared by caches, RDMA and DRAM."""

    num_chiplets: int
    banks_per_chiplet: int = 1
    page_bytes: int = 4096

    def chiplet_of(self, addr: int) -> int:
        """Chiplet that owns the page containing *addr*."""
        return (addr // self.page_bytes) % self.num_chiplets

    def is_local(self, addr: int, chiplet_id: int) -> bool:
        return self.chiplet_of(addr) == chiplet_id

    def bank_of(self, addr: int) -> int:
        """L2/DRAM bank (within the owning chiplet) for *addr*."""
        return (addr // CACHE_LINE_SIZE) % self.banks_per_chiplet

    def page_of(self, addr: int) -> int:
        return addr // self.page_bytes

    def page_base(self, addr: int) -> int:
        return (addr // self.page_bytes) * self.page_bytes
