"""Memory-system message types.

The GPU memory hierarchy (CU → ROB → address translator → L1 → {L2 |
RDMA} → DRAM) communicates exclusively with these messages.  This is a
*timing* model: requests carry addresses and sizes but no data values,
which is all the monitoring tool (and the paper's analyses) ever look at.

Every forwarding component keeps its own transaction table mapping the
requests it sent downstream to the requests it received from upstream,
and answers upstream when the downstream response arrives — exactly the
structure that makes "number of transactions in component X" a meaningful
monitored value in the paper's Figure 5.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..akita.message import Msg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..akita.port import Port

#: Cache line size in bytes, shared by L1, L2 and DRAM models.
CACHE_LINE_SIZE = 64


def line_address(addr: int) -> int:
    """Align *addr* down to its cache-line base address."""
    return addr & ~(CACHE_LINE_SIZE - 1)


class MemReq(Msg):
    """Base class of read/write requests."""

    __slots__ = ("address", "access_bytes", "pid")

    def __init__(self, dst: "Port", address: int, access_bytes: int,
                 pid: int = 0):
        super().__init__(dst, size_bytes=16)
        self.address = int(address)
        self.access_bytes = int(access_bytes)
        self.pid = pid

    @property
    def line_addr(self) -> int:
        return line_address(self.address)


class ReadReq(MemReq):
    """Read *access_bytes* from *address*."""

    __slots__ = ()


class WriteReq(MemReq):
    """Write *access_bytes* at *address*.

    The request message itself carries the data on the wire, so its wire
    size includes the payload.
    """

    __slots__ = ()

    def __init__(self, dst: "Port", address: int, access_bytes: int,
                 pid: int = 0):
        super().__init__(dst, address, access_bytes, pid)
        self.size_bytes = 16 + access_bytes


class MemRsp(Msg):
    """Base class of responses; ties back to the request via ``respond_to``."""

    __slots__ = ("respond_to",)

    def __init__(self, dst: "Port", respond_to: int, size_bytes: int):
        super().__init__(dst, size_bytes)
        self.respond_to = respond_to  # id of the request being answered


class DataReadyRsp(MemRsp):
    """Read data coming back up the hierarchy."""

    __slots__ = ()

    def __init__(self, dst: "Port", respond_to: int,
                 data_bytes: int = CACHE_LINE_SIZE):
        super().__init__(dst, respond_to, size_bytes=16 + data_bytes)


class WriteDoneRsp(MemRsp):
    """Write acknowledgement."""

    __slots__ = ()

    def __init__(self, dst: "Port", respond_to: int):
        super().__init__(dst, respond_to, size_bytes=16)


class EvictionReq(Msg):
    """A dirty line travelling from a cache's storage to its write buffer."""

    __slots__ = ("address",)

    def __init__(self, dst: "Port", address: int):
        super().__init__(dst, size_bytes=16 + CACHE_LINE_SIZE)
        self.address = int(address)


class FetchedData(Msg):
    """A line fetched from DRAM travelling write-buffer → cache storage."""

    __slots__ = ("address", "respond_to")

    def __init__(self, dst: "Port", address: int, respond_to: int):
        super().__init__(dst, size_bytes=16 + CACHE_LINE_SIZE)
        self.address = int(address)
        self.respond_to = respond_to


class NetMsg(Msg):
    """Envelope for payloads crossing the inter-chiplet network.

    The switch re-addresses the envelope to ``final_dst`` (the remote
    RDMA engine's network port); the receiving RDMA unwraps ``payload``
    and uses ``origin`` as the return address for responses.
    """

    __slots__ = ("payload", "final_dst", "origin")

    def __init__(self, dst: "Port", payload: Msg, final_dst: "Port",
                 origin: "Port"):
        super().__init__(dst, size_bytes=payload.size_bytes + 8)
        self.payload = payload
        self.final_dst = final_dst
        self.origin = origin
