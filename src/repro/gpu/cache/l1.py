"""The per-CU L1 vector cache (L1VCache).

A write-through, no-write-allocate cache with a 16-entry MSHR (the R9
Nano default the paper's case study observes).  Misses to pages owned by
the local chiplet go to the local L2 bank; misses to remote pages go to
the chiplet's RDMA engine — routing is injected by the platform builder
via :meth:`L1VCache.set_route`.

Monitored behaviour reproduced here: when the downstream system is slow,
the in-flight ``transactions`` count pins at the MSHR capacity (Figure
5(d)), which in turn backs up the address translator and the ROB above.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ...akita.component import TickingComponent
from ...akita.engine import Engine
from ...akita.port import Port
from ...akita.ticker import GHZ
from ..mem import (
    CACHE_LINE_SIZE,
    DataReadyRsp,
    MemReq,
    MemRsp,
    ReadReq,
    WriteDoneRsp,
    WriteReq,
)
from .mshr import MSHR
from .tags import SetAssocTags

#: Route function: physical address -> destination port (L2 bank or RDMA).
RouteFn = Callable[[int], Port]


class L1VCache(TickingComponent):
    """Per-CU vector data cache."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 size_bytes: int = 16 * 1024, ways: int = 4,
                 mshr_capacity: int = 16, hit_latency: int = 1,
                 top_buf: int = 4, bottom_buf: int = 8, width: int = 4):
        super().__init__(name, engine, freq)
        self.top_port = self.add_port("TopPort", top_buf)
        self.bottom_port = self.add_port("BottomPort", bottom_buf)
        self.tags = SetAssocTags(size_bytes, ways)
        self.mshr = MSHR(mshr_capacity)
        self.hit_latency = hit_latency
        self.width = width
        self._route: Optional[RouteFn] = None
        # forwarded fetch/write id -> MSHR key
        self._pending_down: Dict[int, object] = {}
        # (ready_time, seq, response) for hit-latency modelling
        self._respond_queue: List[Tuple[float, int, MemRsp]] = []
        self._seq = 0
        self.num_reads = 0
        self.num_writes = 0

    def set_route(self, route: RouteFn) -> None:
        """Install the address → downstream-port routing function."""
        self._route = route

    # ------------------------------------------------------------------
    @property
    def transactions(self) -> int:
        """In-flight transactions — pins at MSHR capacity when the
        downstream memory system is the bottleneck."""
        return self.mshr.size

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        progress |= self._send_responses()
        progress |= self._process_bottom()
        progress |= self._issue_pending_fetches()
        progress |= self._process_top()
        if (self._respond_queue and not progress
                and self._respond_queue[0][0] > self.engine.now + 1e-15):
            # Head response not ready yet; ready-but-blocked responses
            # wait for a notify_available wake instead of busy-polling.
            self.tick_at(self._respond_queue[0][0])
        return progress

    # -- upstream request handling ------------------------------------------
    def _process_top(self) -> bool:
        progress = False
        for _ in range(self.width):
            msg = self.top_port.peek_incoming()
            if not isinstance(msg, MemReq):
                break
            if isinstance(msg, ReadReq):
                if not self._handle_read(msg):
                    break
            else:
                assert isinstance(msg, WriteReq)
                if not self._handle_write(msg):
                    break
            progress = True
        return progress

    def _handle_read(self, req: ReadReq) -> bool:
        """Returns True if the request was consumed from the top buffer."""
        line = req.line_addr
        if self.tags.lookup(line):
            self.top_port.retrieve_incoming()
            self.num_reads += 1
            pending = self.mshr.lookup(line)
            if pending is not None:
                # Line is being fetched (eager-fill mode): coalesce.
                pending.waiting.append(req)
            else:
                self._queue_response(
                    DataReadyRsp(req.src, req.id, req.access_bytes))
            return True
        entry = self.mshr.lookup(line)
        if entry is not None:  # coalesce with in-flight fetch
            self.top_port.retrieve_incoming()
            self.num_reads += 1
            entry.waiting.append(req)
            return True
        if self.mshr.full:
            return False  # stall: this is the "pinned at 16" state
        self.top_port.retrieve_incoming()
        self.num_reads += 1
        entry = self.mshr.allocate(line)
        entry.waiting.append(req)
        if self._hooks:
            self.task_begin(line, "cache_miss", f"read@{line:#x}")
        self._try_send_fetch(entry)
        return True

    def _handle_write(self, req: WriteReq) -> bool:
        if self.mshr.full:
            return False
        self.top_port.retrieve_incoming()
        self.num_writes += 1
        key = ("w", req.id)
        entry = self.mshr.allocate(key)
        entry.waiting.append(req)
        if self._hooks:
            self.task_begin(key, "cache_miss", f"write@{req.address:#x}")
        self._try_send_write(entry)
        return True

    # -- downstream traffic ---------------------------------------------------
    def _issue_pending_fetches(self) -> bool:
        """Retry fetches/writes that could not be sent earlier."""
        progress = False
        for entry in self.mshr.entries:
            if entry.fetch_sent:
                continue
            if isinstance(entry.key, tuple):
                sent = self._try_send_write(entry)
            else:
                sent = self._try_send_fetch(entry)
            progress |= sent
            if not sent:
                break
        return progress

    def _try_send_fetch(self, entry) -> bool:
        assert self._route is not None, f"{self.name} has no route"
        dst = self._route(entry.key)
        fetch = ReadReq(dst, entry.key, CACHE_LINE_SIZE)
        if not self.bottom_port.send(fetch):
            return False
        entry.fetch_sent = True
        self._pending_down[fetch.id] = entry.key
        return True

    def _try_send_write(self, entry) -> bool:
        assert self._route is not None, f"{self.name} has no route"
        req: WriteReq = entry.waiting[0]
        dst = self._route(req.address)
        fwd = WriteReq(dst, req.address, req.access_bytes, req.pid)
        if not self.bottom_port.send(fwd):
            return False
        entry.fetch_sent = True
        self._pending_down[fwd.id] = entry.key
        return True

    def _process_bottom(self) -> bool:
        progress = False
        for _ in range(self.width):
            msg = self.bottom_port.peek_incoming()
            if not isinstance(msg, MemRsp):
                break
            key = self._pending_down.get(msg.respond_to)
            if key is None:
                self.bottom_port.retrieve_incoming()
                continue
            self.bottom_port.retrieve_incoming()
            del self._pending_down[msg.respond_to]
            entry = self.mshr.release(key)
            if self._hooks:
                self.task_end(key, "cache_miss")
            if isinstance(msg, DataReadyRsp):
                self.tags.fill(entry.key)  # write-through: victims clean
                for waiting in entry.waiting:
                    self._queue_response(DataReadyRsp(
                        waiting.src, waiting.id, waiting.access_bytes))
            else:
                original = entry.waiting[0]
                self._queue_response(WriteDoneRsp(original.src, original.id))
            progress = True
        return progress

    # -- responses -------------------------------------------------------------
    def _queue_response(self, rsp: MemRsp) -> None:
        ready = self.engine.now + self.hit_latency / self.freq
        heapq.heappush(self._respond_queue, (ready, self._seq, rsp))
        self._seq += 1

    def _send_responses(self) -> bool:
        progress = False
        now = self.engine.now
        for _ in range(self.width):
            if (not self._respond_queue
                    or self._respond_queue[0][0] > now + 1e-15):
                break
            rsp = self._respond_queue[0][2]
            if not self.top_port.send(rsp):
                break
            heapq.heappop(self._respond_queue)
            progress = True
        return progress
