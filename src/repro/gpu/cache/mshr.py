"""Miss Status Holding Registers.

An MSHR entry tracks one outstanding cache-line fetch (keyed by line address); requests to a line
that is already being fetched *coalesce* onto the existing entry instead
of issuing a second fetch.  A full MSHR is the canonical reason an L1
cache stops accepting requests — the paper's Figure 5 shows the L1
transaction count pinned at the MSHR capacity (16) when this happens.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...akita.errors import BufferError_, ConfigurationError


class MSHREntry:
    """One outstanding line fetch and the requests waiting on it."""

    __slots__ = ("key", "waiting", "fetch_sent")

    def __init__(self, key: int):
        self.key = key
        self.waiting: List[object] = []   # upstream requests to answer
        self.fetch_sent = False           # downstream fetch issued yet?


class MSHR:
    """A bank of miss-status holding registers."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigurationError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}

    # -- queries -----------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, key: int) -> Optional[MSHREntry]:
        return self._entries.get(key)

    @property
    def entries(self) -> List[MSHREntry]:
        return list(self._entries.values())

    # -- mutation ------------------------------------------------------------
    def allocate(self, key: int) -> MSHREntry:
        """Create an entry for *key*.

        Raises
        ------
        BufferError_
            If the MSHR is full or the line already has an entry (callers
            must coalesce via :meth:`lookup` first).
        """
        if self.full:
            raise BufferError_("MSHR full")
        if key in self._entries:
            raise BufferError_(f"duplicate MSHR entry for {key!r}")
        entry = MSHREntry(key)
        self._entries[key] = entry
        return entry

    def release(self, key: int) -> MSHREntry:
        """Remove and return the entry for *key* (fetch completed)."""
        return self._entries.pop(key)
