"""The per-chiplet L2 cache bank.

A write-back, write-allocate cache.  All DRAM traffic — miss fetches,
dirty-line evictions, and returning fill data — flows through the bank's
:class:`~repro.gpu.cache.writebuffer.WriteBuffer`.

Two variants (paper case study 2):

* ``buggy=True`` — the original MGPUSim behaviour: the victim of a fill
  is evicted *when the fill arrives* (lazy eviction).  If the eviction
  cannot be handed to the write buffer, the bank stops draining its
  StoragePort, closing the deadlock cycle described in
  :mod:`repro.gpu.cache.writebuffer`.
* ``buggy=False`` — the patched behaviour: the victim is evicted *when
  the miss is issued* (eager eviction), so an arriving fill always has a
  free way and the StoragePort always drains.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ...akita.component import TickingComponent
from ...akita.engine import Engine
from ...akita.ticker import GHZ
from ..mem import (
    CACHE_LINE_SIZE,
    DataReadyRsp,
    EvictionReq,
    FetchedData,
    MemReq,
    MemRsp,
    ReadReq,
    WriteDoneRsp,
    WriteReq,
)
from .mshr import MSHR
from .tags import SetAssocTags


class L2Cache(TickingComponent):
    """One bank of the chiplet-shared L2."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 size_bytes: int = 256 * 1024, ways: int = 8,
                 mshr_capacity: int = 32, hit_latency: int = 4,
                 top_buf: int = 16, storage_buf: int = 4, wb_buf: int = 4,
                 eviction_staging: int = 1, width: int = 4,
                 buggy: bool = False):
        super().__init__(name, engine, freq)
        self.top_port = self.add_port("TopPort", top_buf)
        self.storage_port = self.add_port("StoragePort", storage_buf)
        self.wb_port = self.add_port("ToWB", wb_buf)
        self.tags = SetAssocTags(size_bytes, ways)
        self.mshr = MSHR(mshr_capacity)
        self.hit_latency = hit_latency
        self.width = width
        self.buggy = buggy
        self.eviction_staging_capacity = eviction_staging
        self.eviction_staging: List[int] = []  # victim line addresses
        self._wb_in_port = None  # WriteBuffer.InPort, set by connect()
        self._respond_queue: List[Tuple[float, int, MemRsp]] = []
        self._seq = 0
        self.num_reads = 0
        self.num_writes = 0
        self.blocked_on: Optional[str] = None  # diagnosis aid (RTM-visible)

    def connect_write_buffer(self, wb_in_port) -> None:
        self._wb_in_port = wb_in_port

    # ------------------------------------------------------------------
    @property
    def transactions(self) -> int:
        """Outstanding misses (monitored value)."""
        return self.mshr.size

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        progress |= self._drain_eviction_staging()
        progress |= self._send_responses()
        progress |= self._process_fills()
        progress |= self._issue_pending_fetches()
        progress |= self._process_top()
        if (self._respond_queue and not progress
                and self._respond_queue[0][0] > self.engine.now + 1e-15):
            # Head response not ready yet; ready-but-blocked responses
            # wait for a notify_available wake instead of busy-polling.
            self.tick_at(self._respond_queue[0][0])
        return progress

    # -- eviction path -----------------------------------------------------
    def _drain_eviction_staging(self) -> bool:
        progress = False
        while self.eviction_staging:
            victim = self.eviction_staging[0]
            eviction = EvictionReq(self._wb_in_port, victim)
            if not self.wb_port.send(eviction):
                self.blocked_on = ("send eviction to write buffer "
                                   "(InPort full)")
                break
            self.eviction_staging.pop(0)
            self.blocked_on = None
            progress = True
        return progress

    def _stage_eviction(self, victim_addr: int) -> None:
        self.eviction_staging.append(victim_addr)

    def _staging_has_room(self) -> bool:
        return len(self.eviction_staging) < self.eviction_staging_capacity

    # -- fill path ------------------------------------------------------------
    def _process_fills(self) -> bool:
        progress = False
        for _ in range(self.width):
            msg = self.storage_port.peek_incoming()
            if not isinstance(msg, FetchedData):
                break
            if self.buggy:
                # Lazy eviction: a fill may displace a dirty victim, so
                # the bank refuses the fill until staging has room.
                # This is one half of the deadlock cycle.
                if not self._staging_has_room():
                    self.blocked_on = ("accept fetched data "
                                       "(eviction staging full)")
                    break
                self.storage_port.retrieve_incoming()
                victim = self.tags.fill(msg.address)
                if victim is not None and victim.dirty:
                    self._stage_eviction(victim.line_addr)
            else:
                # Eager eviction already made room at miss time.
                self.storage_port.retrieve_incoming()
            self._complete_miss(msg.address)
            progress = True
        return progress

    def _complete_miss(self, line_addr: int) -> None:
        entry = self.mshr.lookup(line_addr)
        if entry is None:
            return
        self.mshr.release(line_addr)
        for req in entry.waiting:
            if isinstance(req, ReadReq):
                self._queue_response(
                    DataReadyRsp(req.src, req.id, req.access_bytes))
            else:
                self.tags.mark_dirty(line_addr)
                self._queue_response(WriteDoneRsp(req.src, req.id))

    # -- request path ------------------------------------------------------------
    def _process_top(self) -> bool:
        progress = False
        for _ in range(self.width):
            msg = self.top_port.peek_incoming()
            if not isinstance(msg, MemReq):
                break
            if not self._handle_request(msg):
                break
            progress = True
        return progress

    def _handle_request(self, req: MemReq) -> bool:
        """Returns True if the request was consumed from the top buffer."""
        line = req.line_addr
        in_flight = self.mshr.lookup(line)
        if in_flight is not None:
            self.top_port.retrieve_incoming()
            in_flight.waiting.append(req)
            self._count(req)
            return True
        if self.tags.lookup(line):
            self.top_port.retrieve_incoming()
            self._count(req)
            if isinstance(req, ReadReq):
                self._queue_response(
                    DataReadyRsp(req.src, req.id, req.access_bytes))
            else:
                self.tags.mark_dirty(line)
                self._queue_response(WriteDoneRsp(req.src, req.id))
            return True
        # Miss: allocate an MSHR entry and fetch through the write buffer.
        if self.mshr.full:
            return False
        if not self.buggy:
            # Eager eviction (the fix): make room for the future fill
            # now; stall if the staging buffer has no space or every
            # way in the set has an in-flight fetch.
            if not self._staging_has_room():
                self.blocked_on = ("allocate miss "
                                   "(eviction staging full)")
                return False
            evictable = lambda addr: self.mshr.lookup(addr) is None
            if not self.tags.can_fill(line, evictable):
                self.blocked_on = "allocate miss (set conflict)"
                return False
            victim = self.tags.fill(line, evictable=evictable)
            if victim is not None and victim.dirty:
                self._stage_eviction(victim.line_addr)
        self.top_port.retrieve_incoming()
        self._count(req)
        entry = self.mshr.allocate(line)
        entry.waiting.append(req)
        self._try_send_fetch(entry)
        return True

    def _count(self, req: MemReq) -> None:
        if isinstance(req, ReadReq):
            self.num_reads += 1
        else:
            self.num_writes += 1

    def _issue_pending_fetches(self) -> bool:
        progress = False
        for entry in self.mshr.entries:
            if entry.fetch_sent:
                continue
            if not self._try_send_fetch(entry):
                break
            progress = True
        return progress

    def _try_send_fetch(self, entry) -> bool:
        fetch = ReadReq(self._wb_in_port, entry.key, CACHE_LINE_SIZE)
        if not self.wb_port.send(fetch):
            self.blocked_on = "send fetch to write buffer (InPort full)"
            return False
        entry.fetch_sent = True
        self.blocked_on = None
        return True

    # -- responses -----------------------------------------------------------
    def _queue_response(self, rsp: MemRsp) -> None:
        ready = self.engine.now + self.hit_latency / self.freq
        heapq.heappush(self._respond_queue, (ready, self._seq, rsp))
        self._seq += 1

    def _send_responses(self) -> bool:
        progress = False
        now = self.engine.now
        for _ in range(self.width):
            if (not self._respond_queue
                    or self._respond_queue[0][0] > now + 1e-15):
                break
            rsp = self._respond_queue[0][2]
            if not self.top_port.send(rsp):
                break
            heapq.heappop(self._respond_queue)
            progress = True
        return progress
