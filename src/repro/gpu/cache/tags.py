"""Set-associative tag directory with LRU replacement.

Pure bookkeeping (no timing): caches call :meth:`lookup` on the pipeline
and :meth:`fill` when data returns; :meth:`fill` reports the victim so the
cache can generate a writeback for dirty lines.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..mem import CACHE_LINE_SIZE
from ...akita.errors import BufferError_, ConfigurationError


@dataclass
class Victim:
    """An evicted line: its address and whether it must be written back."""

    line_addr: int
    dirty: bool


class SetAssocTags:
    """Tag array of ``num_sets`` sets × ``ways`` ways of 64 B lines."""

    def __init__(self, size_bytes: int, ways: int):
        if size_bytes % (ways * CACHE_LINE_SIZE) != 0:
            raise ConfigurationError(
                f"cache size {size_bytes} not divisible into {ways} ways "
                f"of {CACHE_LINE_SIZE}B lines")
        self.ways = ways
        self.num_sets = size_bytes // (ways * CACHE_LINE_SIZE)
        if self.num_sets == 0:
            raise ConfigurationError("cache too small for one set")
        # Each set maps line_addr -> dirty flag, in LRU order
        # (oldest first).
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, line_addr: int) -> OrderedDict:
        index = (line_addr // CACHE_LINE_SIZE) % self.num_sets
        return self._sets[index]

    def lookup(self, line_addr: int, touch: bool = True) -> bool:
        """True on hit.  ``touch`` refreshes LRU recency."""
        s = self._set_of(line_addr)
        if line_addr in s:
            self.hits += 1
            if touch:
                s.move_to_end(line_addr)
            return True
        self.misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Presence check without counting a hit/miss."""
        return line_addr in self._set_of(line_addr)

    def fill(self, line_addr: int, dirty: bool = False,
             evictable=None) -> Optional[Victim]:
        """Insert a line; return the victim if one had to be evicted.

        ``evictable`` optionally filters victim candidates (e.g. a cache
        must not evict a line with an active MSHR entry).  Callers using
        a filter must check :meth:`can_fill` first; filling with no
        eligible victim raises.
        """
        s = self._set_of(line_addr)
        if line_addr in s:
            s[line_addr] = s[line_addr] or dirty
            s.move_to_end(line_addr)
            return None
        victim = None
        if len(s) >= self.ways:
            old_addr = self._pick_victim(s, evictable)
            if old_addr is None:
                raise BufferError_(
                    f"no evictable way for line {line_addr:#x}")
            victim = Victim(old_addr, s.pop(old_addr))
        s[line_addr] = dirty
        return victim

    def can_fill(self, line_addr: int, evictable=None) -> bool:
        """True if :meth:`fill` would succeed (room or eligible victim)."""
        s = self._set_of(line_addr)
        if line_addr in s or len(s) < self.ways:
            return True
        return self._pick_victim(s, evictable) is not None

    @staticmethod
    def _pick_victim(s: OrderedDict, evictable) -> Optional[int]:
        for addr in s:  # oldest (LRU) first
            if evictable is None or evictable(addr):
                return addr
        return None

    def mark_dirty(self, line_addr: int) -> None:
        s = self._set_of(line_addr)
        if line_addr in s:
            s[line_addr] = True
            s.move_to_end(line_addr)

    def invalidate(self, line_addr: int) -> None:
        self._set_of(line_addr).pop(line_addr, None)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
