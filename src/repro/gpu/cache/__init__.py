"""Cache models: tags, MSHRs, L1, L2 and the L2 write buffer."""

from .l1 import L1VCache
from .l2 import L2Cache
from .mshr import MSHR, MSHREntry
from .tags import SetAssocTags, Victim
from .writebuffer import WriteBuffer

__all__ = ["L1VCache", "L2Cache", "MSHR", "MSHREntry", "SetAssocTags",
           "Victim", "WriteBuffer"]
