"""The L2 write buffer — home of case study 2's deadlock.

All traffic between an L2 bank's local storage and DRAM flows through
this buffer, in both directions (as in MGPUSim):

* **evictions** — dirty lines leaving the cache, to be written to DRAM;
* **fetches** — miss requests on their way to DRAM;
* **fills** — data fetched from DRAM, on its way *back into* the cache's
  local storage.

The shipped (buggy) implementation processes its internal queue strictly
in FIFO order.  When the queue head is a *fill* whose destination (the
L2 storage port) is full, everything behind it stalls — including the
evictions whose draining would eventually free the storage port.  The
L2, meanwhile, refuses to accept fills while it has an eviction it
cannot hand to this (full) write buffer.  That mutual wait is the hang
the paper's authors found with AkitaRTM and patched in MGPUSim.

``buggy=False`` applies the fix: the queue is scanned for the first
*processable* entry each cycle, so a blocked fill cannot starve
evictions and fetches (and the L2's eager-eviction fix removes the
reverse edge of the cycle — see :mod:`repro.gpu.cache.l2`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...akita.component import TickingComponent
from ...akita.engine import Engine
from ...akita.port import Port
from ...akita.ticker import GHZ
from ..mem import (
    CACHE_LINE_SIZE,
    DataReadyRsp,
    EvictionReq,
    FetchedData,
    MemRsp,
    ReadReq,
    WriteReq,
)

#: Internal queue entry kinds.
_EVICT, _FETCH, _FILL = "evict", "fetch", "fill"


class WriteBuffer(TickingComponent):
    """Bidirectional staging buffer between an L2 bank and DRAM."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 queue_capacity: int = 8, in_buf: int = 4,
                 dram_buf: int = 8, width: int = 2, buggy: bool = False):
        super().__init__(name, engine, freq)
        self.in_port = self.add_port("InPort", in_buf)
        self.dram_port = self.add_port("DRAMPort", dram_buf)
        self.queue_capacity = queue_capacity
        self.width = width
        self.buggy = buggy
        self.storage_port: Optional[Port] = None  # L2's StoragePort
        self.dram_top: Optional[Port] = None      # DRAM controller TopPort
        self._queue: List[Tuple[str, object]] = []
        # dram fetch id -> original fetch request (from the L2)
        self._pending_fetches: Dict[int, ReadReq] = {}
        self.num_evictions = 0
        self.num_fills = 0
        self.blocked_on: Optional[str] = None  # diagnosis aid (RTM-visible)

    def connect(self, storage_port: Port, dram_top: Port) -> None:
        self.storage_port = storage_port
        self.dram_top = dram_top

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Entries in the internal queue (monitored value)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        if self.buggy:
            # The shipped design gives returning DRAM data priority for
            # queue slots; under a fill burst the queue becomes all-fills
            # with a blocked head, which is what starves the L2's
            # eviction and closes the deadlock cycle.
            progress |= self._accept_from_dram()
            progress |= self._accept_from_l2()
        else:
            progress |= self._accept_from_l2()
            progress |= self._accept_from_dram()
        progress |= self._process_queue()
        return progress

    def _accept_from_l2(self) -> bool:
        progress = False
        for _ in range(self.width):
            if len(self._queue) >= self.queue_capacity:
                break
            msg = self.in_port.peek_incoming()
            if msg is None:
                break
            self.in_port.retrieve_incoming()
            if isinstance(msg, EvictionReq):
                self._queue.append((_EVICT, msg))
            else:
                assert isinstance(msg, ReadReq)
                self._queue.append((_FETCH, msg))
            progress = True
        return progress

    def _accept_from_dram(self) -> bool:
        progress = False
        for _ in range(self.width):
            if len(self._queue) >= self.queue_capacity:
                break
            msg = self.dram_port.peek_incoming()
            if msg is None:
                break
            if isinstance(msg, DataReadyRsp):
                original = self._pending_fetches.pop(msg.respond_to, None)
                self.dram_port.retrieve_incoming()
                if original is not None:
                    self._queue.append((_FILL, original))
                progress = True
            elif isinstance(msg, MemRsp):
                self.dram_port.retrieve_incoming()  # write ack: drop
                progress = True
            else:
                break
        return progress

    def _process_queue(self) -> bool:
        progress = False
        for _ in range(self.width):
            index = self._next_processable()
            if index is None:
                break
            kind, payload = self._queue[index]
            if self._dispatch(kind, payload):
                self._queue.pop(index)
                progress = True
            else:
                break
        return progress

    def _next_processable(self) -> Optional[int]:
        """Index of the next queue entry to process.

        The buggy variant is strictly FIFO (returns 0 whether or not the
        head can actually be dispatched — a blocked head stalls all).
        The fixed variant skips blocked entries.
        """
        if not self._queue:
            return None
        if self.buggy:
            return 0
        for i, (kind, payload) in enumerate(self._queue):
            if self._can_dispatch(kind):
                return i
        return None

    def _can_dispatch(self, kind: str) -> bool:
        assert self.storage_port is not None and self.dram_top is not None
        if kind == _FILL:
            probe = FetchedData(self.storage_port, 0, 0)
            return self.in_port.can_send(probe)
        if kind == _EVICT:
            probe = WriteReq(self.dram_top, 0, CACHE_LINE_SIZE)
        else:
            probe = ReadReq(self.dram_top, 0, CACHE_LINE_SIZE)
        return self.dram_port.can_send(probe)

    def _dispatch(self, kind: str, payload) -> bool:
        assert self.storage_port is not None and self.dram_top is not None
        if kind == _EVICT:
            assert isinstance(payload, EvictionReq)
            write = WriteReq(self.dram_top, payload.address,
                             CACHE_LINE_SIZE)
            if not self.dram_port.send(write):
                self.blocked_on = "send eviction writeback to DRAM"
                return False
            self.num_evictions += 1
        elif kind == _FETCH:
            assert isinstance(payload, ReadReq)
            fetch = ReadReq(self.dram_top, payload.address,
                            payload.access_bytes)
            if not self.dram_port.send(fetch):
                self.blocked_on = "send fetch to DRAM"
                return False
            self._pending_fetches[fetch.id] = payload
        else:  # _FILL
            assert isinstance(payload, ReadReq)
            fill = FetchedData(self.storage_port, payload.address,
                               payload.id)
            if not self.in_port.send(fill):
                self.blocked_on = ("send fetched data to local storage "
                                   "(StoragePort full)")
                return False
            self.num_fills += 1
        self.blocked_on = None
        return True
