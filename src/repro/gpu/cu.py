"""The compute unit (CU).

Executes wavefronts of mapped workgroups: one op per resident wavefront
per cycle, with a bounded number of outstanding memory requests per
wavefront.  Memory requests enter the L1 pipeline through the CU's
MemPort, which talks to the L1 vector reorder buffer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from ..akita.component import TickingComponent
from ..akita.engine import Engine
from ..akita.port import Port
from ..akita.ticker import GHZ
from .kernel import KernelState
from .mem import MemRsp, ReadReq, WriteReq
from .protocol import MapWGMsg, WGCompleteMsg


class _Wavefront:
    """Execution state of one resident wavefront.

    ``ops`` is a live generator and cannot be pickled; instead the
    wavefront remembers its identity (``wf_id``) and how many ops it
    consumed.  Workload programs are deterministic (no ``random``), so
    a restored wavefront regenerates the same op stream and fast-
    forwards to where it left off — see :meth:`rehydrate`.
    """

    __slots__ = ("wg", "ops", "wf_id", "ops_consumed", "current_op",
                 "compute_left", "outstanding", "finished")

    def __init__(self, wg: "_WorkGroup", wf_id: int, ops: Iterator):
        self.wg = wg
        self.ops = ops
        self.wf_id = wf_id
        self.ops_consumed = 0
        self.current_op: Optional[tuple] = None
        self.compute_left = 0
        self.outstanding = 0
        self.finished = False

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot)
                for slot in self.__slots__ if slot != "ops"}

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        self.ops = None  # rehydrated lazily on first advance

    def rehydrate(self) -> Iterator:
        """Rebuild the op stream after a checkpoint restore."""
        program = self.wg.kernel.descriptor.program
        if program is None:
            raise RuntimeError(
                f"wavefront wg={self.wg.wg_id} wf={self.wf_id}: kernel "
                f"{self.wg.kernel.descriptor.name!r} has no program "
                "installed (restore the checkpoint with its workload)")
        ops = iter(program(self.wg.wg_id, self.wf_id))
        for _ in range(self.ops_consumed):
            next(ops, None)
        self.ops = ops
        return ops


class _WorkGroup:
    """A mapped workgroup and its wavefronts' completion countdown."""

    __slots__ = ("kernel", "wg_id", "launch_id", "remaining_wfs")

    def __init__(self, kernel: KernelState, wg_id: int, launch_id: int,
                 num_wfs: int):
        self.kernel = kernel
        self.wg_id = wg_id
        self.launch_id = launch_id
        self.remaining_wfs = num_wfs


class ComputeUnit(TickingComponent):
    """One SIMD compute unit."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 max_wavefronts: int = 10, max_outstanding_per_wf: int = 8,
                 mem_buf: int = 8, ctrl_buf: int = 4, issue_width: int = 4):
        super().__init__(name, engine, freq)
        self.mem_port = self.add_port("MemPort", mem_buf)
        self.scalar_port = self.add_port("ScalarPort", mem_buf)
        self.ctrl_port = self.add_port("CtrlPort", ctrl_buf)
        self.rob_top: Optional[Port] = None
        self.scalar_top: Optional[Port] = None  # SA's L1SAddrTrans
        self.dispatcher_port: Optional[Port] = None
        self.max_wavefronts = max_wavefronts
        self.max_outstanding_per_wf = max_outstanding_per_wf
        self.issue_width = issue_width
        self.wavefronts: List[_Wavefront] = []
        self._outstanding: Dict[int, _Wavefront] = {}
        self._completions: Deque[_WorkGroup] = deque()
        self.num_wgs_completed = 0
        self.num_mem_reqs = 0
        # Committed instruction count: every wavefront op consumed is
        # committed exactly once, regardless of memory-system timing —
        # the timing-independent anchor of the shard equivalence check.
        self.num_instructions = 0

    def connect(self, rob_top: Port, dispatcher_port: Port,
                scalar_top: Optional[Port] = None) -> None:
        self.rob_top = rob_top
        self.dispatcher_port = dispatcher_port
        self.scalar_top = scalar_top

    # ------------------------------------------------------------------
    @property
    def resident_wavefronts(self) -> int:
        """Wavefronts currently executing (monitored value)."""
        return len(self.wavefronts)

    @property
    def outstanding_mem_reqs(self) -> int:
        return len(self._outstanding)

    @property
    def free_wavefront_slots(self) -> int:
        return self.max_wavefronts - len(self.wavefronts)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        progress |= self._send_completions()
        progress |= self._drain_responses()
        progress |= self._advance_wavefronts()
        progress |= self._accept_workgroups()
        return progress

    def _accept_workgroups(self) -> bool:
        progress = False
        while True:
            msg = self.ctrl_port.peek_incoming()
            if not isinstance(msg, MapWGMsg):
                break
            num_wfs = msg.kernel.descriptor.wavefronts_per_wg
            if self.free_wavefront_slots < num_wfs:
                break  # not enough slots; dispatcher over-mapped — wait
            self.ctrl_port.retrieve_incoming()
            wg = _WorkGroup(msg.kernel, msg.wg_id, msg.launch_id, num_wfs)
            program = msg.kernel.descriptor.program
            for wf_id in range(num_wfs):
                ops = iter(program(msg.wg_id, wf_id))
                self.wavefronts.append(_Wavefront(wg, wf_id, ops))
            if self._hooks:
                self.task_begin((wg.launch_id, wg.wg_id), "workgroup",
                                f"wg[{wg.wg_id}]x{num_wfs}wf")
            progress = True
        return progress

    def _drain_responses(self) -> bool:
        progress = False
        for port in (self.mem_port, self.scalar_port):
            for _ in range(self.issue_width * 2):
                msg = port.peek_incoming()
                if not isinstance(msg, MemRsp):
                    break
                port.retrieve_incoming()
                wf = self._outstanding.pop(msg.respond_to, None)
                if wf is not None:
                    wf.outstanding -= 1
                progress = True
        return progress

    def _advance_wavefronts(self) -> bool:
        progress = False
        finished: List[_Wavefront] = []
        for wf in self.wavefronts:
            if self._advance_one(wf):
                progress = True
            if wf.finished:
                finished.append(wf)
        for wf in finished:
            self.wavefronts.remove(wf)
            wf.wg.remaining_wfs -= 1
            if wf.wg.remaining_wfs == 0:
                self._completions.append(wf.wg)
                if self._hooks:
                    self.task_end((wf.wg.launch_id, wf.wg.wg_id),
                                  "workgroup", f"wg[{wf.wg.wg_id}]")
        return progress

    def _advance_one(self, wf: _Wavefront) -> bool:
        if wf.finished:
            return False
        if wf.compute_left > 0:
            wf.compute_left -= 1
            return True
        if wf.current_op is None:
            ops = wf.ops
            if ops is None:  # first advance after a checkpoint restore
                ops = wf.rehydrate()
            wf.current_op = next(ops, None)
            if wf.current_op is not None:
                wf.ops_consumed += 1
                self.num_instructions += 1
            if wf.current_op is None:
                if wf.outstanding == 0:
                    wf.finished = True
                    return True
                return False  # drained program, waiting on memory
        op = wf.current_op
        kind = op[0]
        if kind == "compute":
            wf.compute_left = op[1]
            wf.current_op = None
            return True
        # Memory op: respect the per-wavefront outstanding limit and the
        # ROB's top-buffer backpressure.
        if wf.outstanding >= self.max_outstanding_per_wf:
            return False
        assert self.rob_top is not None, f"{self.name} not wired"
        port = self.mem_port
        if kind == "load":
            req = ReadReq(self.rob_top, op[1], op[2])
        elif kind == "store":
            req = WriteReq(self.rob_top, op[1], op[2])
        elif kind == "sload":
            # Scalar loads (kernel arguments, lookup tables shared by
            # the whole wavefront) go through the SA's scalar cache.
            if self.scalar_top is None:
                # Platform without a scalar path: fall back to vector.
                req = ReadReq(self.rob_top, op[1], op[2])
            else:
                req = ReadReq(self.scalar_top, op[1], op[2])
                port = self.scalar_port
        else:
            raise ValueError(f"unknown wavefront op {op!r}")
        if not port.send(req):
            return False
        self._outstanding[req.id] = wf
        wf.outstanding += 1
        wf.current_op = None
        self.num_mem_reqs += 1
        return True

    def _send_completions(self) -> bool:
        progress = False
        while self._completions:
            wg = self._completions[0]
            assert self.dispatcher_port is not None
            msg = WGCompleteMsg(self.dispatcher_port, wg.kernel, wg.wg_id,
                                wg.launch_id)
            if not self.ctrl_port.send(msg):
                break
            self._completions.popleft()
            self.num_wgs_completed += 1
            progress = True
        return progress
