"""The per-GPU workgroup dispatcher.

Receives kernel launches from the command processor, maps workgroups to
compute units with free wavefront slots, collects completion messages,
and updates the shared :class:`~repro.gpu.kernel.KernelState` that backs
AkitaRTM's progress bars.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..akita.component import TickingComponent
from ..akita.engine import Engine
from ..akita.port import Port
from ..akita.ticker import GHZ
from .cu import ComputeUnit
from .kernel import KernelState
from .protocol import (
    KernelCompleteMsg,
    LaunchKernelMsg,
    MapWGMsg,
    WGCompleteMsg,
)


class _Launch:
    """Bookkeeping for one LaunchKernelMsg."""

    __slots__ = ("launch_id", "kernel", "remaining", "reply_to")

    def __init__(self, launch_id: int, kernel: KernelState,
                 remaining: int, reply_to: Port):
        self.launch_id = launch_id
        self.kernel = kernel
        self.remaining = remaining
        self.reply_to = reply_to


class Dispatcher(TickingComponent):
    """Maps workgroups onto this GPU's compute units."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 cp_buf: int = 4, cu_buf: int = 16,
                 dispatch_width: int = 2):
        super().__init__(name, engine, freq)
        self.cp_port = self.add_port("ToCP", cp_buf)
        self.cu_port = self.add_port("ToCU", cu_buf)
        self.dispatch_width = dispatch_width
        self._cus: List[ComputeUnit] = []
        self._free_slots: Dict[ComputeUnit, int] = {}
        self._pending_wgs: Deque[Tuple[_Launch, int]] = deque()
        self._launches: Dict[int, _Launch] = {}
        self._next_launch_id = 0
        self._pending_replies: Deque[KernelCompleteMsg] = deque()
        self.num_dispatched = 0

    def register_cu(self, cu: ComputeUnit) -> None:
        self._cus.append(cu)
        self._free_slots[cu] = cu.max_wavefronts

    # ------------------------------------------------------------------
    @property
    def pending_workgroups(self) -> int:
        """Workgroups waiting to be mapped (monitored value)."""
        return len(self._pending_wgs)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        progress |= self._send_replies()
        progress |= self._process_cu_messages()
        progress |= self._dispatch()
        progress |= self._process_cp_messages()
        return progress

    def _process_cp_messages(self) -> bool:
        progress = False
        while True:
            msg = self.cp_port.peek_incoming()
            if not isinstance(msg, LaunchKernelMsg):
                break
            self.cp_port.retrieve_incoming()
            assert msg.src is not None
            launch = _Launch(self._next_launch_id, msg.kernel,
                             len(msg.wg_ids), msg.src)
            self._next_launch_id += 1
            self._launches[launch.launch_id] = launch
            for wg_id in msg.wg_ids:
                self._pending_wgs.append((launch, wg_id))
            progress = True
        return progress

    def _dispatch(self) -> bool:
        progress = False
        dispatched = 0
        while self._pending_wgs and dispatched < self.dispatch_width:
            launch, wg_id = self._pending_wgs[0]
            wfs_needed = launch.kernel.descriptor.wavefronts_per_wg
            cu = self._find_free_cu(wfs_needed)
            if cu is None:
                break
            msg = MapWGMsg(cu.ctrl_port, launch.kernel, wg_id,
                           launch.launch_id)
            if not self.cu_port.send(msg):
                break
            self._pending_wgs.popleft()
            self._free_slots[cu] -= wfs_needed
            launch.kernel.start_wg()
            self.num_dispatched += 1
            dispatched += 1
            progress = True
        return progress

    def _find_free_cu(self, wfs_needed: int) -> Optional[ComputeUnit]:
        best = None
        best_free = wfs_needed - 1
        for cu in self._cus:
            free = self._free_slots[cu]
            if free > best_free:
                best = cu
                best_free = free
        return best

    def _process_cu_messages(self) -> bool:
        progress = False
        while True:
            msg = self.cu_port.peek_incoming()
            if not isinstance(msg, WGCompleteMsg):
                break
            self.cu_port.retrieve_incoming()
            cu = msg.src.component
            assert isinstance(cu, ComputeUnit)
            wfs = msg.kernel.descriptor.wavefronts_per_wg
            self._free_slots[cu] += wfs
            msg.kernel.finish_wg()
            launch = self._launches.get(msg.launch_id)
            if launch is not None:
                launch.remaining -= 1
                if launch.remaining == 0:
                    del self._launches[msg.launch_id]
                    self._pending_replies.append(
                        KernelCompleteMsg(launch.reply_to,
                                          launch.launch_id))
            progress = True
        return progress

    def _send_replies(self) -> bool:
        progress = False
        while self._pending_replies:
            if not self.cp_port.send(self._pending_replies[0]):
                break
            self._pending_replies.popleft()
            progress = True
        return progress
