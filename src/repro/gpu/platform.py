"""Platform builders: assemble chiplets into a runnable GPU simulation.

The component hierarchy follows MGPUSim's naming, which is what the
paper's screenshots show (e.g. ``GPU[1].SA[15].L1VROB[0].TopPort.Buf``):

* ``GPU[i]`` — one chiplet, R9-Nano-like.
* ``GPU[i].SA[j]`` — a shader array containing, per CU slot ``k``:
  ``CU[k]``, ``L1VROB[k]``, ``L1VAddrTrans[k]``, ``L1VCache[k]``.
* ``GPU[i].L2[b]``, ``GPU[i].WriteBuffer[b]``, ``GPU[i].DRAM[b]`` —
  banked L2 + write buffer + DRAM channel.
* ``GPU[i].RDMA``, ``GPU[i].CommandProcessor``, ``GPU[i].Dispatcher``.
* ``Driver`` (host) and ``InterChipletSwitch`` (shared network).

The paper's default hardware is a 4-chiplet MCM GPU whose chiplets match
an AMD R9 Nano (64 CUs, 16 KB L1 per CU, 2 MB shared L2, 4 GB HBM).
:meth:`GPUPlatformConfig.r9_nano_mcm` reproduces those parameters;
:meth:`GPUPlatformConfig.small` is a scaled configuration with identical
structure for tests and fast experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..akita.connection import DirectConnection
from ..akita.engine import Engine
from ..akita.errors import ConfigurationError
from ..akita.naming import indexed, join
from ..akita.port import Port
from ..akita.simulation import Simulation
from ..akita.ticker import GHZ
from .addressing import AddressMapper
from .addr_translator import AddressTranslator
from .cache.l1 import L1VCache
from .cache.l2 import L2Cache
from .cache.writebuffer import WriteBuffer
from .command_processor import CommandProcessor
from .cu import ComputeUnit
from .dispatcher import Dispatcher
from .dram import DRAMController
from .driver import Driver
from .network import ChipletSwitch
from .rdma import RDMAEngine
from .rob import ReorderBuffer


@dataclass
class GPUPlatformConfig:
    """All tunables of the simulated platform."""

    num_chiplets: int = 4
    sas_per_gpu: int = 16
    cus_per_sa: int = 4
    l2_banks: int = 4
    freq: float = GHZ

    # Compute units
    max_wavefronts_per_cu: int = 10
    max_outstanding_per_wf: int = 8

    # L1 pipeline
    rob_capacity: int = 128
    rob_top_buf: int = 8
    l1_size_bytes: int = 16 * 1024
    l1_ways: int = 4
    l1_mshr: int = 16
    #: Per-SA scalar cache (kernel arguments / lookup tables), as in
    #: MGPUSim's L1SCache shared by the shader array's CUs.
    scalar_cache_bytes: int = 8 * 1024
    at_tlb_capacity: int = 64
    at_miss_latency: int = 20
    at_max_inflight: int = 64

    # L2 / write buffer / DRAM
    l2_size_bytes: int = 512 * 1024     # per bank
    l2_ways: int = 8
    l2_mshr: int = 32
    l2_write_buffer_bug: bool = False   # case study 2's hang, if True
    l2_storage_buf: int = 4
    l2_eviction_staging: int = 1
    wb_queue_capacity: int = 8
    wb_in_buf: int = 4
    wb_width: int = 2
    dram_latency_cycles: int = 100

    # Inter-chiplet network
    net_msgs_per_cycle: int = 1
    net_link_latency_cycles: int = 20

    # Host
    dma_bytes_per_cycle: int = 256
    page_bytes: int = 4096
    #: Driver ↔ command-processor link latency (host PCIe-ish hop).
    driver_conn_latency_cycles: int = 10

    def __post_init__(self) -> None:
        if self.num_chiplets <= 0:
            raise ConfigurationError("need at least one chiplet")
        if self.sas_per_gpu <= 0 or self.cus_per_sa <= 0:
            raise ConfigurationError("need at least one CU")
        if self.l2_banks <= 0:
            raise ConfigurationError("need at least one L2 bank")

    @property
    def cus_per_gpu(self) -> int:
        return self.sas_per_gpu * self.cus_per_sa

    @property
    def shard_window_cycles(self) -> int:
        """The conservative sync window: the minimum latency of any link
        that can cross a shard boundary (driver↔CP and chiplet↔switch).
        No boundary message sent at time *t* can arrive before
        ``t + shard_window_cycles / freq``, so shards may safely run
        that many cycles past the global minimum next-event time."""
        return min(self.driver_conn_latency_cycles,
                   self.net_link_latency_cycles)

    def partition_chiplets(self, num_shards: int) -> List[List[int]]:
        """Assign chiplets to shards: contiguous blocks, sizes differing
        by at most one, every chiplet in exactly one shard.

        Shard 0 additionally owns the host side (Driver and
        InterChipletSwitch); ``num_shards == 1`` is the degenerate case
        where shard 0 owns everything (the monolithic platform).
        """
        n = self.num_chiplets
        if not 1 <= num_shards <= n:
            raise ConfigurationError(
                f"need 1..{n} shards for {n} chiplets, got {num_shards}")
        base, extra = divmod(n, num_shards)
        blocks: List[List[int]] = []
        start = 0
        for s in range(num_shards):
            size = base + (1 if s < extra else 0)
            blocks.append(list(range(start, start + size)))
            start += size
        return blocks

    @classmethod
    def r9_nano_mcm(cls, num_chiplets: int = 4,
                    **overrides) -> "GPUPlatformConfig":
        """The paper's 4-chiplet MCM GPU (64 CUs per chiplet)."""
        params = dict(num_chiplets=num_chiplets, sas_per_gpu=16,
                      cus_per_sa=4, l2_banks=4,
                      l2_size_bytes=512 * 1024)
        params.update(overrides)
        return cls(**params)

    @classmethod
    def small(cls, num_chiplets: int = 2, **overrides) -> "GPUPlatformConfig":
        """A scaled configuration with the same structure (fast tests)."""
        params = dict(num_chiplets=num_chiplets, sas_per_gpu=2,
                      cus_per_sa=2, l2_banks=1,
                      l1_size_bytes=4 * 1024,
                      l2_size_bytes=32 * 1024,
                      dram_latency_cycles=50)
        params.update(overrides)
        return cls(**params)


class _AllDone:
    """Picklable completion check: every driver command finished.

    The completion predicate travels inside checkpoints (it is part of
    the simulated system's semantics), so it must be a plain object
    rather than a lambda closing over the platform.
    """

    __slots__ = ("driver",)

    def __init__(self, driver: Driver):
        self.driver = driver

    def __call__(self) -> bool:
        return self.driver.all_done


class _ChipletRoute:
    """Routes an address to the local L2 bank or the RDMA engine.

    Replaces the nested ``route`` closure so cache route tables — and
    with them the whole platform graph — stay picklable.
    """

    __slots__ = ("mapper", "chiplet_id", "l2_tops", "rdma_port")

    def __init__(self, mapper: AddressMapper, chiplet_id: int,
                 l2_tops: List[Port], rdma_port: Port):
        self.mapper = mapper
        self.chiplet_id = chiplet_id
        self.l2_tops = l2_tops
        self.rdma_port = rdma_port

    def __call__(self, addr: int) -> Port:
        if self.mapper.is_local(addr, self.chiplet_id):
            return self.l2_tops[self.mapper.bank_of(addr)]
        return self.rdma_port


class _BankRoute:
    """Routes a local address to its owning L2 bank (RDMA ingress)."""

    __slots__ = ("mapper", "l2_tops")

    def __init__(self, mapper: AddressMapper, l2_tops: List[Port]):
        self.mapper = mapper
        self.l2_tops = l2_tops

    def __call__(self, addr: int) -> Port:
        return self.l2_tops[self.mapper.bank_of(addr)]


class Chiplet:
    """Handles to one built GPU chiplet's components."""

    def __init__(self, chiplet_id: int):
        self.id = chiplet_id
        self.name = indexed("GPU", chiplet_id)
        self.cus: List[ComputeUnit] = []
        self.robs: List[ReorderBuffer] = []
        self.ats: List[AddressTranslator] = []
        self.l1s: List[L1VCache] = []
        self.scalar_ats: List[AddressTranslator] = []
        self.scalar_caches: List[L1VCache] = []
        self.l2s: List[L2Cache] = []
        self.write_buffers: List[WriteBuffer] = []
        self.drams: List[DRAMController] = []
        self.rdma: Optional[RDMAEngine] = None
        self.command_processor: Optional[CommandProcessor] = None
        self.dispatcher: Optional[Dispatcher] = None


class GPUPlatform:
    """A fully wired multi-chiplet GPU simulation."""

    def __init__(self, config: Optional[GPUPlatformConfig] = None,
                 engine: Optional[Engine] = None, name: str = "platform"):
        self.config = config if config is not None else GPUPlatformConfig()
        self.simulation = Simulation(name, engine)
        self.engine = self.simulation.engine
        self.mapper = AddressMapper(self.config.num_chiplets,
                                    self.config.l2_banks,
                                    self.config.page_bytes)
        self.chiplets: List[Chiplet] = []
        self.driver: Driver = None  # type: ignore[assignment]
        self.switch: ChipletSwitch = None  # type: ignore[assignment]
        self._scalar_buses: Dict[str, DirectConnection] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        sim = self.simulation
        engine = self.engine

        self.driver = Driver("Driver", engine, cfg.freq,
                             dma_bytes_per_cycle=cfg.dma_bytes_per_cycle)
        sim.register_component(self.driver)

        self.switch = ChipletSwitch(
            "InterChipletSwitch", engine, cfg.num_chiplets, cfg.freq,
            msgs_per_cycle=cfg.net_msgs_per_cycle)
        sim.register_component(self.switch)

        driver_conn = DirectConnection(
            "DriverConn", engine,
            latency=cfg.driver_conn_latency_cycles / cfg.freq)
        driver_conn.plug_in(self.driver.gpu_port)
        sim.register_connection(driver_conn)

        for i in range(cfg.num_chiplets):
            chiplet = self._build_chiplet(i, driver_conn)
            self.chiplets.append(chiplet)

        self._wire_network()
        sim.set_completion_check(_AllDone(self.driver))

    def _build_chiplet(self, i: int,
                       driver_conn: DirectConnection) -> Chiplet:
        cfg = self.config
        sim = self.simulation
        engine = self.engine
        chiplet = Chiplet(i)
        gpu = chiplet.name

        # -- memory-side components -------------------------------------
        for b in range(cfg.l2_banks):
            l2 = L2Cache(join(gpu, indexed("L2", b)), engine, cfg.freq,
                         size_bytes=cfg.l2_size_bytes, ways=cfg.l2_ways,
                         mshr_capacity=cfg.l2_mshr,
                         storage_buf=cfg.l2_storage_buf,
                         eviction_staging=cfg.l2_eviction_staging,
                         buggy=cfg.l2_write_buffer_bug)
            wb = WriteBuffer(join(gpu, indexed("WriteBuffer", b)), engine,
                             cfg.freq,
                             queue_capacity=cfg.wb_queue_capacity,
                             in_buf=cfg.wb_in_buf, width=cfg.wb_width,
                             buggy=cfg.l2_write_buffer_bug)
            dram = DRAMController(join(gpu, indexed("DRAM", b)), engine,
                                  cfg.freq,
                                  latency_cycles=cfg.dram_latency_cycles)
            sim.register_component(l2)
            sim.register_component(wb)
            sim.register_component(dram)
            chiplet.l2s.append(l2)
            chiplet.write_buffers.append(wb)
            chiplet.drams.append(dram)

            l2_wb_conn = DirectConnection(
                join(gpu, indexed("L2WBConn", b)), engine,
                latency=1 / cfg.freq)
            for port in (l2.wb_port, l2.storage_port, wb.in_port):
                l2_wb_conn.plug_in(port)
            sim.register_connection(l2_wb_conn)
            l2.connect_write_buffer(wb.in_port)
            wb.connect(l2.storage_port, dram.top_port)

            wb_dram_conn = DirectConnection(
                join(gpu, indexed("WBDRAMConn", b)), engine,
                latency=1 / cfg.freq)
            wb_dram_conn.plug_in(wb.dram_port)
            wb_dram_conn.plug_in(dram.top_port)
            sim.register_connection(wb_dram_conn)

        # -- RDMA -------------------------------------------------------
        rdma = RDMAEngine(join(gpu, "RDMA"), engine, i, cfg.freq)
        sim.register_component(rdma)
        chiplet.rdma = rdma

        # -- chiplet crossbar: L1 bottoms + L2 tops + RDMA ----------------
        crossbar = DirectConnection(join(gpu, "L1ToL2Conn"), engine,
                                    latency=4 / cfg.freq)
        for l2 in chiplet.l2s:
            crossbar.plug_in(l2.top_port)
        crossbar.plug_in(rdma.l1_port)
        crossbar.plug_in(rdma.l2_port)
        sim.register_connection(crossbar)

        # -- control plane ------------------------------------------------
        cp = CommandProcessor(join(gpu, "CommandProcessor"), engine,
                              cfg.freq)
        dispatcher = Dispatcher(join(gpu, "Dispatcher"), engine, cfg.freq)
        sim.register_component(cp)
        sim.register_component(dispatcher)
        chiplet.command_processor = cp
        chiplet.dispatcher = dispatcher
        driver_conn.plug_in(cp.driver_port)
        self.driver.connect_gpu(cp.driver_port)

        cp_disp_conn = DirectConnection(join(gpu, "CPDispatcherConn"),
                                        engine, latency=1 / cfg.freq)
        cp_disp_conn.plug_in(cp.dispatcher_port)
        cp_disp_conn.plug_in(dispatcher.cp_port)
        sim.register_connection(cp_disp_conn)
        cp.connect(dispatcher.cp_port)

        dispatch_bus = DirectConnection(join(gpu, "DispatchBus"), engine,
                                        latency=1 / cfg.freq)
        dispatch_bus.plug_in(dispatcher.cu_port)
        sim.register_connection(dispatch_bus)

        # -- shader arrays ------------------------------------------------
        l2_tops = [l2.top_port for l2 in chiplet.l2s]
        route = _ChipletRoute(self.mapper, i, l2_tops, rdma.l1_port)

        for j in range(cfg.sas_per_gpu):
            sa = join(gpu, indexed("SA", j))
            scalar_top = self._build_scalar_path(chiplet, sa, route,
                                                 crossbar)
            for k in range(cfg.cus_per_sa):
                self._build_cu_chain(chiplet, sa, k, route, crossbar,
                                     dispatch_bus, dispatcher,
                                     scalar_top)

        rdma.connect(
            switch_port=self.switch.switch_port(i),
            remote_ports={},  # filled in _wire_network
            bank_route=_BankRoute(self.mapper, l2_tops),
            chiplet_of=self.mapper.chiplet_of,
        )
        return chiplet

    def _build_scalar_path(self, chiplet: Chiplet, sa: str,
                           route: Callable[[int], Port],
                           crossbar: DirectConnection) -> Port:
        """One scalar translator + cache shared by the SA's CUs
        (MGPUSim's L1SAddrTrans / L1SCache)."""
        cfg = self.config
        engine = self.engine
        sim = self.simulation
        s_at = AddressTranslator(join(sa, indexed("L1SAddrTrans", 0)),
                                 engine, cfg.freq,
                                 tlb_capacity=cfg.at_tlb_capacity,
                                 miss_latency=cfg.at_miss_latency,
                                 max_inflight=cfg.at_max_inflight)
        s_l1 = L1VCache(join(sa, indexed("L1SCache", 0)), engine,
                        cfg.freq, size_bytes=cfg.scalar_cache_bytes,
                        ways=cfg.l1_ways, mshr_capacity=cfg.l1_mshr)
        sim.register_component(s_at)
        sim.register_component(s_l1)
        chiplet.scalar_ats.append(s_at)
        chiplet.scalar_caches.append(s_l1)

        at_l1 = DirectConnection(join(sa, "SATL1SConn"), engine,
                                 latency=1 / cfg.freq)
        at_l1.plug_in(s_at.bottom_port)
        at_l1.plug_in(s_l1.top_port)
        sim.register_connection(at_l1)
        crossbar.plug_in(s_l1.bottom_port)

        # The SA-shared scalar bus gains CU ScalarPorts in
        # _build_cu_chain.
        scalar_bus = DirectConnection(join(sa, "ScalarBus"), engine,
                                      latency=1 / cfg.freq)
        scalar_bus.plug_in(s_at.top_port)
        sim.register_connection(scalar_bus)
        self._scalar_buses[sa] = scalar_bus

        s_at.connect_down(s_l1.top_port)
        s_l1.set_route(route)
        return s_at.top_port

    def _build_cu_chain(self, chiplet: Chiplet, sa: str, k: int,
                        route: Callable[[int], Port],
                        crossbar: DirectConnection,
                        dispatch_bus: DirectConnection,
                        dispatcher: Dispatcher,
                        scalar_top: Optional[Port] = None) -> None:
        cfg = self.config
        sim = self.simulation
        engine = self.engine

        cu = ComputeUnit(join(sa, indexed("CU", k)), engine, cfg.freq,
                         max_wavefronts=cfg.max_wavefronts_per_cu,
                         max_outstanding_per_wf=cfg.max_outstanding_per_wf)
        rob = ReorderBuffer(join(sa, indexed("L1VROB", k)), engine,
                            cfg.freq, capacity=cfg.rob_capacity,
                            top_buf=cfg.rob_top_buf)
        at = AddressTranslator(join(sa, indexed("L1VAddrTrans", k)),
                               engine, cfg.freq,
                               tlb_capacity=cfg.at_tlb_capacity,
                               miss_latency=cfg.at_miss_latency,
                               max_inflight=cfg.at_max_inflight)
        l1 = L1VCache(join(sa, indexed("L1VCache", k)), engine, cfg.freq,
                      size_bytes=cfg.l1_size_bytes, ways=cfg.l1_ways,
                      mshr_capacity=cfg.l1_mshr)
        for component in (cu, rob, at, l1):
            sim.register_component(component)
        chiplet.cus.append(cu)
        chiplet.robs.append(rob)
        chiplet.ats.append(at)
        chiplet.l1s.append(l1)

        cu_rob = DirectConnection(join(sa, indexed("CUROBConn", k)),
                                  engine, latency=1 / cfg.freq)
        cu_rob.plug_in(cu.mem_port)
        cu_rob.plug_in(rob.top_port)
        sim.register_connection(cu_rob)

        rob_at = DirectConnection(join(sa, indexed("ROBATConn", k)),
                                  engine, latency=1 / cfg.freq)
        rob_at.plug_in(rob.bottom_port)
        rob_at.plug_in(at.top_port)
        sim.register_connection(rob_at)

        at_l1 = DirectConnection(join(sa, indexed("ATL1Conn", k)),
                                 engine, latency=1 / cfg.freq)
        at_l1.plug_in(at.bottom_port)
        at_l1.plug_in(l1.top_port)
        sim.register_connection(at_l1)

        crossbar.plug_in(l1.bottom_port)
        dispatch_bus.plug_in(cu.ctrl_port)
        if scalar_top is not None:
            self._scalar_buses[sa].plug_in(cu.scalar_port)

        cu.connect(rob.top_port, dispatcher.cu_port,
                   scalar_top=scalar_top)
        rob.connect_down(at.top_port)
        at.connect_down(l1.top_port)
        l1.set_route(route)
        dispatcher.register_cu(cu)

    def _wire_network(self) -> None:
        cfg = self.config
        remote_ports: Dict[int, Port] = {
            c.id: c.rdma.net_port for c in self.chiplets}
        for chiplet in self.chiplets:
            rdma = chiplet.rdma
            rdma._remote_ports = dict(remote_ports)
            link = DirectConnection(
                join(chiplet.name, "NetLink"), self.engine,
                latency=cfg.net_link_latency_cycles / cfg.freq)
            link.plug_in(rdma.net_port)
            link.plug_in(self.switch.switch_port(chiplet.id))
            self.simulation.register_connection(link)
            self.switch.add_route(rdma.net_port, chiplet.id)

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Kick the driver so enqueued commands begin executing."""
        self.driver.tick_later()

    def run(self, hang_wait: float = 0.0) -> bool:
        """Start and run to completion; see :meth:`Simulation.run`."""
        self.start()
        return self.simulation.run(hang_wait)
