"""The inter-chiplet network switch.

A single shared switch connects every chiplet's RDMA engine.  Its
forwarding rate (messages per cycle, across all ports) and link latency
are the knobs that make it the root bottleneck of case study 1: the
default MCM configuration deliberately models a network much slower than
the chiplet-local memory hierarchy, exactly the situation the paper's
im2col study uncovers.
"""

from __future__ import annotations

from typing import Dict, List

from ..akita.component import TickingComponent
from ..akita.engine import Engine
from ..akita.port import Port
from ..akita.ticker import GHZ
from .mem import NetMsg


class ChipletSwitch(TickingComponent):
    """Crossbar switch with a global forwarding-rate limit."""

    def __init__(self, name: str, engine: Engine, num_ports: int,
                 freq: float = GHZ, msgs_per_cycle: int = 1,
                 port_buf: int = 16):
        super().__init__(name, engine, freq)
        self.msgs_per_cycle = msgs_per_cycle
        self._ports_list: List[Port] = [
            self.add_port(f"Port{i}", port_buf) for i in range(num_ports)]
        # final destination port -> index of the switch port that reaches it
        self._routes: Dict[Port, int] = {}
        self._rr = 0  # round-robin pointer over input ports
        self.num_forwarded = 0

    def switch_port(self, index: int) -> Port:
        return self._ports_list[index]

    def add_route(self, final_dst: Port, via_port_index: int) -> None:
        """Teach the switch that *final_dst* is reached via its port
        *via_port_index*."""
        self._routes[final_dst] = via_port_index

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Messages waiting in the switch input buffers (monitored)."""
        return sum(p.buf.size for p in self._ports_list)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        n = len(self._ports_list)
        forwarded = 0
        attempts = 0
        while forwarded < self.msgs_per_cycle and attempts < n:
            port = self._ports_list[self._rr]
            self._rr = (self._rr + 1) % n
            attempts += 1
            msg = port.peek_incoming()
            if not isinstance(msg, NetMsg):
                continue
            out_index = self._routes.get(msg.final_dst)
            if out_index is None:
                port.retrieve_incoming()  # unroutable: drop, keep moving
                continue
            out_port = self._ports_list[out_index]
            msg.dst = msg.final_dst
            if not out_port.send(msg):
                continue  # destination full; try other inputs
            port.retrieve_incoming()
            forwarded += 1
            self.num_forwarded += 1
            progress = True
        return progress
