"""A small fully-associative TLB with LRU replacement.

The address translator consults this structure; a miss costs a fixed
page-walk penalty (we model the walk as latency rather than as a separate
page-walker component — a documented simplification that preserves the
translator's observable behaviour: bursts that drain quickly, per the
paper's Figure 5(d)).
"""

from __future__ import annotations

from collections import OrderedDict

from ..akita.errors import ConfigurationError


class TLB:
    """Page-granular translation cache."""

    def __init__(self, capacity: int = 64, page_bytes: int = 4096):
        if capacity <= 0:
            raise ConfigurationError("TLB capacity must be positive")
        self.capacity = capacity
        self.page_bytes = page_bytes
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, addr: int) -> bool:
        """True on hit; refreshes recency.  A miss does *not* install the
        translation — call :meth:`fill` once the walk completes."""
        page = addr // self.page_bytes
        if page in self._entries:
            self.hits += 1
            self._entries.move_to_end(page)
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> None:
        page = addr // self.page_bytes
        if page in self._entries:
            self._entries.move_to_end(page)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[page] = True

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
