"""Control-plane messages: driver ↔ command processor ↔ dispatcher ↔ CU."""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from ..akita.message import Msg
from .kernel import KernelState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..akita.port import Port


class LaunchKernelMsg(Msg):
    """Launch the given workgroups of a kernel on one GPU."""

    __slots__ = ("kernel", "wg_ids")

    def __init__(self, dst: "Port", kernel: KernelState, wg_ids: List[int]):
        super().__init__(dst, size_bytes=64)
        self.kernel = kernel
        self.wg_ids = wg_ids


class MapWGMsg(Msg):
    """Dispatcher → CU: execute one workgroup."""

    __slots__ = ("kernel", "wg_id", "launch_id")

    def __init__(self, dst: "Port", kernel: KernelState, wg_id: int,
                 launch_id: int):
        super().__init__(dst, size_bytes=32)
        self.kernel = kernel
        self.wg_id = wg_id
        self.launch_id = launch_id


class WGCompleteMsg(Msg):
    """CU → dispatcher: a workgroup finished."""

    __slots__ = ("kernel", "wg_id", "launch_id")

    def __init__(self, dst: "Port", kernel: KernelState, wg_id: int,
                 launch_id: int):
        super().__init__(dst, size_bytes=16)
        self.kernel = kernel
        self.wg_id = wg_id
        self.launch_id = launch_id


class KernelCompleteMsg(Msg):
    """Dispatcher → CP → driver: all workgroups of a launch finished."""

    __slots__ = ("launch_id",)

    def __init__(self, dst: "Port", launch_id: int):
        super().__init__(dst, size_bytes=16)
        self.launch_id = launch_id
