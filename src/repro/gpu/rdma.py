"""The per-chiplet RDMA engine.

Gathers memory requests from the chiplet's L1 caches whose target page
lives on another chiplet, ships them across the inter-chiplet network,
and injects requests arriving *from* other chiplets into the local L2.

Its ``transactions`` count — requests gathered from local L1s still
waiting for remote data — is the headline number of case study 1: with
64 L1s × 16 MSHR entries each and most pages remote, it sits around a
thousand, flagging the (slow) network as the root bottleneck.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..akita.component import TickingComponent
from ..akita.engine import Engine
from ..akita.message import Msg
from ..akita.port import Port
from ..akita.ticker import GHZ
from .mem import (
    DataReadyRsp,
    MemReq,
    MemRsp,
    NetMsg,
    ReadReq,
    WriteDoneRsp,
    WriteReq,
)

#: address -> local L2 bank top port
BankRouteFn = Callable[[int], Port]


def _clone_req(req: MemReq, dst: Optional[Port]) -> MemReq:
    if isinstance(req, ReadReq):
        return ReadReq(dst, req.address, req.access_bytes, req.pid)
    return WriteReq(dst, req.address, req.access_bytes, req.pid)


def _clone_rsp(rsp: MemRsp, dst: Port, respond_to: int) -> MemRsp:
    if isinstance(rsp, DataReadyRsp):
        return DataReadyRsp(dst, respond_to, rsp.size_bytes - 16)
    return WriteDoneRsp(dst, respond_to)


class RDMAEngine(TickingComponent):
    """Remote-memory access engine bridging chiplets."""

    def __init__(self, name: str, engine: Engine, chiplet_id: int,
                 freq: float = GHZ, l1_buf: int = 8, l2_buf: int = 8,
                 net_buf: int = 16, width: int = 4,
                 net_queue_capacity: int = 4096):
        super().__init__(name, engine, freq)
        self.chiplet_id = chiplet_id
        self.l1_port = self.add_port("ToL1", l1_buf)
        self.l2_port = self.add_port("ToL2", l2_buf)
        self.net_port = self.add_port("NetPort", net_buf)
        self.width = width
        self.net_queue_capacity = net_queue_capacity
        self._switch_port: Optional[Port] = None
        self._remote_ports: Dict[int, Port] = {}  # chiplet id -> NetPort
        self._bank_route: Optional[BankRouteFn] = None
        self._chiplet_of: Optional[Callable[[int], int]] = None
        # Requests gathered from local L1s awaiting remote completion.
        self._outgoing: Dict[int, MemReq] = {}
        # Requests arriving from remote chiplets, in the local L2.
        self._incoming: Dict[int, Tuple[MemReq, Port]] = {}
        self._to_net: Deque[NetMsg] = deque()
        self._to_l1: Deque[MemRsp] = deque()
        self._to_l2: Deque[MemReq] = deque()
        self.num_forwarded = 0

    def connect(self, switch_port: Port, remote_ports: Dict[int, Port],
                bank_route: BankRouteFn,
                chiplet_of: Callable[[int], int]) -> None:
        """Wire the engine into the network fabric.

        Parameters
        ----------
        switch_port:
            The network switch port this engine's NetPort talks to.
        remote_ports:
            chiplet id → that chiplet's RDMA NetPort.
        bank_route:
            address → local L2 bank TopPort.
        chiplet_of:
            address → owning chiplet id.
        """
        self._switch_port = switch_port
        self._remote_ports = dict(remote_ports)
        self._bank_route = bank_route
        self._chiplet_of = chiplet_of

    # ------------------------------------------------------------------
    @property
    def transactions(self) -> int:
        """Outstanding requests gathered from local L1s (monitored —
        the ≈1000 value in Figure 5(d))."""
        return len(self._outgoing) + len(self._to_net)

    @property
    def incoming_transactions(self) -> int:
        """Remote-origin requests in flight in the local L2."""
        return len(self._incoming)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        progress |= self._drain_to_l1()
        progress |= self._drain_to_l2()
        progress |= self._drain_to_net()
        progress |= self._intake_from_l1()
        progress |= self._intake_from_net()
        progress |= self._intake_from_l2()
        return progress

    # -- intake -----------------------------------------------------------
    def _intake_from_l1(self) -> bool:
        """Local L1 misses to remote pages: wrap and queue for the net."""
        progress = False
        for _ in range(self.width):
            if len(self._to_net) >= self.net_queue_capacity:
                break
            msg = self.l1_port.peek_incoming()
            if not isinstance(msg, MemReq):
                break
            self.l1_port.retrieve_incoming()
            fwd = _clone_req(msg, None)
            self._outgoing[fwd.id] = msg
            target = self._chiplet_of(msg.address)
            envelope = NetMsg(self._switch_port, fwd,
                              self._remote_ports[target], self.net_port)
            self._to_net.append(envelope)
            if self._hooks:
                self.task_begin(fwd.id, "rdma_transfer",
                                f"req#{msg.id}->chiplet{target}")
            progress = True
        return progress

    def _intake_from_net(self) -> bool:
        """Traffic from other chiplets: requests go to the local L2,
        responses go back to the waiting local L1."""
        progress = False
        for _ in range(self.width):
            if len(self._to_l2) >= 64:
                break
            msg = self.net_port.peek_incoming()
            if not isinstance(msg, NetMsg):
                break
            payload = msg.payload
            if isinstance(payload, MemReq):
                self.net_port.retrieve_incoming()
                fwd = _clone_req(payload, self._bank_route(payload.address))
                self._incoming[fwd.id] = (payload, msg.origin)
                self._to_l2.append(fwd)
            else:
                assert isinstance(payload, MemRsp)
                self.net_port.retrieve_incoming()
                original = self._outgoing.pop(payload.respond_to, None)
                if original is not None:
                    assert original.src is not None
                    if self._hooks:
                        self.task_end(payload.respond_to,
                                      "rdma_transfer")
                    self._to_l1.append(
                        _clone_rsp(payload, original.src, original.id))
            progress = True
        return progress

    def _intake_from_l2(self) -> bool:
        """Local L2 answered a remote-origin request: ship it home."""
        progress = False
        for _ in range(self.width):
            if len(self._to_net) >= self.net_queue_capacity:
                break
            msg = self.l2_port.peek_incoming()
            if not isinstance(msg, MemRsp):
                break
            record = self._incoming.pop(msg.respond_to, None)
            self.l2_port.retrieve_incoming()
            if record is None:
                continue
            original, origin = record
            rsp = _clone_rsp(msg, None, original.id)
            self._to_net.append(
                NetMsg(self._switch_port, rsp, origin, self.net_port))
            progress = True
        return progress

    # -- drains ----------------------------------------------------------
    def _drain_to_net(self) -> bool:
        progress = False
        for _ in range(self.width):
            if not self._to_net:
                break
            if not self.net_port.send(self._to_net[0]):
                break
            self._to_net.popleft()
            self.num_forwarded += 1
            progress = True
        return progress

    def _drain_to_l2(self) -> bool:
        progress = False
        for _ in range(self.width):
            if not self._to_l2:
                break
            if not self.l2_port.send(self._to_l2[0]):
                break
            self._to_l2.popleft()
            progress = True
        return progress

    def _drain_to_l1(self) -> bool:
        progress = False
        for _ in range(self.width):
            if not self._to_l1:
                break
            if not self.l1_port.send(self._to_l1[0]):
                break
            self._to_l1.popleft()
            progress = True
        return progress
