"""Kernel descriptors and run-time kernel state.

This model is *trace-driven*: a kernel is a grid of workgroups, each made
of wavefronts, and each wavefront is a generator of timing ops:

* ``("compute", n)`` — busy for *n* cycles;
* ``("load", addr, nbytes)`` — issue a read to the memory hierarchy;
* ``("store", addr, nbytes)`` — issue a write.

The workload modules (:mod:`repro.workloads`) supply programs whose
address streams have the locality/striding of the real OpenCL kernels.
AkitaRTM never looks at instructions — only at component state and the
progress counts kept in :class:`KernelState` — so this preserves
everything the paper's analyses observe (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Tuple

#: One wavefront op. ("compute", cycles) | ("load"|"store", addr, nbytes)
Op = Tuple
#: (workgroup id, wavefront id) -> op stream
ProgramFn = Callable[[int, int], Iterator[Op]]


@dataclass(frozen=True)
class KernelDescriptor:
    """Static description of a kernel grid."""

    name: str
    num_workgroups: int
    wavefronts_per_wg: int
    program: ProgramFn

    def __post_init__(self) -> None:
        if self.num_workgroups <= 0 or self.wavefronts_per_wg <= 0:
            raise ValueError("kernel grid dimensions must be positive")

    def __getstate__(self) -> dict:
        """Checkpoints drop the program: it is a (usually nested)
        generator function.  :func:`repro.checkpoint.load_checkpoint`
        reinstalls it from the workload by kernel name."""
        state = self.__dict__.copy()
        state["program"] = None
        return state

    def install_program(self, program: ProgramFn) -> None:
        """Reattach *program* after a restore (frozen-dataclass safe)."""
        object.__setattr__(self, "program", program)


@dataclass
class KernelState:
    """Progress of one kernel launch, in units of workgroups.

    This is the backing store of AkitaRTM's default progress bar: the
    paper shows kernel progress "in terms of how many blocks have
    completed execution" with finished / executing / not-started
    segments.
    """

    descriptor: KernelDescriptor
    total: int = 0
    completed: int = 0
    ongoing: int = 0

    def __post_init__(self) -> None:
        if self.total == 0:
            self.total = self.descriptor.num_workgroups

    @property
    def not_started(self) -> int:
        return self.total - self.completed - self.ongoing

    @property
    def done(self) -> bool:
        return self.completed >= self.total

    def start_wg(self) -> None:
        self.ongoing += 1

    def finish_wg(self) -> None:
        self.ongoing -= 1
        self.completed += 1


@dataclass
class MemCopyState:
    """Progress of one host↔device memory copy, in bytes."""

    total_bytes: int
    copied_bytes: int = 0
    direction: str = "h2d"

    @property
    def done(self) -> bool:
        return self.copied_bytes >= self.total_bytes
