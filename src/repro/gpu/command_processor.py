"""The per-GPU command processor.

Relays commands between the host driver and the GPU-internal dispatcher.
Kept as a distinct component (as in MGPUSim) so the monitored component
tree shows the real control-plane topology.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..akita.component import TickingComponent
from ..akita.engine import Engine
from ..akita.message import Msg
from ..akita.port import Port
from ..akita.ticker import GHZ
from .protocol import KernelCompleteMsg, LaunchKernelMsg


class CommandProcessor(TickingComponent):
    """Front door of one GPU chiplet."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 driver_buf: int = 4, dispatcher_buf: int = 4):
        super().__init__(name, engine, freq)
        self.driver_port = self.add_port("ToDriver", driver_buf)
        self.dispatcher_port = self.add_port("ToDispatcher", dispatcher_buf)
        self._dispatcher_in: Optional[Port] = None
        self._to_dispatcher: Deque[Msg] = deque()
        self._to_driver: Deque[Msg] = deque()
        self._reply_port: Optional[Port] = None
        self.num_kernels_launched = 0

    def connect(self, dispatcher_in: Port) -> None:
        self._dispatcher_in = dispatcher_in

    def tick(self) -> bool:
        progress = False
        progress |= self._drain(self._to_dispatcher, self.dispatcher_port)
        progress |= self._drain(self._to_driver, self.driver_port)
        progress |= self._intake_driver()
        progress |= self._intake_dispatcher()
        return progress

    def _intake_driver(self) -> bool:
        progress = False
        while True:
            msg = self.driver_port.peek_incoming()
            if not isinstance(msg, LaunchKernelMsg):
                break
            self.driver_port.retrieve_incoming()
            assert self._dispatcher_in is not None
            fwd = LaunchKernelMsg(self._dispatcher_in, msg.kernel,
                                  msg.wg_ids)
            self._reply_port = msg.src
            self._to_dispatcher.append(fwd)
            self.num_kernels_launched += 1
            progress = True
        return progress

    def _intake_dispatcher(self) -> bool:
        progress = False
        while True:
            msg = self.dispatcher_port.peek_incoming()
            if not isinstance(msg, KernelCompleteMsg):
                break
            self.dispatcher_port.retrieve_incoming()
            fwd = KernelCompleteMsg(self._reply_port, msg.launch_id)
            self._to_driver.append(fwd)
            progress = True
        return progress

    def _drain(self, queue: Deque[Msg], port: Port) -> bool:
        progress = False
        while queue:
            if not port.send(queue[0]):
                break
            queue.popleft()
            progress = True
        return progress
