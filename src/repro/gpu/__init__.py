"""``repro.gpu`` — an MGPUSim-style multi-chiplet GPU simulator.

Built on :mod:`repro.akita`.  The public entry points are
:class:`GPUPlatform` / :class:`GPUPlatformConfig` (assembly),
:class:`Driver` (command queue), and :class:`KernelDescriptor`
(trace-driven kernels supplied by :mod:`repro.workloads`).
"""

from .addressing import AddressMapper
from .addr_translator import AddressTranslator
from .cache.l1 import L1VCache
from .cache.l2 import L2Cache
from .cache.mshr import MSHR, MSHREntry
from .cache.tags import SetAssocTags, Victim
from .cache.writebuffer import WriteBuffer
from .command_processor import CommandProcessor
from .cu import ComputeUnit
from .debug import TickRecord, TickStepper
from .dispatcher import Dispatcher
from .dram import DRAMController
from .driver import Driver
from .kernel import KernelDescriptor, KernelState, MemCopyState
from .mem import (
    CACHE_LINE_SIZE,
    DataReadyRsp,
    EvictionReq,
    FetchedData,
    MemReq,
    MemRsp,
    NetMsg,
    ReadReq,
    WriteDoneRsp,
    WriteReq,
    line_address,
)
from .network import ChipletSwitch
from .platform import Chiplet, GPUPlatform, GPUPlatformConfig
from .rdma import RDMAEngine
from .rob import ReorderBuffer
from .tlb import TLB

__all__ = [
    "AddressMapper",
    "AddressTranslator",
    "CACHE_LINE_SIZE",
    "Chiplet",
    "ChipletSwitch",
    "CommandProcessor",
    "ComputeUnit",
    "DataReadyRsp",
    "Dispatcher",
    "DRAMController",
    "Driver",
    "EvictionReq",
    "FetchedData",
    "GPUPlatform",
    "GPUPlatformConfig",
    "KernelDescriptor",
    "KernelState",
    "L1VCache",
    "L2Cache",
    "MemCopyState",
    "MemReq",
    "MemRsp",
    "MSHR",
    "MSHREntry",
    "NetMsg",
    "RDMAEngine",
    "ReadReq",
    "ReorderBuffer",
    "SetAssocTags",
    "TickRecord",
    "TickStepper",
    "TLB",
    "Victim",
    "WriteBuffer",
    "WriteDoneRsp",
    "WriteReq",
    "line_address",
]
