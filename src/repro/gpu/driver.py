"""The host-side driver.

Owns the command queue of a simulated application run: host↔device
memory copies and kernel launches, processed strictly in order (one
command at a time, as MGPUSim's driver does for a single queue).

* Memory copies are modelled as DMA at a fixed bytes-per-cycle rate;
  their progress backs the "bytes copied" progress bar the paper
  mentions as a developer-defined bar.
* Kernel launches split the workgroup grid round-robin across all GPUs
  (MGPUSim's multi-GPU workgroup partitioning) and wait for every
  command processor to report completion.

``Driver.all_done`` is the Simulation's completion condition — the
predicate that distinguishes a finished run from a hang.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..akita.component import TickingComponent
from ..akita.engine import Engine
from ..akita.port import Port
from ..akita.ticker import GHZ
from .kernel import KernelDescriptor, KernelState, MemCopyState
from .protocol import KernelCompleteMsg, LaunchKernelMsg


class _Command:
    kind = "abstract"


class _MemCopyCommand(_Command):
    def __init__(self, nbytes: int, direction: str):
        self.state = MemCopyState(nbytes, direction=direction)
        self.kind = f"memcopy_{direction}"


class _KernelCommand(_Command):
    def __init__(self, descriptor: KernelDescriptor):
        self.descriptor = descriptor
        self.state: Optional[KernelState] = None
        self.kind = "kernel"
        self.completions_needed = 0
        self.completions_seen = 0
        self.launch_sent = False


class Driver(TickingComponent):
    """Host driver and command queue."""

    def __init__(self, name: str, engine: Engine, freq: float = GHZ,
                 gpu_buf: int = 16, dma_bytes_per_cycle: int = 256):
        super().__init__(name, engine, freq)
        self.gpu_port = self.add_port("ToGPU", gpu_buf)
        self.dma_bytes_per_cycle = dma_bytes_per_cycle
        self._cp_ports: List[Port] = []
        self._queue: Deque[_Command] = deque()
        self._current: Optional[_Command] = None
        self._pending_launches: Deque[LaunchKernelMsg] = deque()
        self.commands_completed = 0
        self.kernels: List[KernelState] = []       # all launched kernels
        self.memcopies: List[MemCopyState] = []    # all memcopy states

    def connect_gpu(self, cp_driver_port: Port) -> None:
        """Attach one GPU chiplet (its command processor's driver port)."""
        self._cp_ports.append(cp_driver_port)

    # -- application-facing API ----------------------------------------------
    def memcopy_h2d(self, nbytes: int) -> MemCopyState:
        cmd = _MemCopyCommand(nbytes, "h2d")
        self._queue.append(cmd)
        self.memcopies.append(cmd.state)
        return cmd.state

    def memcopy_d2h(self, nbytes: int) -> MemCopyState:
        cmd = _MemCopyCommand(nbytes, "d2h")
        self._queue.append(cmd)
        self.memcopies.append(cmd.state)
        return cmd.state

    def launch_kernel(self, descriptor: KernelDescriptor) -> KernelState:
        cmd = _KernelCommand(descriptor)
        cmd.state = KernelState(descriptor)
        self._queue.append(cmd)
        self.kernels.append(cmd.state)
        return cmd.state

    @property
    def all_done(self) -> bool:
        """True when every enqueued command has completed."""
        return self._current is None and not self._queue

    @property
    def queue_length(self) -> int:
        return len(self._queue) + (1 if self._current else 0)

    # -- execution -------------------------------------------------------------
    def tick(self) -> bool:
        progress = False
        progress |= self._send_pending_launches()
        if self._current is None:
            if not self._queue:
                return progress
            self._current = self._queue.popleft()
            self._start_command(self._current)
            progress = True
        cmd = self._current
        if isinstance(cmd, _MemCopyCommand):
            progress |= self._advance_memcopy(cmd)
        else:
            assert isinstance(cmd, _KernelCommand)
            progress |= self._advance_kernel(cmd)
        return progress

    def _start_command(self, cmd: _Command) -> None:
        if isinstance(cmd, _KernelCommand):
            num_gpus = len(self._cp_ports)
            assert num_gpus > 0, "driver has no GPUs attached"
            shares: List[List[int]] = [[] for _ in range(num_gpus)]
            for wg_id in range(cmd.descriptor.num_workgroups):
                shares[wg_id % num_gpus].append(wg_id)
            for cp_port, wg_ids in zip(self._cp_ports, shares):
                if not wg_ids:
                    continue
                self._pending_launches.append(
                    LaunchKernelMsg(cp_port, cmd.state, wg_ids))
                cmd.completions_needed += 1

    def _advance_memcopy(self, cmd: _MemCopyCommand) -> bool:
        state = cmd.state
        state.copied_bytes = min(
            state.total_bytes, state.copied_bytes + self.dma_bytes_per_cycle)
        if state.done:
            self._finish_current()
        return True

    def _advance_kernel(self, cmd: _KernelCommand) -> bool:
        progress = False
        while True:
            msg = self.gpu_port.peek_incoming()
            if not isinstance(msg, KernelCompleteMsg):
                break
            self.gpu_port.retrieve_incoming()
            cmd.completions_seen += 1
            progress = True
        if (cmd.completions_seen >= cmd.completions_needed
                and not self._pending_launches):
            self._finish_current()
            progress = True
        return progress

    def _send_pending_launches(self) -> bool:
        progress = False
        while self._pending_launches:
            if not self.gpu_port.send(self._pending_launches[0]):
                break
            self._pending_launches.popleft()
            progress = True
        return progress

    def _finish_current(self) -> None:
        self._current = None
        self.commands_completed += 1
