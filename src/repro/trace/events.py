"""Trace records and their vocabulary.

A :class:`TraceEvent` is one observed fact about the simulation: a
message crossed a port, a buffer slot filled or drained, a component
started or finished a unit of work.  Events are deliberately flat (all
scalar fields) so the same record round-trips unchanged through the
ring buffer, the SQLite backend, JSONL files and the Perfetto exporter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class TraceKind:
    """String constants for :attr:`TraceEvent.kind`.

    Plain strings (not an Enum) so events serialize without conversion
    and SQLite rows compare directly.
    """

    SEND = "send"            #: a port successfully sent a message
    DELIVER = "deliver"      #: a message landed in a port's buffer
    RETRIEVE = "retrieve"    #: a component consumed a buffered message
    DROP = "drop"            #: an in-transit message was lost (faults)
    TASK_BEGIN = "task_begin"
    TASK_END = "task_end"

    ALL = (SEND, DELIVER, RETRIEVE, DROP, TASK_BEGIN, TASK_END)
    #: The subset describing message lifecycle (vs. component tasks).
    MESSAGE = (SEND, DELIVER, RETRIEVE, DROP)


#: Column order shared by the SQLite schema and the JSONL records.
FIELDS = ("seq", "time", "kind", "component", "what", "msg_id",
          "msg_type", "src", "dst", "extra")


class TraceEvent:
    """One recorded simulation fact.

    Attributes
    ----------
    seq:
        Monotonic sequence number assigned by the store; total order of
        recording (virtual time alone has heavy ties).
    time:
        Virtual time of the event in seconds.
    kind:
        One of :class:`TraceKind`.
    component:
        Hierarchical name of the component (or connection, for drops)
        that observed the event.
    what:
        The port/buffer the event touched, or the task's display label.
    msg_id, msg_type:
        Message identity and class name for message events; ``None``/
        task kind for task events.
    src, dst:
        Source/destination port names of the message (when known).
    extra:
        Free-form detail: buffer occupancy ``"3/8"`` on deliver /
        retrieve, ``"re:<id>"`` linking a response to its request,
        stringified task id on task events.
    """

    __slots__ = FIELDS

    def __init__(self, time: float, kind: str, component: str,
                 what: str = "", msg_id: Optional[int] = None,
                 msg_type: str = "", src: str = "", dst: str = "",
                 extra: str = "", seq: int = -1):
        self.seq = seq
        self.time = time
        self.kind = kind
        self.component = component
        self.what = what
        self.msg_id = msg_id
        self.msg_type = msg_type
        self.src = src
        self.dst = dst
        self.extra = extra

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in FIELDS}

    def to_row(self) -> Tuple:
        return tuple(getattr(self, name) for name in FIELDS)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(**{name: data.get(name) for name in FIELDS
                      if name not in ("seq",)},
                   seq=data.get("seq", -1))

    @classmethod
    def from_row(cls, row: Tuple) -> "TraceEvent":
        seq, time, kind, component, what, msg_id, msg_type, src, dst, \
            extra = row
        return cls(time, kind, component, what, msg_id, msg_type,
                   src or "", dst or "", extra or "", seq=seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.to_row() == other.to_row()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        subject = f"msg#{self.msg_id}" if self.msg_id is not None \
            else self.what
        return (f"<TraceEvent #{self.seq} t={self.time:g} "
                f"{self.kind} {self.component} {subject}>")


def message_path(events: List[TraceEvent]) -> List[str]:
    """Render a message's recorded hops as human-readable lines.

    *events* should be the (seq-ordered) result of following one
    message id; see :meth:`repro.trace.Tracer.follow`.
    """
    lines: List[str] = []
    for ev in events:
        if ev.kind == TraceKind.SEND:
            lines.append(f"t={ev.time:.4g} sent {ev.msg_type}"
                         f"#{ev.msg_id}: {ev.src} -> {ev.dst}")
        elif ev.kind == TraceKind.DELIVER:
            lines.append(f"t={ev.time:.4g} delivered at {ev.what} "
                         f"(buf {ev.extra})")
        elif ev.kind == TraceKind.RETRIEVE:
            lines.append(f"t={ev.time:.4g} consumed by {ev.component}")
        elif ev.kind == TraceKind.DROP:
            lines.append(f"t={ev.time:.4g} DROPPED in transit on "
                         f"{ev.component} ({ev.src} -> {ev.dst})")
        else:
            lines.append(f"t={ev.time:.4g} {ev.kind} {ev.what}")
    return lines
