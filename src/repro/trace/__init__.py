"""``repro.trace`` — always-on task/message tracing with a queryable
store and Perfetto export.

AkitaRTM (``repro.core``) shows the simulation's *present*; this
subsystem records its *past*.  Every message hop (send / deliver /
retrieve / drop) and every annotated component task (CU workgroups,
cache misses, RDMA transfers) becomes a :class:`TraceEvent` in a
bounded ring buffer or a durable SQLite file, query-able by component
regex, kind, time window or message id, and exportable to JSONL or the
Chrome/Perfetto ``trace_event`` format (opens in ui.perfetto.dev).

Typical usage::

    from repro.trace import Tracer, RingStore
    from repro.gpu import GPUPlatform

    platform = GPUPlatform()
    tracer = Tracer(platform.simulation, RingStore(capacity=100_000))
    tracer.start()
    platform.run()
    tracer.stop()

    hops = tracer.query(component=r"RDMA", kind="deliver")
    print("\\n".join(tracer.path(hops[0].msg_id)))
    from repro.trace import write_perfetto
    write_perfetto(tracer.query(limit=0), "trace.json")

Recording costs nothing when no tracer is attached: the framework's
hook fast paths (``if self._hooks``) skip even the hook-context
construction, exactly like the fault injector.
"""

from .events import FIELDS, TraceEvent, TraceKind, message_path
from .export import (
    EXPORT_FORMATS,
    export_events,
    read_jsonl,
    to_perfetto,
    write_jsonl,
    write_perfetto,
)
from .store import NO_LIMIT, RingStore, SQLiteStore, TraceStore
from .tracer import Tracer

__all__ = [
    "EXPORT_FORMATS",
    "FIELDS",
    "NO_LIMIT",
    "RingStore",
    "SQLiteStore",
    "TraceEvent",
    "TraceKind",
    "TraceStore",
    "Tracer",
    "export_events",
    "message_path",
    "read_jsonl",
    "to_perfetto",
    "write_jsonl",
    "write_perfetto",
]
