"""Trace storage backends.

Two implementations behind one API:

* :class:`RingStore` — a bounded in-memory ring.  Appends are O(1) and
  allocation-free beyond the event object itself; the oldest events
  fall off when the ring is full (``dropped`` counts them).  This is
  the always-on default: a crashed or hung run still holds its last
  N events for the watchdog post-mortem.
* :class:`SQLiteStore` — a durable on-disk store in WAL mode.  Appends
  are buffered and written with ``executemany`` once per *batch* (or
  per wall-clock flush interval), so per-event cost stays near the
  ring's.  Queries flush first, so readers always see a consistent
  prefix.

Both support the same filtered query: component-name regex, kind set,
virtual-time window, message id, bounded to the most recent *limit*
matches.
"""

from __future__ import annotations

import re
import sqlite3
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence

from .events import FIELDS, TraceEvent

#: ``limit=0`` means "no limit" in the query API.
NO_LIMIT = 0


def _compile(pattern: Optional[str]) -> Optional["re.Pattern"]:
    return re.compile(pattern) if pattern else None


def _match(ev: TraceEvent, component_re, kinds, t0, t1, msg_id) -> bool:
    if kinds is not None and ev.kind not in kinds:
        return False
    if msg_id is not None and ev.msg_id != msg_id:
        return False
    if t0 is not None and ev.time < t0:
        return False
    if t1 is not None and ev.time > t1:
        return False
    if component_re is not None and not (
            component_re.search(ev.component)
            or component_re.search(ev.what)):
        return False
    return True


class TraceStore:
    """Base class: sequence numbering + the query contract."""

    backend = "base"

    def __init__(self) -> None:
        self._next_seq = 0
        self.recorded = 0  # total events ever appended

    # -- writing -----------------------------------------------------------
    def append(self, event: TraceEvent) -> TraceEvent:
        """Assign the next sequence number and persist *event*."""
        event.seq = self._next_seq
        self._next_seq += 1
        self.recorded += 1
        self._store(event)
        return event

    def _store(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Make all appended events visible to queries."""

    def close(self) -> None:
        self.flush()

    def clear(self) -> None:
        raise NotImplementedError

    # -- reading -----------------------------------------------------------
    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def dropped(self) -> int:
        """Events lost to capacity bounds (0 for durable backends)."""
        return 0

    def tail(self, n: int) -> List[TraceEvent]:
        """The most recent *n* events, oldest first."""
        return self.query(limit=n)

    def query(self, component: Optional[str] = None,
              kind: Optional[Iterable[str]] = None,
              t0: Optional[float] = None, t1: Optional[float] = None,
              msg_id: Optional[int] = None,
              limit: int = 1000) -> List[TraceEvent]:
        """Filtered events, oldest first.

        Parameters
        ----------
        component:
            Regex searched against both the component name and the
            port/task label (``what``).
        kind:
            Event kind, or iterable of kinds, to keep.
        t0, t1:
            Inclusive virtual-time window.
        msg_id:
            Keep only this message's lifecycle events.
        limit:
            Keep the most recent *limit* matches (``0`` = all).
        """
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "events": len(self),
            "recorded": self.recorded,
            "dropped": self.dropped,
        }


def _normalize_kinds(kind) -> Optional[frozenset]:
    if kind is None:
        return None
    if isinstance(kind, str):
        return frozenset((kind,))
    return frozenset(kind)


class RingStore(TraceStore):
    """Bounded in-memory store (the always-on default)."""

    backend = "ring"

    def __init__(self, capacity: int = 65536):
        super().__init__()
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._ring: Deque[TraceEvent] = deque(maxlen=self.capacity)

    def _store(self, event: TraceEvent) -> None:
        self._ring.append(event)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._ring)

    def tail(self, n: int) -> List[TraceEvent]:
        if n <= 0:
            return []
        # Snapshot first: the simulation thread may append concurrently.
        snapshot = list(self._ring)
        return snapshot[-n:]

    def query(self, component: Optional[str] = None,
              kind: Optional[Iterable[str]] = None,
              t0: Optional[float] = None, t1: Optional[float] = None,
              msg_id: Optional[int] = None,
              limit: int = 1000) -> List[TraceEvent]:
        component_re = _compile(component)
        kinds = _normalize_kinds(kind)
        matches = [ev for ev in list(self._ring)
                   if _match(ev, component_re, kinds, t0, t1, msg_id)]
        if limit and limit != NO_LIMIT:
            matches = matches[-limit:]
        return matches

    def stats(self) -> Dict[str, Any]:
        data = super().stats()
        data["capacity"] = self.capacity
        return data


_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS events (
    seq INTEGER PRIMARY KEY,
    time REAL NOT NULL,
    kind TEXT NOT NULL,
    component TEXT NOT NULL,
    what TEXT,
    msg_id INTEGER,
    msg_type TEXT,
    src TEXT,
    dst TEXT,
    extra TEXT
);
CREATE INDEX IF NOT EXISTS idx_events_msg ON events (msg_id);
CREATE INDEX IF NOT EXISTS idx_events_time ON events (time);
CREATE INDEX IF NOT EXISTS idx_events_kind ON events (kind);
"""

_INSERT = (f"INSERT OR REPLACE INTO events ({', '.join(FIELDS)}) "
           f"VALUES ({', '.join('?' * len(FIELDS))})")


class SQLiteStore(TraceStore):
    """Durable on-disk store: WAL mode, batched inserts.

    Appends land in an in-memory pending list and are flushed with one
    ``executemany`` when the batch fills or ``flush_interval`` wall
    seconds have passed — the per-event hot path is a list append.
    The connection is shared across threads (simulation thread writes,
    HTTP server threads query) behind one lock.
    """

    backend = "sqlite"

    def __init__(self, path: str, batch_size: int = 512,
                 flush_interval: float = 0.25):
        super().__init__()
        self.path = str(path)
        self.batch_size = int(batch_size)
        self.flush_interval = float(flush_interval)
        self._pending: List[tuple] = []
        self._last_flush = time.monotonic()
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.commit()
        # Resume numbering after an existing file.
        row = self._conn.execute("SELECT MAX(seq) FROM events").fetchone()
        if row and row[0] is not None:
            self._next_seq = row[0] + 1

    def _store(self, event: TraceEvent) -> None:
        self._pending.append(event.to_row())
        if (len(self._pending) >= self.batch_size
                or time.monotonic() - self._last_flush
                >= self.flush_interval):
            self.flush()

    def flush(self) -> None:
        with self._lock:
            if not self._pending:
                self._last_flush = time.monotonic()
                return
            batch, self._pending = self._pending, []
            self._conn.executemany(_INSERT, batch)
            self._conn.commit()
            self._last_flush = time.monotonic()

    def close(self) -> None:
        with self._lock:
            self.flush()
            self._conn.close()

    def clear(self) -> None:
        with self._lock:
            self._pending.clear()
            self._conn.execute("DELETE FROM events")
            self._conn.commit()

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM events").fetchone()
            return row[0] + len(self._pending)

    def query(self, component: Optional[str] = None,
              kind: Optional[Iterable[str]] = None,
              t0: Optional[float] = None, t1: Optional[float] = None,
              msg_id: Optional[int] = None,
              limit: int = 1000) -> List[TraceEvent]:
        self.flush()
        clauses: List[str] = []
        args: List[Any] = []
        kinds = _normalize_kinds(kind)
        if kinds is not None:
            clauses.append(
                f"kind IN ({', '.join('?' * len(kinds))})")
            args.extend(sorted(kinds))
        if msg_id is not None:
            clauses.append("msg_id = ?")
            args.append(msg_id)
        if t0 is not None:
            clauses.append("time >= ?")
            args.append(t0)
        if t1 is not None:
            clauses.append("time <= ?")
            args.append(t1)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = (f"SELECT {', '.join(FIELDS)} FROM events {where} "
               f"ORDER BY seq")
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        events = [TraceEvent.from_row(row) for row in rows]
        component_re = _compile(component)
        if component_re is not None:
            events = [ev for ev in events
                      if component_re.search(ev.component)
                      or component_re.search(ev.what)]
        if limit and limit != NO_LIMIT:
            events = events[-limit:]
        return events

    def stats(self) -> Dict[str, Any]:
        data = super().stats()
        data["path"] = self.path
        data["batch_size"] = self.batch_size
        return data
