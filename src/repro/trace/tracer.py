"""The tracer: turns hook firings into stored :class:`TraceEvent`\\ s.

A :class:`Tracer` attaches one hook to every component (for port and
task events) and every connection (for in-transit drops) of a
simulation.  Detached, the simulation pays nothing: the hook fast paths
(``if self._hooks``) never construct a context.  Attached, each event
costs one dict-free object append into the configured store.

The per-message linkage rule: a message keeps its id for one hop
(send → deliver → retrieve, or send → drop).  Components forward work
as *new* messages, so a request's journey through the hierarchy is a
chain of hops; responses carry ``re:<request id>`` in ``extra`` so the
two directions can be paired.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Optional

from ..akita.hooks import HookCtx, HookPos
from ..akita.simulation import Simulation
from .events import TraceEvent, TraceKind, message_path
from .store import RingStore, TraceStore

#: HookPos -> TraceKind for the port-lifecycle hooks.
_PORT_KINDS = {
    HookPos.PORT_SEND: TraceKind.SEND,
    HookPos.PORT_DELIVER: TraceKind.DELIVER,
    HookPos.PORT_RETRIEVE: TraceKind.RETRIEVE,
}


def _response_link(msg: Any) -> str:
    """``"re:<id>"`` when *msg* answers an earlier request."""
    original = getattr(msg, "respond_to", None)
    if original is None:
        original = getattr(msg, "original_id", None)
    return f"re:{original}" if original is not None else ""


class Tracer:
    """Records the lifecycle of messages and tasks in one simulation."""

    def __init__(self, simulation: Simulation,
                 store: Optional[TraceStore] = None,
                 include: Optional[str] = None):
        """
        Parameters
        ----------
        simulation:
            The simulation to observe.
        store:
            Event sink; defaults to a :class:`RingStore`.
        include:
            Optional component-name regex.  Only matching components are
            hooked, so excluded components pay zero recording cost (the
            filter acts at attach time, not per event).
        """
        self.simulation = simulation
        self.store = store if store is not None else RingStore()
        self.include = include
        self._recording = False
        self._hooked_components: List[Any] = []
        self._hooked_connections: List[Any] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def recording(self) -> bool:
        return self._recording

    def start(self) -> None:
        """Attach hooks and begin recording (idempotent)."""
        if self._recording:
            return
        pattern = re.compile(self.include) if self.include else None
        for component in self.simulation.components:
            if pattern is None or pattern.search(component.name):
                component.accept_hook(self._on_hook)
                self._hooked_components.append(component)
        for conn in self.simulation.connections:
            conn.accept_hook(self._on_hook)
            self._hooked_connections.append(conn)
        self._recording = True

    def stop(self) -> None:
        """Detach all hooks and flush the store (idempotent)."""
        for component in self._hooked_components:
            component.remove_hook(self._on_hook)
        for conn in self._hooked_connections:
            conn.remove_hook(self._on_hook)
        self._hooked_components.clear()
        self._hooked_connections.clear()
        self.store.flush()
        self._recording = False

    def close(self) -> None:
        self.stop()
        self.store.close()

    def clear(self) -> None:
        self.store.clear()

    # ------------------------------------------------------------------
    # The hook (runs on the simulation thread; must stay cheap)
    # ------------------------------------------------------------------
    def _on_hook(self, ctx: HookCtx) -> None:
        pos = ctx.pos
        kind = _PORT_KINDS.get(pos)
        if kind is not None:
            port = ctx.domain
            msg = ctx.item
            comp = port.component
            src = msg.src.name if msg.src is not None else ""
            dst = msg.dst.name if msg.dst is not None else ""
            extra = _response_link(msg)
            if kind != TraceKind.SEND:
                occupancy = f"{port.buf.size}/{port.buf.capacity}"
                extra = f"{occupancy} {extra}".rstrip()
            self.store.append(TraceEvent(
                ctx.now, kind, comp.name if comp is not None else "",
                port.name, msg.id, type(msg).__name__, src, dst, extra))
        elif pos is HookPos.CONN_DROP:
            transfer = ctx.item
            msg = transfer.msg
            src = msg.src.name if msg.src is not None else ""
            dst = msg.dst.name if msg.dst is not None else ""
            self.store.append(TraceEvent(
                ctx.now, TraceKind.DROP, ctx.domain.name, ctx.domain.name,
                msg.id, type(msg).__name__, src, dst,
                _response_link(msg)))
        elif pos is HookPos.TASK_BEGIN or pos is HookPos.TASK_END:
            info = ctx.item
            kind = TraceKind.TASK_BEGIN if pos is HookPos.TASK_BEGIN \
                else TraceKind.TASK_END
            self.store.append(TraceEvent(
                ctx.now, kind, ctx.domain.name, info.what, None,
                info.kind, extra=str(info.task_id)))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, **filters) -> List[TraceEvent]:
        """Delegates to the store; see :meth:`TraceStore.query`."""
        return self.store.query(**filters)

    def follow(self, msg_id: int) -> List[TraceEvent]:
        """Every recorded lifecycle event of message *msg_id*, plus the
        events of responses that answer it, oldest first."""
        events = self.store.query(msg_id=msg_id, limit=0)
        link = f"re:{msg_id}"
        followups = [ev for ev in self.store.query(limit=0)
                     if link in ev.extra.split()]
        merged = {ev.seq: ev for ev in events + followups}
        return [merged[seq] for seq in sorted(merged)]

    def path(self, msg_id: int) -> List[str]:
        """Human-readable hop list for message *msg_id*."""
        return message_path(self.follow(msg_id))

    # ------------------------------------------------------------------
    # Introspection (drives /api/trace)
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        return {
            "recording": self._recording,
            "include": self.include,
            "hooked_components": len(self._hooked_components),
            "hooked_connections": len(self._hooked_connections),
            "store": self.store.stats(),
        }
