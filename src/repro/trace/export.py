"""Trace exporters: JSONL and Chrome/Perfetto ``trace_event`` format.

The Perfetto document opens directly in https://ui.perfetto.dev (or
``chrome://tracing``): one thread track per component showing its
message hops as thin slices connected by flow arrows, and its annotated
tasks (workgroups, cache misses, RDMA transfers) as async spans.

Time base: the exporter maps **1 simulated nanosecond to 1 displayed
microsecond** (``ts = time * 1e9``).  GPU events are nanosecond-scale
and the trace_event format's ``ts`` field is microseconds with limited
sub-microsecond resolution, so the 1000x stretch keeps single-cycle
events visible.  Read the UI's "µs" as simulated ns.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.atomicio import atomic_write_text
from .events import TraceEvent, TraceKind

#: Simulated seconds -> exported ``ts`` units (see module docstring).
TS_SCALE = 1e9

#: Duration given to instantaneous port events so they render as
#: visible slices (in ``ts`` units — 0.1 simulated ns).
_HOP_DUR = 0.1


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(events: Iterable[TraceEvent], path) -> Path:
    """One JSON object per line; the streaming-friendly archive format.

    Rendered in memory, written atomically: an event source raising
    mid-iteration (a store read hitting damage) leaves no partial
    file for a downstream reader to trip over."""
    target = Path(path)
    buffer = io.StringIO()
    for ev in events:
        buffer.write(json.dumps(ev.to_dict()) + "\n")
    atomic_write_text(target, buffer.getvalue())
    return target


def read_jsonl(path) -> List[TraceEvent]:
    """Load events written by :func:`write_jsonl`."""
    events = []
    with Path(path).open() as f:
        for line in f:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Perfetto / Chrome trace_event
# ----------------------------------------------------------------------
def to_perfetto(events: Sequence[TraceEvent],
                trace_name: str = "repro.trace") -> Dict[str, Any]:
    """Build a ``trace_event`` JSON document from *events*."""
    pid = 1
    tids: Dict[str, int] = {}
    out: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": trace_name},
    }]

    def tid_of(component: str) -> int:
        tid = tids.get(component)
        if tid is None:
            tid = len(tids) + 1
            tids[component] = tid
            out.append({"ph": "M", "pid": pid, "tid": tid,
                        "name": "thread_name",
                        "args": {"name": component or "(unowned)"}})
        return tid

    #: msg_id -> send record, for flow arrows send -> deliver.
    flow_ids: Dict[int, int] = {}
    next_flow = 1

    for ev in events:
        tid = tid_of(ev.component)
        ts = ev.time * TS_SCALE
        if ev.kind in TraceKind.MESSAGE:
            name = f"{ev.kind} {ev.msg_type}#{ev.msg_id}"
            args = {"port": ev.what, "src": ev.src, "dst": ev.dst,
                    "msg_id": ev.msg_id, "seq": ev.seq}
            if ev.extra:
                args["detail"] = ev.extra
            out.append({"ph": "X", "pid": pid, "tid": tid, "ts": ts,
                        "dur": _HOP_DUR, "name": name,
                        "cat": ev.kind, "args": args})
            # Flow arrow from the send slice to the deliver/drop slice.
            if ev.kind == TraceKind.SEND and ev.msg_id is not None:
                flow_ids[ev.msg_id] = next_flow
                out.append({"ph": "s", "pid": pid, "tid": tid, "ts": ts,
                            "id": next_flow, "name": "hop",
                            "cat": "msg"})
                next_flow += 1
            elif ev.kind in (TraceKind.DELIVER, TraceKind.DROP):
                flow = flow_ids.pop(ev.msg_id, None)
                if flow is not None:
                    out.append({"ph": "f", "bp": "e", "pid": pid,
                                "tid": tid, "ts": ts, "id": flow,
                                "name": "hop", "cat": "msg"})
        elif ev.kind == TraceKind.TASK_BEGIN:
            out.append({"ph": "b", "pid": pid, "tid": tid, "ts": ts,
                        "id": f"{ev.component}:{ev.extra}",
                        "cat": ev.msg_type or "task",
                        "name": ev.what or ev.msg_type or "task",
                        "args": {"task_id": ev.extra, "seq": ev.seq}})
        elif ev.kind == TraceKind.TASK_END:
            out.append({"ph": "e", "pid": pid, "tid": tid, "ts": ts,
                        "id": f"{ev.component}:{ev.extra}",
                        "cat": ev.msg_type or "task",
                        "name": ev.what or ev.msg_type or "task"})
    return {
        "traceEvents": out,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.trace",
            "time_base": "1 displayed us = 1 simulated ns",
        },
    }


def write_perfetto(events: Sequence[TraceEvent], path,
                   trace_name: str = "repro.trace") -> Path:
    """Write the Perfetto JSON document for *events* to *path*
    (atomically — the document is built before the target is touched).
    """
    target = Path(path)
    atomic_write_text(target, json.dumps(to_perfetto(events, trace_name)))
    return target


EXPORT_FORMATS = ("jsonl", "perfetto")


def export_events(events: Sequence[TraceEvent], fmt: str,
                  path: Optional[str] = None):
    """Dispatch: export *events* as *fmt*.

    With *path*, writes the file and returns its :class:`Path`.
    Without, returns the in-memory document (a list of dicts for
    ``jsonl``, the trace document dict for ``perfetto``).
    """
    if fmt not in EXPORT_FORMATS:
        raise ValueError(f"format must be one of {EXPORT_FORMATS}, "
                         f"got {fmt!r}")
    if fmt == "jsonl":
        if path is None:
            return [ev.to_dict() for ev in events]
        return write_jsonl(events, path)
    if path is None:
        return to_perfetto(events)
    return write_perfetto(events, path)
