"""Watchdog × tracer: post-mortems carry the trailing trace window."""

import time

from repro.core.bottleneck import BufferRow
from repro.core.hangdetect import HangStatus
from repro.core.watchdog import Watchdog, WatchdogConfig
from repro.trace import RingStore, TraceEvent, TraceKind


class FakeSimulation:
    def abort(self):
        pass


class FakeTracer:
    def __init__(self, store):
        self.store = store


class FakeMonitor:
    def __init__(self, tracer=None):
        self.tracer = tracer
        self._simulation = FakeSimulation()
        self._verdicts = [True, True, True, True, True]

    def hang_status(self):
        hung = self._verdicts.pop(0) if self._verdicts else False
        stuck = [BufferRow("GPU[0].L2[0].TopPort.Buf", 2, 16)] \
            if hung else []
        return HangStatus(hung, 2.5, 1e-6, "hung" if hung else "running",
                          5.0, stuck)

    def component_names(self):
        return ["GPU[0].L2[0]"]

    def tick_component(self, name):
        return True

    def kick_start(self):
        pass

    def overview(self):
        return {"run_state": "hung"}

    def progress_bars(self):
        return []


def _filled_store(n=100):
    store = RingStore(1000)
    for i in range(n):
        store.append(TraceEvent(i * 1e-9, TraceKind.SEND, "GPU[0].CU[0]",
                                "MemPort", i, "ReadReq"))
    return store


def _run_to_abort(monitor, **config_kw):
    wd = Watchdog(monitor, WatchdogConfig(check_interval=0.02,
                                          retry_wait=0.02,
                                          max_tick_retries=1,
                                          **config_kw))
    wd.start()
    deadline = time.monotonic() + 5.0
    while wd.state != "aborted" and time.monotonic() < deadline:
        time.sleep(0.01)
    wd.stop()
    assert wd.state == "aborted"
    return wd


def test_postmortem_includes_trace_window():
    monitor = FakeMonitor(FakeTracer(_filled_store(100)))
    wd = _run_to_abort(monitor, trace_window=16)
    window = wd.report["trace_window"]
    assert len(window) == 16
    # The tail: the most recent events, oldest first, as plain dicts.
    assert [ev["seq"] for ev in window] == list(range(84, 100))
    assert window[-1]["kind"] == TraceKind.SEND


def test_snapshot_includes_trace_window(tmp_path):
    monitor = FakeMonitor(FakeTracer(_filled_store(10)))
    wd = _run_to_abort(monitor, trace_window=64,
                       snapshot_dir=str(tmp_path))
    import json
    snapshots = sorted(tmp_path.glob("watchdog_snapshot_*.json"))
    assert snapshots
    snapshot = json.loads(snapshots[0].read_text())
    assert len(snapshot["trace_window"]) == 10  # fewer than the window


def test_no_tracer_means_empty_window():
    wd = _run_to_abort(FakeMonitor(tracer=None))
    assert wd.report["trace_window"] == []


def test_zero_window_disables_tail():
    monitor = FakeMonitor(FakeTracer(_filled_store(10)))
    wd = _run_to_abort(monitor, trace_window=0)
    assert wd.report["trace_window"] == []


def test_trace_window_in_config_dict():
    config = WatchdogConfig(trace_window=32)
    assert config.to_dict()["trace_window"] == 32


def test_broken_store_never_breaks_diagnostics():
    class BrokenStore:
        def tail(self, n):
            raise RuntimeError("boom")

    monitor = FakeMonitor(FakeTracer(BrokenStore()))
    wd = _run_to_abort(monitor)
    assert wd.report["trace_window"] == []
    assert wd.report["verdict"] == "aborted"
