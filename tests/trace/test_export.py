"""Exporter tests: JSONL round-trip and Perfetto document structure."""

import json

import pytest

from repro.trace import (
    TraceEvent,
    TraceKind,
    export_events,
    read_jsonl,
    to_perfetto,
    write_jsonl,
    write_perfetto,
)
from repro.trace.export import TS_SCALE


def _events():
    return [
        TraceEvent(1e-9, TraceKind.SEND, "A", "Out", 1, "ReadReq",
                   "A.Out", "B.In", seq=0),
        TraceEvent(2e-9, TraceKind.DELIVER, "B", "In", 1, "ReadReq",
                   "A.Out", "B.In", "1/4", seq=1),
        TraceEvent(2e-9, TraceKind.RETRIEVE, "B", "In", 1, "ReadReq",
                   "A.Out", "B.In", "0/4", seq=2),
        TraceEvent(3e-9, TraceKind.TASK_BEGIN, "B", "work", None,
                   "busy", extra="t1", seq=3),
        TraceEvent(4e-9, TraceKind.TASK_END, "B", "work", None,
                   "busy", extra="t1", seq=4),
        TraceEvent(5e-9, TraceKind.SEND, "B", "Out", 2, "WriteReq",
                   "B.Out", "C.In", seq=5),
        TraceEvent(5e-9, TraceKind.DROP, "ConnBC", "ConnBC", 2,
                   "WriteReq", "B.Out", "C.In", seq=6),
    ]


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(_events(), path)
    loaded = read_jsonl(path)
    assert loaded == _events()
    assert [ev.seq for ev in loaded] == [0, 1, 2, 3, 4, 5, 6]


def test_jsonl_is_one_object_per_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(_events(), path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 7
    assert json.loads(lines[0])["kind"] == "send"


def test_perfetto_document_shape():
    doc = to_perfetto(_events(), trace_name="unit")
    assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    process_meta = [e for e in events
                    if e["ph"] == "M" and e["name"] == "process_name"]
    assert process_meta[0]["args"]["name"] == "unit"
    thread_names = {e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"A", "B", "ConnBC"} <= thread_names


def test_perfetto_timestamps_are_scaled():
    doc = to_perfetto(_events())
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    send = [e for e in slices if e["name"].startswith("send ReadReq")][0]
    assert send["ts"] == pytest.approx(1e-9 * TS_SCALE)


def test_perfetto_flow_arrows_pair_send_with_deliver_and_drop():
    doc = to_perfetto(_events())
    starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
    finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
    # msg 1: send->deliver; msg 2: send->drop.
    assert len(starts) == 2 and len(finishes) == 2
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}


def test_perfetto_async_spans_for_tasks():
    doc = to_perfetto(_events())
    begins = [e for e in doc["traceEvents"] if e["ph"] == "b"]
    ends = [e for e in doc["traceEvents"] if e["ph"] == "e"]
    assert len(begins) == 1 and len(ends) == 1
    assert begins[0]["id"] == ends[0]["id"] == "B:t1"


def test_write_perfetto_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    write_perfetto(_events(), path)
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_export_events_dispatcher(tmp_path):
    events = _events()
    assert len(export_events(events, "jsonl")) == 7
    assert export_events(events, "perfetto")["traceEvents"]
    out = export_events(events, "jsonl", tmp_path / "t.jsonl")
    assert out.is_file()
    with pytest.raises(ValueError, match="format"):
        export_events(events, "csv")


def test_write_jsonl_failure_leaves_no_partial_file(tmp_path):
    def poisoned_events():
        yield from _events()[:2]
        raise RuntimeError("store read hit damage mid-iteration")

    target = tmp_path / "trace.jsonl"
    with pytest.raises(RuntimeError):
        write_jsonl(poisoned_events(), target)
    assert not target.exists(), "partial JSONL left behind"
    assert list(tmp_path.iterdir()) == [], "stray temp file left behind"


def test_write_jsonl_failure_preserves_previous_artifact(tmp_path):
    target = tmp_path / "trace.jsonl"
    write_jsonl(_events()[:1], target)
    before = target.read_text()

    def poisoned():
        raise RuntimeError("boom")
        yield  # pragma: no cover

    with pytest.raises(RuntimeError):
        write_jsonl(poisoned(), target)
    assert target.read_text() == before
