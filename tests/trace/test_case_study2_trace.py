"""End-to-end acceptance: trace the case-study-2 hang across chiplets.

A two-chiplet variant of the write-buffer-bug platform deadlocks under
StoreStorm just like the paper's single-chiplet case, but its stores
also cross the RDMA fabric — so the recorded trace must show the full
ROB → L1 → RDMA message chain, the Perfetto export must carry those
hops, and a supervising watchdog's post-mortem must end with the
trailing trace window.
"""

import json

import pytest

from repro.core import Monitor
from repro.core.watchdog import Watchdog, WatchdogConfig
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.trace import RingStore, TraceKind, Tracer, write_perfetto
from repro.workloads import StoreStorm


def _two_chiplet_trigger_config():
    """StoreStorm.trigger_config, widened to two chiplets so stores
    cross the RDMA fabric before wedging in the L2 write buffer."""
    return GPUPlatformConfig.small(
        num_chiplets=2, l2_write_buffer_bug=True,
        l2_size_bytes=1024, l2_ways=2, wb_queue_capacity=2,
        wb_in_buf=1, wb_width=1, l2_storage_buf=1,
        dram_latency_cycles=20, max_outstanding_per_wf=16)


@pytest.fixture(scope="module")
def hung_trace(tmp_path_factory):
    """Run the bug-enabled platform to its deadlock, traced and
    supervised; shared by the assertions below."""
    platform = GPUPlatform(_two_chiplet_trigger_config())
    StoreStorm().enqueue(platform.driver)

    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    tracer = monitor.ensure_tracer(capacity=500_000)
    tracer.start()

    ok = platform.run(hang_wait=0.0)
    tracer.stop()
    assert not ok and platform.simulation.run_state == "hung"

    out_dir = tmp_path_factory.mktemp("cs2_trace")
    perfetto_path = out_dir / "cs2_hang.json"
    write_perfetto(tracer.query(limit=0), perfetto_path,
                   trace_name="case-study-2 hang")
    return platform, monitor, tracer, perfetto_path


def test_hang_run_recorded_events(hung_trace):
    _, __, tracer, ___ = hung_trace
    stats = tracer.store.stats()
    assert stats["recorded"] > 1000
    assert stats["events"] > 0


def test_trace_covers_rob_l1_rdma_chain(hung_trace):
    _, __, tracer, ___ = hung_trace
    hops = tracer.query(limit=0)
    components = {ev.component for ev in hops
                  if ev.kind in TraceKind.MESSAGE}
    assert any("ROB" in name for name in components)
    assert any("L1" in name for name in components)
    assert any("RDMA" in name for name in components)


def test_perfetto_export_contains_cross_chiplet_hops(hung_trace):
    _, __, ___, perfetto_path = hung_trace
    doc = json.loads(perfetto_path.read_text())
    threads = {e["args"]["name"] for e in doc["traceEvents"]
               if e.get("ph") == "M" and e["name"] == "thread_name"}
    assert any("ROB" in name for name in threads)
    assert any("L1" in name for name in threads)
    assert any("RDMA" in name for name in threads)
    slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert slices
    # Flow arrows pair sends with delivers across the hierarchy.
    assert any(e.get("ph") == "s" for e in doc["traceEvents"])
    assert any(e.get("ph") == "f" for e in doc["traceEvents"])


def test_write_buffer_tasks_left_open_at_hang(hung_trace):
    """The deadlock's signature in the task stream: cache misses that
    began but never ended."""
    _, __, tracer, ___ = hung_trace
    begins = {(ev.component, ev.extra)
              for ev in tracer.query(kind=TraceKind.TASK_BEGIN, limit=0)
              if ev.msg_type == "cache_miss"}
    ends = {(ev.component, ev.extra)
            for ev in tracer.query(kind=TraceKind.TASK_END, limit=0)
            if ev.msg_type == "cache_miss"}
    assert begins - ends, "a deadlocked run must strand cache misses"


def test_watchdog_postmortem_carries_trace_window(hung_trace):
    platform, monitor, tracer, _ = hung_trace
    watchdog = Watchdog(monitor, WatchdogConfig(
        check_interval=0.02, retry_wait=0.02, max_tick_retries=1,
        recover=False, trace_window=32))
    monitor.attach_watchdog(watchdog)
    # Drive the hang handler directly (the run has already wedged;
    # no need for the polling thread).
    status = monitor.hang_status()
    assert status.hung  # run_state == "hung" is definitive
    watchdog._handle_hang(status)
    window = watchdog.report["trace_window"]
    assert len(window) == 32
    seqs = [ev["seq"] for ev in window]
    assert seqs == sorted(seqs)
    # The window is the *tail*: its last event is the newest recorded.
    assert seqs[-1] == max(ev.seq for ev in tracer.store.tail(1))
