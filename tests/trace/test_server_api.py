"""HTTP trace API: endpoints, client methods, status-code discipline."""

import json
import urllib.request

import pytest

from repro.core import Monitor, RTMClient, RTMClientError
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.trace import TraceKind
from repro.workloads import FIR


@pytest.fixture
def rig():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    client = RTMClient(url)
    yield platform, monitor, client
    monitor.stop_server()


@pytest.fixture
def traced_rig(rig):
    """rig + tracer started + a completed FIR run's events recorded."""
    platform, monitor, client = rig
    client.trace_start(capacity=200_000)
    FIR(num_samples=512).enqueue(platform.driver)
    assert platform.run()
    yield platform, monitor, client


def test_trace_status_before_attach(rig):
    _, __, client = rig
    status = client.trace()
    assert status == {"attached": False}


def test_trace_start_attaches_and_reports(rig):
    platform, monitor, client = rig
    status = client.trace_start()
    assert status["recording"] is True
    assert status["hooked_components"] == \
        len(platform.simulation.components)
    assert monitor.tracer is not None
    assert client.trace()["attached"] is True


def test_trace_start_with_include_filter(rig):
    platform, _, client = rig
    status = client.trace_start(include="RDMA")
    hooked = status["hooked_components"]
    assert 0 < hooked < len(platform.simulation.components)


def test_trace_start_sqlite_backend(rig, tmp_path):
    _, monitor, client = rig
    db = str(tmp_path / "trace.db")
    status = client.trace_start(backend="sqlite", db=db)
    assert status["store"]["backend"] == "sqlite"
    assert status["store"]["path"] == db


def test_trace_start_sqlite_without_db_is_400(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="400"):
        client.trace_start(backend="sqlite")


def test_trace_start_unknown_backend_is_400(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="400"):
        client.trace_start(backend="postgres")


def test_trace_bad_action_is_400(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="400"):
        client._post("/api/trace", action="bogus")


def test_trace_endpoints_404_without_tracer(rig):
    _, __, client = rig
    for call in (client.trace_stop, client.trace_clear,
                 lambda: client.trace_query(),
                 lambda: client.trace_follow(1),
                 lambda: client.trace_export()):
        with pytest.raises(RTMClientError, match="404"):
            call()


def test_trace_stop_detaches_hooks(traced_rig):
    platform, _, client = traced_rig
    status = client.trace_stop()
    assert status["recording"] is False
    assert all(not c._hooks for c in platform.simulation.components)


def test_trace_clear_empties_store(traced_rig):
    _, __, client = traced_rig
    assert client.trace()["store"]["events"] > 0
    status = client.trace_clear()
    assert status["store"]["events"] == 0


def test_trace_query_over_http(traced_rig):
    _, __, client = traced_rig
    events = client.trace_query(kind=TraceKind.SEND, limit=10)
    assert 0 < len(events) <= 10
    assert all(ev["kind"] == "send" for ev in events)
    assert {"seq", "time", "component", "msg_id"} <= set(events[0])


def test_trace_query_component_and_window(traced_rig):
    platform, _, client = traced_rig
    events = client.trace_query(component="RDMA", limit=0,
                                t1=platform.simulation.now)
    assert events
    assert all("RDMA" in (ev["component"] + ev["what"])
               for ev in events)


def test_trace_query_kind_list(traced_rig):
    _, __, client = traced_rig
    events = client.trace_query(kind="task_begin,task_end", limit=0)
    assert events
    assert {ev["kind"] for ev in events} <= {"task_begin", "task_end"}


def test_trace_query_bad_regex_is_400(traced_rig):
    _, __, client = traced_rig
    with pytest.raises(RTMClientError, match="400"):
        client.trace_query(component="[unclosed")


def test_trace_query_bad_limit_is_400(traced_rig):
    _, __, client = traced_rig
    with pytest.raises(RTMClientError, match="400"):
        client.trace_query(limit="many")


def test_trace_follow_over_http(traced_rig):
    _, __, client = traced_rig
    send = client.trace_query(kind="send", limit=1)[0]
    result = client.trace_follow(send["msg_id"])
    assert result["msg_id"] == send["msg_id"]
    assert result["events"]
    assert any("sent" in line for line in result["path"])


def test_trace_follow_unknown_id_is_404(traced_rig):
    _, __, client = traced_rig
    with pytest.raises(RTMClientError, match="404"):
        client.trace_follow(10**9)


def test_trace_follow_missing_param_is_400(traced_rig):
    _, __, client = traced_rig
    with pytest.raises(RTMClientError, match="400"):
        client._get("/api/trace/follow")


def test_trace_export_jsonl_inline(traced_rig):
    _, __, client = traced_rig
    events = client.trace_export(format="jsonl", limit=100)
    assert isinstance(events, list) and len(events) == 100


def test_trace_export_perfetto_inline(traced_rig):
    _, __, client = traced_rig
    doc = client.trace_export(format="perfetto", limit=100)
    assert doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ns"


def test_trace_export_to_server_side_file(traced_rig, tmp_path):
    _, __, client = traced_rig
    dest = str(tmp_path / "trace.json")
    result = client.trace_export(format="perfetto", path=dest)
    assert result["count"] > 0
    doc = json.loads((tmp_path / "trace.json").read_text())
    assert doc["traceEvents"]


def test_trace_export_bad_format_is_400(traced_rig):
    _, __, client = traced_rig
    with pytest.raises(RTMClientError, match="400"):
        client.trace_export(format="csv")


def test_stop_server_stops_tracer(rig):
    platform, monitor, client = rig
    client.trace_start()
    assert monitor.tracer.recording
    monitor.stop_server()
    assert not monitor.tracer.recording
    assert all(not c._hooks for c in platform.simulation.components)
