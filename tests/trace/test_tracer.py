"""Tracer behaviour on a real (small) GPU simulation."""

import pytest

from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.trace import RingStore, TraceKind, Tracer
from repro.workloads import FIR


@pytest.fixture
def platform():
    return GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))


def _traced_run(platform, num_samples=512, **tracer_kw):
    FIR(num_samples=num_samples).enqueue(platform.driver)
    tracer = Tracer(platform.simulation, RingStore(200_000), **tracer_kw)
    tracer.start()
    assert platform.run()
    tracer.stop()
    return tracer


# ----------------------------------------------------------------------
# Zero cost when detached (the fault-injector discipline)
# ----------------------------------------------------------------------
def test_no_hooks_before_start_and_after_stop(platform):
    tracer = Tracer(platform.simulation)
    assert all(not c._hooks for c in platform.simulation.components)
    assert all(not c._hooks for c in platform.simulation.connections)

    tracer.start()
    assert all(c._hooks for c in platform.simulation.components)
    assert all(c._hooks for c in platform.simulation.connections)
    assert tracer.recording

    tracer.stop()
    assert all(not c._hooks for c in platform.simulation.components)
    assert all(not c._hooks for c in platform.simulation.connections)
    assert not tracer.recording


def test_start_stop_idempotent(platform):
    tracer = Tracer(platform.simulation)
    tracer.start()
    tracer.start()
    assert all(len(c._hooks) == 1
               for c in platform.simulation.components)
    tracer.stop()
    tracer.stop()
    assert all(not c._hooks for c in platform.simulation.components)


def test_untraced_run_records_nothing(platform):
    tracer = Tracer(platform.simulation)
    FIR(num_samples=256).enqueue(platform.driver)
    assert platform.run()
    assert tracer.store.recorded == 0


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def test_records_full_message_lifecycle(platform):
    tracer = _traced_run(platform)
    assert tracer.store.recorded > 0
    kinds = {ev.kind for ev in tracer.query(limit=0)}
    assert TraceKind.SEND in kinds
    assert TraceKind.DELIVER in kinds
    assert TraceKind.RETRIEVE in kinds


def test_records_component_tasks(platform):
    tracer = _traced_run(platform)
    begins = tracer.query(kind=TraceKind.TASK_BEGIN, limit=0)
    ends = tracer.query(kind=TraceKind.TASK_END, limit=0)
    task_kinds = {ev.msg_type for ev in begins}
    assert "workgroup" in task_kinds
    assert "cache_miss" in task_kinds
    assert "rdma_transfer" in task_kinds  # 2 chiplets => remote traffic
    # Every task that began also ended (the run completed).
    assert {(e.component, e.extra) for e in ends} >= \
        {(b.component, b.extra) for b in begins
         if b.msg_type == "workgroup"}


def test_deliver_events_carry_buffer_occupancy(platform):
    tracer = _traced_run(platform)
    deliver = tracer.query(kind=TraceKind.DELIVER, limit=5)
    assert deliver
    for ev in deliver:
        occupancy = ev.extra.split()[0]
        size, capacity = occupancy.split("/")
        assert 0 < int(size) <= int(capacity)


def test_follow_and_path_reconstruct_one_hop(platform):
    tracer = _traced_run(platform)
    sent = tracer.query(kind=TraceKind.SEND, component="RDMA", limit=50)
    assert sent, "two-chiplet FIR must produce RDMA traffic"
    msg_id = sent[0].msg_id
    hops = tracer.follow(msg_id)
    assert [ev.seq for ev in hops] == sorted(ev.seq for ev in hops)
    kinds = [ev.kind for ev in hops if ev.msg_id == msg_id]
    assert kinds[0] == TraceKind.SEND
    lines = tracer.path(msg_id)
    assert any("sent" in line for line in lines)


def test_follow_links_responses_via_extra(platform):
    tracer = _traced_run(platform)
    # Find a request that got a response (a deliver whose extra links
    # back with re:<id>).
    linked = [ev for ev in tracer.query(limit=0)
              if "re:" in ev.extra]
    assert linked
    link = [tok for tok in linked[0].extra.split()
            if tok.startswith("re:")][0]
    original = int(link[3:])
    hops = tracer.follow(original)
    assert any(ev.msg_id == linked[0].msg_id for ev in hops)


def test_include_filter_limits_hooked_components(platform):
    tracer = Tracer(platform.simulation, include=r"RDMA")
    tracer.start()
    hooked = [c.name for c in platform.simulation.components if c._hooks]
    assert hooked and all("RDMA" in name for name in hooked)
    tracer.stop()


def test_include_filter_limits_recorded_components(platform):
    tracer = _traced_run(platform, include=r"RDMA")
    components = {ev.component for ev in tracer.query(limit=0)
                  if ev.kind not in (TraceKind.DROP,)}
    assert components
    assert all("RDMA" in name for name in components)


def test_status_reports_store_and_hooks(platform):
    tracer = Tracer(platform.simulation)
    tracer.start()
    status = tracer.status()
    assert status["recording"] is True
    assert status["hooked_components"] == \
        len(platform.simulation.components)
    assert status["store"]["backend"] == "ring"
    tracer.stop()
