"""Unit tests for the trace record and its renderings."""

from repro.trace import FIELDS, TraceEvent, TraceKind, message_path


def _event(**overrides):
    base = dict(time=1.5e-9, kind=TraceKind.SEND, component="GPU[0].CU[1]",
                what="MemPort", msg_id=42, msg_type="ReadReq",
                src="GPU[0].CU[1].MemPort", dst="GPU[0].ROB[1].TopPort",
                extra="", seq=7)
    base.update(overrides)
    return TraceEvent(**base)


def test_round_trip_through_dict():
    ev = _event()
    clone = TraceEvent.from_dict(ev.to_dict())
    assert clone == ev
    assert clone.seq == ev.seq


def test_round_trip_through_row():
    ev = _event(extra="3/8 re:40")
    clone = TraceEvent.from_row(ev.to_row())
    assert clone == ev


def test_row_order_matches_fields():
    ev = _event()
    row = ev.to_row()
    for i, name in enumerate(FIELDS):
        assert row[i] == getattr(ev, name)


def test_none_message_id_round_trips():
    ev = _event(msg_id=None, kind=TraceKind.TASK_BEGIN,
                msg_type="workgroup", what="wg[3]x4wf", extra="(0, 3)")
    assert TraceEvent.from_dict(ev.to_dict()) == ev
    assert TraceEvent.from_row(ev.to_row()) == ev


def test_equality_is_field_wise():
    assert _event() == _event()
    assert _event() != _event(msg_id=43)
    assert _event().__eq__(object()) is NotImplemented


def test_kind_vocabulary():
    assert set(TraceKind.MESSAGE) < set(TraceKind.ALL)
    assert TraceKind.TASK_BEGIN in TraceKind.ALL
    assert TraceKind.TASK_BEGIN not in TraceKind.MESSAGE


def test_message_path_renders_each_hop_kind():
    events = [
        _event(kind=TraceKind.SEND, seq=0),
        _event(kind=TraceKind.DELIVER, what="TopPort", extra="3/8",
               seq=1),
        _event(kind=TraceKind.RETRIEVE, component="GPU[0].ROB[1]",
               seq=2),
        _event(kind=TraceKind.DROP, component="GPU[0].NetConn", seq=3),
    ]
    lines = message_path(events)
    assert len(lines) == 4
    assert "sent ReadReq#42" in lines[0]
    assert "delivered at TopPort" in lines[1] and "3/8" in lines[1]
    assert "consumed by GPU[0].ROB[1]" in lines[2]
    assert "DROPPED in transit on GPU[0].NetConn" in lines[3]
