"""Unit tests for the ring and SQLite trace stores."""

import pytest

from repro.trace import RingStore, SQLiteStore, TraceEvent, TraceKind


def _event(i, kind=TraceKind.SEND, component="GPU[0].CU[0]", msg_id=None,
           what="MemPort"):
    return TraceEvent(i * 1e-9, kind, component, what,
                      msg_id if msg_id is not None else i, "ReadReq",
                      "a", "b")


def _fill(store, n=10, **kw):
    return [store.append(_event(i, **kw)) for i in range(n)]


@pytest.fixture(params=["ring", "sqlite"])
def store(request, tmp_path):
    if request.param == "ring":
        yield RingStore(capacity=1000)
    else:
        s = SQLiteStore(str(tmp_path / "trace.db"), batch_size=4)
        yield s
        s.close()


# ----------------------------------------------------------------------
# Shared contract
# ----------------------------------------------------------------------
def test_append_assigns_monotonic_seq(store):
    events = _fill(store, 5)
    assert [ev.seq for ev in events] == [0, 1, 2, 3, 4]
    assert store.recorded == 5
    assert len(store) == 5


def test_query_returns_events_oldest_first(store):
    _fill(store, 5)
    events = store.query()
    assert [ev.seq for ev in events] == [0, 1, 2, 3, 4]
    assert events[0].time == 0.0 and events[4].time == 4e-9


def test_query_filters_by_kind(store):
    for i in range(6):
        kind = TraceKind.SEND if i % 2 == 0 else TraceKind.DELIVER
        store.append(_event(i, kind=kind))
    sends = store.query(kind=TraceKind.SEND)
    assert len(sends) == 3
    assert all(ev.kind == TraceKind.SEND for ev in sends)
    both = store.query(kind=[TraceKind.SEND, TraceKind.DELIVER])
    assert len(both) == 6


def test_query_filters_by_msg_id(store):
    _fill(store, 5)
    events = store.query(msg_id=3)
    assert len(events) == 1 and events[0].msg_id == 3


def test_query_filters_by_time_window(store):
    _fill(store, 10)  # times 0 .. 9 ns
    events = store.query(t0=2e-9, t1=5e-9)
    assert [ev.seq for ev in events] == [2, 3, 4, 5]


def test_query_filters_by_component_regex(store):
    store.append(_event(0, component="GPU[0].CU[3]"))
    store.append(_event(1, component="GPU[1].RDMA"))
    store.append(_event(2, component="GPU[0].L2[1]"))
    events = store.query(component=r"GPU\[0\]")
    assert len(events) == 2
    assert store.query(component="RDMA")[0].component == "GPU[1].RDMA"


def test_query_component_regex_also_matches_what(store):
    store.append(_event(0, what="NetPort"))
    store.append(_event(1, what="TopPort"))
    assert len(store.query(component="NetPort")) == 1


def test_query_limit_keeps_most_recent(store):
    _fill(store, 10)
    events = store.query(limit=3)
    assert [ev.seq for ev in events] == [7, 8, 9]
    assert len(store.query(limit=0)) == 10  # 0 = unlimited


def test_tail(store):
    _fill(store, 10)
    assert [ev.seq for ev in store.tail(2)] == [8, 9]


def test_clear(store):
    _fill(store, 5)
    store.clear()
    assert len(store) == 0
    assert store.query() == []


def test_stats_shared_keys(store):
    _fill(store, 3)
    stats = store.stats()
    assert stats["recorded"] == 3
    assert stats["events"] == 3
    assert stats["backend"] in ("ring", "sqlite")
    assert "dropped" in stats


def test_events_round_trip_exactly(store):
    original = TraceEvent(2.5e-9, TraceKind.DELIVER, "GPU[0].L2[1]",
                          "TopPort", 99, "WriteReq",
                          "GPU[0].WB[1].Out", "GPU[0].L2[1].TopPort",
                          "4/8 re:42")
    store.append(original)
    store.append(TraceEvent(3e-9, TraceKind.TASK_BEGIN, "GPU[0].CU[0]",
                            "wg[0]x4wf", None, "workgroup",
                            extra="(0, 0)"))
    events = store.query()
    assert events[0] == original
    assert events[1].msg_id is None
    assert events[1].extra == "(0, 0)"


# ----------------------------------------------------------------------
# Ring specifics
# ----------------------------------------------------------------------
def test_ring_bounds_and_counts_dropped():
    store = RingStore(capacity=4)
    _fill(store, 10)
    assert len(store) == 4
    assert store.dropped == 6
    assert [ev.seq for ev in store.query()] == [6, 7, 8, 9]
    assert store.stats()["capacity"] == 4


def test_ring_rejects_non_positive_capacity():
    with pytest.raises(ValueError, match="capacity"):
        RingStore(capacity=0)


# ----------------------------------------------------------------------
# SQLite specifics
# ----------------------------------------------------------------------
def test_sqlite_flushes_in_batches(tmp_path):
    store = SQLiteStore(str(tmp_path / "t.db"), batch_size=100,
                        flush_interval=3600.0)
    _fill(store, 5)
    assert store._pending  # below batch size, still buffered
    assert len(store) == 5  # __len__ counts pending too
    store.flush()
    assert not store._pending
    store.close()


def test_sqlite_persists_and_resumes_seq(tmp_path):
    path = str(tmp_path / "t.db")
    store = SQLiteStore(path)
    _fill(store, 5)
    store.close()

    reopened = SQLiteStore(path)
    assert len(reopened) == 5
    ev = reopened.append(_event(6))
    assert ev.seq == 5  # numbering resumes after the stored maximum
    reopened.close()


def test_sqlite_query_flushes_pending(tmp_path):
    store = SQLiteStore(str(tmp_path / "t.db"), batch_size=1000,
                        flush_interval=3600.0)
    _fill(store, 3)
    assert len(store.query()) == 3  # visible despite no explicit flush
    store.close()
