"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_workloads_lists_suite(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("aes", "bfs", "fir", "im2col", "kmeans", "matmul"):
        assert name in out
    assert "workgroups" in out


def test_run_completes(capsys):
    assert main(["run", "fir", "--chiplets", "1",
                 "--progress-interval", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "completed" in out
    assert "events" in out


def test_run_with_monitor(capsys):
    assert main(["run", "fir", "--chiplets", "1", "--monitor",
                 "--progress-interval", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "AkitaRTM dashboard: http://127.0.0.1:" in out


@pytest.mark.slow
def test_run_buggy_l2_reports_hang(capsys):
    # The generic small config + kmeans stores may or may not deadlock;
    # use the aggressive storestorm-like path: fir is read-dominated and
    # must complete even with the bug armed.
    assert main(["run", "fir", "--chiplets", "1", "--buggy-l2",
                 "--progress-interval", "0.3"]) in (0, 1)


def test_demo_with_duration(capsys):
    assert main(["demo", "--duration", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "dashboard" in out
    assert "demo stopped" in out


@pytest.mark.slow
def test_study_command(capsys):
    assert main(["study"]) == 0
    out = capsys.readouterr().out
    assert "PT3, PT4, PT5" in out
    assert "matches paper Figure 6: True" in out


def test_trace_records_and_exports_perfetto(capsys, tmp_path):
    out_path = tmp_path / "fir.json"
    assert main(["trace", "fir", "--chiplets", "1",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "completed:" in out
    assert "events recorded" in out
    assert f"wrote perfetto trace to {out_path}" in out
    import json
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"]


def test_trace_jsonl_export(capsys, tmp_path):
    out_path = tmp_path / "fir.jsonl"
    assert main(["trace", "fir", "--chiplets", "1",
                 "--format", "jsonl", "--out", str(out_path)]) == 0
    from repro.trace import read_jsonl
    events = read_jsonl(out_path)
    assert events and events[0].seq == 0


def test_trace_sqlite_backend(capsys, tmp_path):
    db = tmp_path / "fir.db"
    assert main(["trace", "fir", "--chiplets", "1",
                 "--backend", "sqlite", "--db", str(db)]) == 0
    out = capsys.readouterr().out
    assert f"trace database: {db}" in out
    from repro.trace import SQLiteStore
    store = SQLiteStore(str(db))
    assert len(store) > 0
    store.close()


def test_trace_sqlite_requires_db(capsys):
    assert main(["trace", "fir", "--backend", "sqlite"]) == 2
    assert "--db" in capsys.readouterr().err


def test_trace_include_filter(capsys, tmp_path):
    out_path = tmp_path / "cu.jsonl"
    assert main(["trace", "fir", "--chiplets", "1",
                 "--include", r"CU\[", "--format", "jsonl",
                 "--out", str(out_path)]) == 0
    from repro.trace import read_jsonl
    events = read_jsonl(out_path)
    assert events
    assert all("CU[" in ev.component for ev in events)


def test_metrics_writes_exposition_file(capsys, tmp_path):
    out_path = tmp_path / "fir.prom"
    assert main(["metrics", "fir", "--chiplets", "1",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote exposition" in out
    text = out_path.read_text()
    assert "# TYPE rtm_engine_events_total counter" in text
    assert "rtm_cache_hits_total" in text
    assert "rtm_hook_callback_seconds_total" in text


def test_metrics_dumps_to_stdout(capsys):
    assert main(["metrics", "fir", "--chiplets", "1"]) == 0
    captured = capsys.readouterr()
    assert "rtm_engine_events_total" in captured.out
    assert "# run completed" in captured.err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "doom"])
