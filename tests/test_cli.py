"""Tests for the command-line interface."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main


def test_workloads_lists_suite(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("aes", "bfs", "fir", "im2col", "kmeans", "matmul"):
        assert name in out
    assert "workgroups" in out


def test_run_completes(capsys):
    assert main(["run", "fir", "--chiplets", "1",
                 "--progress-interval", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "completed" in out
    assert "events" in out


def test_run_with_monitor(capsys):
    assert main(["run", "fir", "--chiplets", "1", "--monitor",
                 "--progress-interval", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "AkitaRTM dashboard: http://127.0.0.1:" in out


@pytest.mark.slow
def test_run_buggy_l2_reports_hang(capsys):
    # The generic small config + kmeans stores may or may not deadlock;
    # use the aggressive storestorm-like path: fir is read-dominated and
    # must complete even with the bug armed.
    assert main(["run", "fir", "--chiplets", "1", "--buggy-l2",
                 "--progress-interval", "0.3"]) in (0, 1)


def test_demo_with_duration(capsys):
    assert main(["demo", "--duration", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "dashboard" in out
    assert "demo stopped" in out


@pytest.mark.slow
def test_study_command(capsys):
    assert main(["study"]) == 0
    out = capsys.readouterr().out
    assert "PT3, PT4, PT5" in out
    assert "matches paper Figure 6: True" in out


def test_trace_records_and_exports_perfetto(capsys, tmp_path):
    out_path = tmp_path / "fir.json"
    assert main(["trace", "fir", "--chiplets", "1",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "completed:" in out
    assert "events recorded" in out
    assert f"wrote perfetto trace to {out_path}" in out
    import json
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"]


def test_trace_jsonl_export(capsys, tmp_path):
    out_path = tmp_path / "fir.jsonl"
    assert main(["trace", "fir", "--chiplets", "1",
                 "--format", "jsonl", "--out", str(out_path)]) == 0
    from repro.trace import read_jsonl
    events = read_jsonl(out_path)
    assert events and events[0].seq == 0


def test_trace_sqlite_backend(capsys, tmp_path):
    db = tmp_path / "fir.db"
    assert main(["trace", "fir", "--chiplets", "1",
                 "--backend", "sqlite", "--db", str(db)]) == 0
    out = capsys.readouterr().out
    assert f"trace database: {db}" in out
    from repro.trace import SQLiteStore
    store = SQLiteStore(str(db))
    assert len(store) > 0
    store.close()


def test_trace_sqlite_requires_db(capsys):
    assert main(["trace", "fir", "--backend", "sqlite"]) == 2
    assert "--db" in capsys.readouterr().err


def test_trace_include_filter(capsys, tmp_path):
    out_path = tmp_path / "cu.jsonl"
    assert main(["trace", "fir", "--chiplets", "1",
                 "--include", r"CU\[", "--format", "jsonl",
                 "--out", str(out_path)]) == 0
    from repro.trace import read_jsonl
    events = read_jsonl(out_path)
    assert events
    assert all("CU[" in ev.component for ev in events)


def test_metrics_writes_exposition_file(capsys, tmp_path):
    out_path = tmp_path / "fir.prom"
    assert main(["metrics", "fir", "--chiplets", "1",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote exposition" in out
    text = out_path.read_text()
    assert "# TYPE rtm_engine_events_total counter" in text
    assert "rtm_cache_hits_total" in text
    assert "rtm_hook_callback_seconds_total" in text


def test_metrics_dumps_to_stdout(capsys):
    assert main(["metrics", "fir", "--chiplets", "1"]) == 0
    captured = capsys.readouterr()
    assert "rtm_engine_events_total" in captured.out
    assert "# run completed" in captured.err


def test_workloads_json_catalog(capsys):
    assert main(["workloads", "--json"]) == 0
    catalog = json.loads(capsys.readouterr().out)
    names = {entry["name"] for entry in catalog}
    # The fleet catalog: the paper's suite plus the crash-campaign
    # diagnostic — the contract fleet jobs are validated against.
    assert {"aes", "bfs", "fir", "im2col", "kmeans", "matmul",
            "storestorm"} <= names
    fir = next(e for e in catalog if e["name"] == "fir")
    assert fir["type"] == "FIR"
    assert "num_taps" in fir["params"]  # overridable via JobSpec.params
    assert fir["workgroups"] > 0
    assert fir["input_bytes"] > 0


@pytest.mark.slow
def test_fleet_run_small_campaign(capsys, tmp_path):
    status_out = tmp_path / "fleet_status.json"
    metrics_out = tmp_path / "fleet_metrics.txt"
    assert main(["fleet", "run", "--workers", "2",
                 "--workloads", "fir", "--chiplets", "1,2",
                 "--status-out", str(status_out),
                 "--metrics-out", str(metrics_out)]) == 0
    out = capsys.readouterr().out
    assert "fleet gateway: http://127.0.0.1:" in out
    assert "drained: 2 completed, 0 failed" in out

    status = json.loads(status_out.read_text())
    assert status["summary"]["completed"] == 2
    assert {j["spec"]["job_id"] for j in status["jobs"]} == \
        {"fir-c1", "fir-c2"}

    metrics = metrics_out.read_text()
    # Every job's series federates with (worker, job) labels — which
    # warm worker ran which job is the scheduler's business.
    assert 'job="fir-c1"' in metrics
    assert 'job="fir-c2"' in metrics
    assert 'worker="w' in metrics
    assert 'rtm_fleet_jobs{state="completed"} 2' in metrics


def test_fleet_run_rejects_unknown_workload(capsys):
    assert main(["fleet", "run", "--workloads", "doom"]) == 2
    assert "unknown workloads doom" in capsys.readouterr().err


def test_fleet_status_against_dead_gateway(capsys):
    assert main(["fleet", "status", "--url",
                 "http://127.0.0.1:9"]) == 1
    assert "connection refused" in capsys.readouterr().err


@pytest.mark.slow
def test_run_sigterm_exits_zero_after_flushing():
    # The satellite contract: a fleet manager (or operator) SIGTERMing
    # `repro run` gets a clean stop — engine aborted, exports flushed,
    # exit status 0.
    env = dict(os.environ)
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src"))
    env["PYTHONPATH"] = src
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run", "im2col",
         "--chiplets", "1", "--progress-interval", "0.1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        # Wait until the run is demonstrably underway, then interrupt.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if "state=running" in line:
                break
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert "shutdown signal honoured" in out
    assert "interrupted" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "doom"])
