"""Unit tests for the scenario library and declarative bundles."""

import pytest

from repro.akita.ticker import GHZ
from repro.faults import (
    LIBRARY,
    Expectation,
    FaultInjector,
    FaultScenario,
    FaultSpec,
    cycles,
    slow_network,
    write_buffer_stall,
)
from repro.gpu import GPUPlatform, GPUPlatformConfig


def test_cycles_converts_at_engine_frequency():
    assert cycles(1.0) == pytest.approx(1.0 / GHZ)
    assert cycles(50.0, freq=2e9) == pytest.approx(25e-9)


def test_library_names_match_scenario_names():
    for name, factory in LIBRARY.items():
        scenario = factory()
        assert scenario.name == name
        assert scenario.faults, name
        assert scenario.description, name


def test_expectation_defaults_check_nothing():
    e = Expectation()
    assert e.hang_within is None and e.completes is None
    assert e.buffer_pattern is None and e.alert_fired is None


def test_arm_injects_fresh_copies():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    injector = FaultInjector(platform.simulation)
    scenario = write_buffer_stall()
    template = scenario.faults[0]
    template.applied_count = 99  # dirty the template

    (armed,) = scenario.arm(injector)
    assert armed.id != template.id
    assert armed.applied_count == 0
    assert armed.target == template.target
    # Template list untouched; arming twice yields another fresh copy.
    (again,) = scenario.arm(FaultInjector(platform.simulation))
    assert again.id not in (armed.id, template.id)


def test_scenario_to_dict_round_trips_key_fields():
    scenario = slow_network(delay_cycles=10)
    payload = scenario.to_dict()
    assert payload["name"] == "slow-network"
    assert payload["faults"][0]["kind"] == "delay"
    assert payload["faults"][0]["delay"] == pytest.approx(cycles(10))


def test_custom_scenario_composition():
    scenario = FaultScenario(
        name="double-trouble",
        faults=[FaultSpec("stall", "*WriteBuffer*"),
                FaultSpec("drop", "*RDMA*", probability=0.5)],
        expect=Expectation(completes=False),
        seed=11)
    assert len(scenario.faults) == 2
    assert scenario.seed == 11
