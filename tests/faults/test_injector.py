"""Unit tests for the fault-injection primitives."""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultSpec
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


@pytest.fixture
def platform():
    return GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))


# ----------------------------------------------------------------------
# FaultSpec validation
# ----------------------------------------------------------------------
def test_spec_requires_target():
    with pytest.raises(ValueError, match="target"):
        FaultSpec(FaultKind.DROP, "")


def test_spec_rejects_bad_probability():
    with pytest.raises(ValueError, match="probability"):
        FaultSpec(FaultKind.DROP, "*", probability=1.5)


def test_spec_rejects_negative_delay():
    with pytest.raises(ValueError, match="delay"):
        FaultSpec(FaultKind.DELAY, "*", delay=-1.0)


def test_spec_rejects_inverted_window():
    with pytest.raises(ValueError, match="window"):
        FaultSpec(FaultKind.STALL, "*", start=2.0, end=1.0)


def test_spec_accepts_kind_as_string():
    spec = FaultSpec("stall", "*WriteBuffer*")
    assert spec.kind is FaultKind.STALL


def test_spec_window_and_matching():
    spec = FaultSpec(FaultKind.STALL, "GPU[0].*", start=1.0, end=2.0)
    assert not spec.active(0.5)
    assert spec.active(1.0)
    assert not spec.active(2.0)
    assert spec.matches("GPU[0].WriteBuffer[1]")
    assert not spec.matches("GPU[1].WriteBuffer[1]")


def test_spec_ids_are_unique():
    a = FaultSpec(FaultKind.STALL, "*")
    b = FaultSpec(FaultKind.STALL, "*")
    assert a.id != b.id


# ----------------------------------------------------------------------
# Zero overhead when idle
# ----------------------------------------------------------------------
def test_no_hooks_without_injector(platform):
    assert not platform.simulation.engine._hooks
    for conn in platform.simulation.connections:
        assert not conn._hooks


def test_hooks_attach_lazily_and_detach_on_revoke(platform):
    injector = FaultInjector(platform.simulation)
    assert not platform.simulation.engine._hooks

    stall = injector.stall_component("*WriteBuffer*")
    assert platform.simulation.engine._hooks
    drop = injector.drop_messages("*RDMA*")
    assert all(c._hooks for c in platform.simulation.connections)

    assert injector.revoke(stall.id)
    assert not platform.simulation.engine._hooks
    assert injector.revoke(drop.id)
    assert all(not c._hooks for c in platform.simulation.connections)
    assert not injector.revoke(999)  # unknown id


def test_clear_disarms_everything(platform):
    injector = FaultInjector(platform.simulation)
    injector.stall_component("*WriteBuffer*")
    injector.drop_messages("*RDMA*")
    injector.pin_buffer("*L2*TopPort.Buf")
    injector.clear()
    assert injector.specs == []
    assert not platform.simulation.engine._hooks
    assert all(not c._hooks for c in platform.simulation.connections)
    assert injector.stats()["pinned_buffers"] == []


# ----------------------------------------------------------------------
# The fault kinds, end to end on a real platform
# ----------------------------------------------------------------------
def _run(platform, samples=2048):
    FIR(num_samples=samples).enqueue(platform.driver)
    return platform.run(hang_wait=0.0)


def test_stall_hangs_the_run(platform):
    injector = FaultInjector(platform.simulation)
    spec = injector.stall_component("*WriteBuffer*", start=5e-7)
    completed = _run(platform)
    assert not completed
    assert platform.simulation.run_state == "hung"
    assert spec.applied_count > 0


def test_stall_outside_window_is_harmless(platform):
    injector = FaultInjector(platform.simulation)
    # Window closed before the run starts doing anything interesting.
    spec = injector.stall_component("*WriteBuffer*", start=0.0, end=1e-12)
    assert _run(platform)
    assert spec.applied_count == 0


def test_kill_port_hangs_and_counts_drops(platform):
    injector = FaultInjector(platform.simulation)
    injector.kill_port("*RDMA*", start=1e-7)
    completed = _run(platform)
    assert not completed
    assert injector.stats()["messages_dropped"] > 0


def test_drop_probability_zero_never_bites(platform):
    injector = FaultInjector(platform.simulation)
    spec = injector.drop_messages("*", probability=0.0)
    assert _run(platform)
    assert spec.applied_count == 0
    assert injector.stats()["messages_dropped"] == 0


def test_drop_is_deterministic_per_seed():
    counts = []
    for _ in range(2):
        platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
        injector = FaultInjector(platform.simulation, seed=42)
        injector.drop_messages("*RDMA*", probability=0.05, start=1e-7)
        _run(platform)
        counts.append(injector.stats()["messages_dropped"])
    assert counts[0] == counts[1]
    assert counts[0] > 0


def test_delay_slows_but_completes(platform):
    baseline = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    assert _run(baseline)
    t_baseline = baseline.simulation.engine.now

    injector = FaultInjector(platform.simulation)
    spec = injector.delay_messages("*Switch*", delay=5e-8)
    assert _run(platform)
    assert spec.applied_count > 0
    assert platform.simulation.engine.now > t_baseline


def test_pin_buffer_shows_full_and_blocks_senders(platform):
    injector = FaultInjector(platform.simulation)
    spec = injector.pin_buffer("*L2*TopPort.Buf")
    assert spec.applied_count > 0
    chiplet = platform.chiplets[0]
    buf = chiplet.l2s[0].top_port.buf
    assert buf.pinned
    assert buf.fullness == 1.0
    assert not buf.can_push()
    completed = _run(platform)
    assert not completed

    injector.revoke(spec.id)
    assert not buf.pinned


def test_pin_buffer_unknown_pattern_raises(platform):
    injector = FaultInjector(platform.simulation)
    with pytest.raises(ValueError, match="no buffer matches"):
        injector.pin_buffer("*NoSuchBuffer*")


def test_pin_window_releases_and_run_completes(platform):
    injector = FaultInjector(platform.simulation)
    injector.pin_buffer("*L2*TopPort.Buf", start=0.0, end=2e-7)
    # While pinned the senders stall; once the window closes the
    # scheduled release unpins and a kickstart resumes the run.
    FIR(num_samples=2048).enqueue(platform.driver)
    completed = platform.run(hang_wait=0.0)
    if not completed:  # hung inside the window: release + retry
        assert all(not b.pinned
                   for bufs in injector._pinned.values() for b in bufs)


def test_stats_and_to_dict_shapes(platform):
    injector = FaultInjector(platform.simulation, seed=3)
    injector.stall_component("*WriteBuffer*")
    (payload,) = injector.to_dict()
    assert payload["kind"] == "stall"
    assert payload["target"] == "*WriteBuffer*"
    assert payload["applied_count"] == 0
    stats = injector.stats()
    assert stats["seed"] == 3
    assert stats["armed"] == 1
