"""Campaign runner integration tests (small platform, fast workloads).

The full-size campaign lives in ``examples/fault_injection.py``; here a
scaled-down platform proves the verdict logic in a few seconds.
"""

import pytest

from repro.core.watchdog import WatchdogConfig
from repro.faults import CampaignRunner, slow_network, write_buffer_stall
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


def _runner(**overrides):
    defaults = dict(
        platform_factory=lambda: GPUPlatform(
            GPUPlatformConfig.small(num_chiplets=2)),
        workload_factory=lambda: FIR(num_samples=2048),
        wall_timeout=30.0,
        stall_threshold=0.3,
        watchdog_config=WatchdogConfig(check_interval=0.1,
                                       max_tick_retries=1,
                                       retry_wait=0.1),
        poll_interval=0.02,
    )
    defaults.update(overrides)
    return CampaignRunner(**defaults)


def test_write_buffer_stall_campaign_passes():
    result = _runner().run(write_buffer_stall(hang_within=25.0))
    assert result.passed, result.summary()
    assert result.completed is False
    assert result.verdicts["hang_within"]["ok"]
    assert result.verdicts["buffer_pattern"]["ok"]
    # The post-mortem names the stalled write-buffer intake.
    assert result.watchdog_report is not None
    assert result.watchdog_report["verdict"] == "aborted"
    names = [b["buffer"]
             for b in result.watchdog_report["stuck_buffers"]]
    assert any("WriteBuffer" in n for n in names)
    assert result.fault_stats["applied_total"] > 0


def test_benign_fault_campaign_completes():
    result = _runner().run(slow_network(delay_cycles=20))
    assert result.passed, result.summary()
    assert result.completed is True
    assert result.final_state == "completed"
    assert result.watchdog_report is None


def test_result_serializes_and_summarizes():
    result = _runner().run(slow_network(delay_cycles=20))
    payload = result.to_dict()
    assert payload["scenario"] == "slow-network"
    assert payload["passed"] is True
    assert "completes" in payload["verdicts"]
    text = result.summary()
    assert "PASS" in text and "slow-network" in text


def test_wall_timeout_bounds_a_hung_campaign():
    # A stall with recovery + abort disabled would hang forever without
    # the runner's own wall bound.
    runner = _runner(wall_timeout=6.0,
                     watchdog_config=WatchdogConfig(
                         check_interval=0.1, recover=False,
                         abort_on_failure=False))
    result = runner.run(write_buffer_stall(hang_within=5.0))
    assert result.elapsed_wall < 30.0
    assert result.completed is False
    assert result.watchdog_report is not None
    assert result.watchdog_report["verdict"] == "failed"
