"""Label injection and multi-worker federation of text expositions."""

from repro.metrics import MetricRegistry, expose, federate, inject_label


# ---------------------------------------------------------------------------
# inject_label
# ---------------------------------------------------------------------------

def test_inject_adds_brace_block_to_bare_samples():
    text = "rtm_events_total 42\n"
    assert inject_label(text, "worker", "w1") == \
        'rtm_events_total{worker="w1"} 42\n'


def test_inject_prepends_to_existing_labels():
    text = 'rtm_jobs{state="queued"} 3\n'
    assert inject_label(text, "worker", "w2") == \
        'rtm_jobs{worker="w2",state="queued"} 3\n'


def test_inject_skips_samples_already_carrying_the_label():
    text = 'rtm_jobs{worker="w9",state="queued"} 3\n'
    assert inject_label(text, "worker", "w1") == text


def test_inject_leaves_comments_and_blank_lines_alone():
    text = ("# HELP rtm_x Things.\n"
            "# TYPE rtm_x counter\n"
            "\n"
            "rtm_x 1\n")
    out = inject_label(text, "worker", "w1")
    assert "# HELP rtm_x Things." in out
    assert "# TYPE rtm_x counter" in out
    assert 'rtm_x{worker="w1"} 1' in out


def test_inject_escapes_label_value():
    out = inject_label("m 1\n", "worker", 'we"ird\\')
    assert out == 'm{worker="we\\"ird\\\\"} 1\n'


def test_inject_real_exposition_round_trips():
    registry = MetricRegistry()
    registry.counter("jobs_total", "Jobs.").inc(5)
    gauge = registry.gauge("load", "Load.", ("cpu",))
    gauge.labels("0").set(0.5)
    out = inject_label(expose(registry), "worker", "w1")
    assert 'jobs_total{worker="w1"} 5' in out
    assert 'load{worker="w1",cpu="0"} 0.5' in out


# ---------------------------------------------------------------------------
# federate
# ---------------------------------------------------------------------------

def _exposition(value):
    return ("# HELP rtm_events_total Simulation events.\n"
            "# TYPE rtm_events_total counter\n"
            f"rtm_events_total {value}\n")


def test_federate_labels_every_worker():
    out = federate([("w1", _exposition(10)), ("w2", _exposition(20))])
    assert 'rtm_events_total{worker="w1"} 10' in out
    assert 'rtm_events_total{worker="w2"} 20' in out


def test_federate_emits_headers_once_and_groups_families():
    out = federate([("w1", _exposition(1)), ("w2", _exposition(2))])
    lines = out.splitlines()
    assert lines.count("# HELP rtm_events_total Simulation events.") == 1
    assert lines.count("# TYPE rtm_events_total counter") == 1
    # Both samples are contiguous, right after the headers.
    idx = lines.index("# TYPE rtm_events_total counter")
    assert lines[idx + 1].startswith("rtm_events_total{")
    assert lines[idx + 2].startswith("rtm_events_total{")


def test_federate_first_help_wording_wins():
    a = "# HELP m First wording.\n# TYPE m gauge\nm 1\n"
    b = "# HELP m Second wording.\n# TYPE m gauge\nm 2\n"
    out = federate([("w1", a), ("w2", b)])
    assert "First wording." in out
    assert "Second wording." not in out


def test_federate_groups_histogram_series_under_base_family():
    text = ("# HELP lat Latency.\n"
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.5"} 1\n'
            'lat_bucket{le="+Inf"} 2\n'
            "lat_sum 0.7\n"
            "lat_count 2\n")
    out = federate([("w1", text), ("w2", text)])
    lines = [l for l in out.splitlines() if not l.startswith("#")]
    # All 8 series stay under the single pair of headers, workers
    # interleaved by family, not split into separate family blocks.
    assert len(lines) == 8
    assert out.splitlines().count("# TYPE lat histogram") == 1


def test_federate_prepends_preamble_unlabelled():
    preamble = ("# HELP rtm_fleet_workers_live Live workers.\n"
                "# TYPE rtm_fleet_workers_live gauge\n"
                "rtm_fleet_workers_live 2\n")
    out = federate([("w1", _exposition(1))], preamble=preamble)
    assert out.startswith("# HELP rtm_fleet_workers_live")
    assert "rtm_fleet_workers_live 2\n" in out  # no worker label


def test_federate_empty_input_is_empty():
    assert federate([]) == ""


def test_federate_worker_unique_families_pass_through():
    extra = "# HELP only_w2 Special.\n# TYPE only_w2 gauge\nonly_w2 9\n"
    out = federate([("w1", _exposition(1)),
                    ("w2", _exposition(2) + extra)])
    assert 'only_w2{worker="w2"} 9' in out
