"""The metric registry: families, children, labels, rate, deltas."""

import threading

import pytest

from repro.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Series,
    rate,
    snapshot_delta,
)


class TestRate:
    """Regression-pin the one throughput formula (satellite: every
    KIPS/events-per-second number funnels through metrics.rate)."""

    def test_formula_is_delta_over_seconds(self):
        assert rate(1000.0, 2.0) == 500.0
        assert rate(3.0, 0.5) == 6.0

    def test_zero_window_yields_zero_not_error(self):
        assert rate(100.0, 0.0) == 0.0
        assert rate(100.0, -1.0) == 0.0

    def test_zero_delta(self):
        assert rate(0.0, 10.0) == 0.0

    def test_negative_delta_passes_through(self):
        # Callers clamp when monotonicity matters; the formula itself
        # must not hide a counter reset.
        assert rate(-50.0, 2.0) == -25.0

    def test_shared_by_resource_monitor(self):
        """ResourceMonitor's events/s equals metrics.rate exactly."""
        from repro.core.resources import ResourceMonitor

        class FakeEngine:
            event_count = 0

        engine = FakeEngine()
        mon = ResourceMonitor(engine)
        mon._last_wall -= 2.0  # fake a 2-second window
        engine.event_count = 5000
        sample = mon.sample()
        assert sample.events_per_second == pytest.approx(
            rate(5000, 2.0), rel=0.05)

    def test_shared_by_progress_bar(self):
        from repro.core.progress import ProgressBar

        bar = ProgressBar("kernel", total=100)
        bar._rate_wall -= 4.0
        bar.update(completed=20)
        assert bar.rate() == pytest.approx(rate(20, 4.0), rel=0.05)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("x_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_set_overwrites_for_pull_collection(self):
        c = Counter("x_total")
        c.set(42.0)
        assert c.value == 42.0

    def test_labelled_children_are_independent(self):
        c = Counter("hits_total", labelnames=("component",))
        c.labels("L1").inc()
        c.labels("L1").inc()
        c.labels("L2").inc()
        assert c.labels("L1").value == 2.0
        assert c.labels("L2").value == 1.0

    def test_unlabelled_sugar_rejected_on_labelled_family(self):
        c = Counter("hits_total", labelnames=("component",))
        with pytest.raises(ValueError):
            c.inc()

    def test_wrong_label_arity_rejected(self):
        c = Counter("hits_total", labelnames=("a", "b"))
        with pytest.raises(ValueError):
            c.labels("only-one")

    def test_children_have_slots(self):
        c = Counter("x_total")
        with pytest.raises(AttributeError):
            c._default.arbitrary = 1


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value == 13.0

    def test_history_series(self):
        g = Gauge("temp", history=3)
        for i in range(5):
            g.set(float(i), t=float(i))
        child = g._default
        assert child.series.points() == [(2.0, 2.0), (3.0, 3.0),
                                         (4.0, 4.0)]

    def test_no_history_by_default(self):
        g = Gauge("temp")
        assert g._default.series is None


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("lat", buckets=(1.0, 5.0))
        for v in (0.5, 0.9, 3.0, 100.0):
            h.observe(v)
        child = h._default
        assert child.counts == [2, 1, 1]  # <=1, <=5, +Inf
        assert child.count == 4
        assert child.sum == pytest.approx(104.4)

    def test_boundary_lands_in_its_bucket(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(1.0)  # le=1.0 is inclusive, Prometheus-style
        assert h._default.counts == [1, 0]

    def test_buckets_sorted_automatically(self):
        h = Histogram("lat", buckets=(5.0, 1.0))
        assert h._default.bounds == (1.0, 5.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())


class TestSeries:
    def test_bounded_ring(self):
        s = Series(2)
        s.append(1.0, 10.0)
        s.append(2.0, 20.0)
        s.append(3.0, 30.0)
        assert s.points() == [(2.0, 20.0), (3.0, 30.0)]
        assert len(s) == 2


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b

    def test_type_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_label_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        reg = MetricRegistry()
        for bad in ("", "1abc", "with space", "dash-ed"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_collector_runs_at_snapshot_time(self):
        reg = MetricRegistry()
        c = reg.counter("pulled_total")
        state = {"n": 0}
        reg.add_collector(lambda: c.set(float(state["n"])))
        state["n"] = 7
        snap = reg.snapshot()
        assert snap["pulled_total"]["samples"][0]["value"] == 7.0
        reg.remove_collector(reg._collectors[0])
        state["n"] = 99
        assert reg.snapshot()["pulled_total"]["samples"][0][
            "value"] == 7.0

    def test_snapshot_shape(self):
        reg = MetricRegistry()
        reg.counter("a_total", "A.").inc(3)
        reg.gauge("b", labelnames=("x",)).labels("1").set(2.0)
        reg.histogram("c", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["a_total"] == {
            "type": "counter", "help": "A.",
            "samples": [{"labels": {}, "value": 3.0}]}
        assert snap["b"]["samples"] == [
            {"labels": {"x": "1"}, "value": 2.0}]
        hist = snap["c"]["samples"][0]
        assert hist["buckets"] == {"1.0": 1, "+Inf": 0}
        assert hist["count"] == 1

    def test_snapshot_name_filter(self):
        reg = MetricRegistry()
        reg.counter("rtm_engine_events_total")
        reg.counter("rtm_cache_hits_total")
        snap = reg.snapshot(names="engine")
        assert list(snap) == ["rtm_engine_events_total"]

    def test_concurrent_writers_do_not_corrupt(self):
        reg = MetricRegistry()
        c = reg.counter("n_total")

        def work():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # GIL-atomic float adds can race in theory for +=; the registry
        # promises snapshot consistency, not perfect lock-free addition
        # across threads — but the sim writes from ONE thread, so what
        # matters is that nothing corrupts or raises.
        assert 0 < c.value <= 40_000


class TestSnapshotDelta:
    def test_counters_become_differences(self):
        reg = MetricRegistry()
        c = reg.counter("n_total")
        c.inc(10)
        first = reg.snapshot()
        c.inc(5)
        second = reg.snapshot()
        delta = snapshot_delta(first, second)
        assert delta["n_total"]["samples"][0]["value"] == 5.0

    def test_gauges_pass_through(self):
        reg = MetricRegistry()
        g = reg.gauge("depth")
        g.set(10.0)
        first = reg.snapshot()
        g.set(4.0)
        delta = snapshot_delta(first, reg.snapshot())
        assert delta["depth"]["samples"][0]["value"] == 4.0

    def test_new_family_passes_through(self):
        reg = MetricRegistry()
        first = reg.snapshot()
        reg.counter("late_total").inc(3)
        delta = snapshot_delta(first, reg.snapshot())
        assert delta["late_total"]["samples"][0]["value"] == 3.0

    def test_reset_clamps_at_zero(self):
        first = {"n_total": {"type": "counter", "help": "",
                             "samples": [{"labels": {}, "value": 10.0}]}}
        second = {"n_total": {"type": "counter", "help": "",
                              "samples": [{"labels": {}, "value": 2.0}]}}
        delta = snapshot_delta(first, second)
        assert delta["n_total"]["samples"][0]["value"] == 0.0

    def test_histogram_deltas(self):
        reg = MetricRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        first = reg.snapshot()
        h.observe(0.7)
        h.observe(2.0)
        delta = snapshot_delta(first, reg.snapshot())
        sample = delta["lat"]["samples"][0]
        assert sample["count"] == 2
        assert sample["buckets"] == {"1.0": 1, "+Inf": 1}
